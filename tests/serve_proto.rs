//! Property tests for the serve wire protocol: every message type —
//! submit request, decision, control, overload-reject, ack, error —
//! round-trips through the versioned JSON encoder/parser with bit-exact
//! floats.

use mec_obs::{DecisionEvent, Outcome, RejectReason, SitePlacement};
use mec_serve::{
    encode_client, encode_server, parse_client, parse_server, ClientMsg, ControlAck, ControlAction,
    OverloadReject, ServeStats, ServerMsg, SubmitRequest,
};
use proptest::prelude::*;

const ACTIONS: [ControlAction; 5] = [
    ControlAction::AdvanceSlot,
    ControlAction::Snapshot,
    ControlAction::Stats,
    ControlAction::Shutdown,
    ControlAction::Promote,
];

const REASONS: [RejectReason; 5] = RejectReason::ALL;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn submit_round_trips(
        id in 0usize..1_000_000,
        vnf in 0usize..16,
        reliability in 0.5f64..0.99999,
        arrival in 0usize..256,
        duration in 1usize..64,
        payment in 1e-3f64..1e4,
    ) {
        let msg = ClientMsg::Submit(SubmitRequest {
            id, vnf, reliability, arrival, duration, payment,
        });
        let line = encode_client(&msg);
        prop_assert!(!line.contains('\n'));
        prop_assert_eq!(parse_client(&line).unwrap(), msg);
    }

    #[test]
    fn control_round_trips(which in 0usize..5) {
        let msg = ClientMsg::Control(ACTIONS[which]);
        prop_assert_eq!(parse_client(&encode_client(&msg)).unwrap(), msg);
    }

    #[test]
    fn admit_decision_round_trips(
        request in 0usize..1_000_000,
        slot in 0usize..256,
        payment in 1e-3f64..1e4,
        dual_cost in 0.0f64..1e3,
        cloudlet in 0usize..32,
        instances in 1usize..9,
        onsite in 0usize..2,
    ) {
        let sites = if onsite == 1 {
            vec![SitePlacement { cloudlet, instances: instances as u32, dual_cost }]
        } else {
            (0..instances)
                .map(|k| SitePlacement {
                    cloudlet: cloudlet + k,
                    instances: 1,
                    dual_cost: dual_cost / instances as f64,
                })
                .collect()
        };
        let msg = ServerMsg::Decision(DecisionEvent {
            request,
            algorithm: if onsite == 1 { "alg1-primal-dual" } else { "alg2-primal-dual" }.into(),
            scheme: if onsite == 1 { "on-site" } else { "off-site" }.into(),
            slot,
            payment,
            outcome: Outcome::Admit { dual_cost, margin: payment - dual_cost, sites },
        });
        let line = encode_server(&msg);
        let back = parse_server(&line).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn reject_decision_round_trips(
        request in 0usize..1_000_000,
        slot in 0usize..256,
        payment in 1e-3f64..1e4,
        dual_cost in 0.0f64..1e3,
        which in 0usize..5,
        with_cost in 0usize..2,
    ) {
        let msg = ServerMsg::Decision(DecisionEvent {
            request,
            algorithm: "alg1-primal-dual".into(),
            scheme: "on-site".into(),
            slot,
            payment,
            outcome: Outcome::Reject {
                reason: REASONS[which],
                dual_cost: (with_cost == 1).then_some(dual_cost),
                margin: (with_cost == 1).then_some(payment - dual_cost),
            },
        });
        prop_assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn overload_round_trips(
        id in 0usize..1_000_000,
        queue_depth in 0usize..100_000,
        limit in 1usize..100_000,
    ) {
        let msg = ServerMsg::Overload(OverloadReject { id, queue_depth, limit });
        prop_assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn ack_round_trips(
        which in 0usize..5,
        slot in 0usize..100_000,
        decided in 0usize..1_000_000,
        admitted in 0usize..1_000_000,
        overloaded in 0usize..1_000,
        revenue in 0.0f64..1e7,
        epoch in 1u64..1_000,
        standby in 0usize..2,
    ) {
        let admitted = admitted.min(decided);
        let msg = ServerMsg::Ack(ControlAck {
            action: ACTIONS[which],
            slot,
            stats: ServeStats {
                decided: decided as u64,
                admitted: admitted as u64,
                rejected: (decided - admitted) as u64,
                overloaded: overloaded as u64,
                revenue,
            },
            epoch,
            role: if standby == 1 { "standby" } else { "primary" }.to_string(),
        });
        prop_assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn not_primary_round_trips(
        epoch in 1u64..1_000,
        id in 0usize..1_000_000,
    ) {
        let msg = ServerMsg::NotPrimary { epoch, id };
        prop_assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn error_round_trips_with_escapes(
        a in 0usize..128,
        b in 0usize..128,
    ) {
        // Cover control characters, quotes and backslashes.
        let text = format!(
            "bad \"line\" \\ {}\n\tchar {}",
            char::from_u32(a as u32).unwrap_or('?'),
            b
        );
        let msg = ServerMsg::Error(text);
        prop_assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }
}

#[test]
#[allow(clippy::excessive_precision)] // the rounding IS the test input
fn float_fields_round_trip_bit_exact() {
    // Awkward values that would break a lossy float encoding.
    for payment in [0.1 + 0.2, 1e-300, 123456789.123456789, 5e-324_f64] {
        let msg = ClientMsg::Submit(SubmitRequest {
            id: 0,
            vnf: 0,
            reliability: 0.9999999999999999,
            arrival: 0,
            duration: 1,
            payment,
        });
        match parse_client(&encode_client(&msg)).unwrap() {
            ClientMsg::Submit(s) => {
                assert_eq!(s.payment.to_bits(), payment.to_bits());
                assert_eq!(s.reliability.to_bits(), 0.9999999999999999_f64.to_bits());
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
