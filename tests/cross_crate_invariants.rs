//! Cross-crate invariants: quantities computed independently in
//! different crates must agree (ledger vs validator, schedule revenue vs
//! validator revenue, analytical availability vs Monte-Carlo estimate,
//! LP bound vs exact ILP).

use mec_sim::{failure, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::offline::OfflineConfig;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::reliability::{offsite_availability, onsite_availability, onsite_instances};
use vnfrel::{OnlineScheduler, Placement, ProblemInstance};

fn build(seed: u64, n: usize) -> (ProblemInstance, Vec<mec_workload::Request>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 0.7,
        capacity: (20, 50),
        reliability: (0.99, 0.9999),
    };
    let net = generators::grid(3, 4, &placement, &mut rng).unwrap();
    let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(14)).unwrap();
    let reqs = RequestGenerator::new(instance.horizon())
        .generate(n, instance.catalog(), &mut rng)
        .unwrap();
    (instance, reqs)
}

#[test]
fn scheduler_ledger_agrees_with_independent_validator() {
    let (instance, reqs) = build(3, 150);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let report = sim.run(&mut alg).unwrap();
    // Validator recomputes revenue and overflow from scratch.
    assert!((report.validation.recomputed_revenue - report.schedule.revenue()).abs() < 1e-9);
    assert!((report.validation.max_overflow - alg.ledger().max_overflow()).abs() < 1e-9);
}

#[test]
fn every_admitted_placement_is_minimal_or_better_onsite() {
    // Algorithm 1 places exactly N_ij instances — never more than the
    // formula requires.
    let (instance, reqs) = build(5, 120);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let report = sim.run(&mut alg).unwrap();
    for r in &reqs {
        if let Some(Placement::OnSite {
            cloudlet,
            instances,
        }) = report.schedule.placement(r.id())
        {
            let vnf = instance.catalog().get(r.vnf()).unwrap();
            let c = instance.network().cloudlet(*cloudlet).unwrap();
            let needed = onsite_instances(
                vnf.reliability(),
                c.reliability(),
                r.reliability_requirement(),
            )
            .expect("admitted ⇒ eligible");
            assert_eq!(
                *instances,
                needed,
                "placement is not minimal for {}",
                r.id()
            );
            // Minimality cross-check with the availability formula.
            assert!(
                onsite_availability(vnf.reliability(), c.reliability(), needed)
                    >= r.reliability_requirement().value()
            );
        }
    }
}

#[test]
fn monte_carlo_matches_analytical_availability() {
    let (instance, reqs) = build(7, 60);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let schedule = sim.run(&mut alg).unwrap().schedule;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let report = failure::inject_failures(&instance, &reqs, &schedule, 60_000, &mut rng).unwrap();
    for ra in &report.requests {
        let r = &reqs[ra.request.index()];
        let vnf = instance.catalog().get(r.vnf()).unwrap();
        let analytical = match schedule.placement(r.id()).unwrap() {
            Placement::OnSite {
                cloudlet,
                instances,
            } => {
                let c = instance.network().cloudlet(*cloudlet).unwrap();
                onsite_availability(vnf.reliability(), c.reliability(), *instances)
            }
            Placement::OffSite { cloudlets } => {
                let rels = cloudlets
                    .iter()
                    .map(|&c| instance.network().cloudlet(c).unwrap().reliability());
                offsite_availability(vnf.reliability(), rels)
            }
        };
        assert!(
            (ra.measured - analytical).abs() < 5.0 * ra.standard_error().max(1e-4),
            "{}: measured {} vs analytical {}",
            ra.request,
            ra.measured,
            analytical
        );
    }
}

mod release_properties {
    //! Property tests for [`CapacityLedger::release`], the inverse of
    //! `charge` that the fault-aware engine leans on: round-trips must
    //! restore the ledger, residuals must never drift negative, and
    //! releasing capacity that was never charged must be rejected
    //! without mutating anything.

    use super::*;
    use mec_topology::CloudletId;
    use proptest::prelude::*;
    use rand::Rng;
    use vnfrel::CapacityLedger;

    /// A deterministic batch of random (cloudlet, window, amount)
    /// charges derived from one seed.
    fn random_charges(
        ledger: &CapacityLedger,
        count: usize,
        seed: u64,
    ) -> Vec<(CloudletId, usize, usize, f64)> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let m = ledger.cloudlet_count();
        let h = ledger.horizon().len();
        (0..count)
            .map(|_| {
                let c = CloudletId(rng.gen_range(0..m));
                let start = rng.gen_range(0..h);
                let end = rng.gen_range(start..h);
                let amount = rng.gen_range(0.1..4.0);
                (c, start, end, amount)
            })
            .collect()
    }

    proptest! {
        #[test]
        fn charge_release_round_trips_restore_used(seed in 0u64..300, count in 1usize..24) {
            let (instance, _) = build(1, 1);
            let mut ledger = CapacityLedger::new(instance.network(), instance.horizon());
            let charges = random_charges(&ledger, count, seed);
            for &(c, s, e, amount) in &charges {
                ledger.charge(c, s..=e, amount);
            }
            // Release everything back, LIFO order.
            for &(c, s, e, amount) in charges.iter().rev() {
                prop_assert!(ledger.release(c, s..=e, amount).is_ok());
            }
            for c in instance.network().cloudlets() {
                for t in instance.horizon().slots() {
                    let used = ledger.used(c.id(), t);
                    prop_assert!(used.abs() < 1e-9, "residue {used} at {}/{t}", c.id());
                    prop_assert!(used >= 0.0, "negative used at {}/{t}", c.id());
                }
            }
        }

        #[test]
        fn single_charge_release_is_exact(seed in 0u64..300) {
            // With one outstanding charge the round-trip is exact, not
            // just within tolerance: (0 + a) - a == 0 in IEEE arithmetic.
            let (instance, _) = build(1, 1);
            let mut ledger = CapacityLedger::new(instance.network(), instance.horizon());
            let charges = random_charges(&ledger, 1, seed);
            let (c, s, e, amount) = charges[0];
            ledger.charge(c, s..=e, amount);
            ledger.release(c, s..=e, amount).unwrap();
            for t in instance.horizon().slots() {
                prop_assert_eq!(ledger.used(c, t), 0.0);
            }
        }

        #[test]
        fn partial_release_never_drifts_residuals(seed in 0u64..300, count in 2usize..20) {
            // Interleave charges and releases of previously charged
            // windows; `used` must stay within [0, sum-of-live-charges]
            // and residual capacity must never exceed the static cap.
            let (instance, _) = build(1, 1);
            let mut ledger = CapacityLedger::new(instance.network(), instance.horizon());
            let charges = random_charges(&ledger, count, seed);
            let mut live: Vec<(CloudletId, usize, usize, f64)> = Vec::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDEAD);
            for &chg in &charges {
                ledger.charge(chg.0, chg.1..=chg.2, chg.3);
                live.push(chg);
                if rng.gen_bool(0.5) && !live.is_empty() {
                    let (c, s, e, amount) = live.remove(rng.gen_range(0..live.len()));
                    prop_assert!(ledger.release(c, s..=e, amount).is_ok());
                }
            }
            for c in instance.network().cloudlets() {
                for t in instance.horizon().slots() {
                    let expected: f64 = live
                        .iter()
                        .filter(|&&(lc, s, e, _)| lc == c.id() && (s..=e).contains(&t))
                        .map(|&(_, _, _, a)| a)
                        .sum();
                    let used = ledger.used(c.id(), t);
                    prop_assert!(used >= 0.0);
                    prop_assert!(
                        (used - expected).abs() < 1e-9,
                        "{}/{t}: used {used} vs live charges {expected}",
                        c.id()
                    );
                    prop_assert!(ledger.residual(c.id(), t) <= ledger.capacity(c.id()) + 1e-9);
                }
            }
        }

        #[test]
        fn releasing_uncharged_capacity_is_rejected_atomically(seed in 0u64..300) {
            let (instance, _) = build(1, 1);
            let mut ledger = CapacityLedger::new(instance.network(), instance.horizon());
            let charges = random_charges(&ledger, 1, seed);
            let (c, s, e, amount) = charges[0];
            // Nothing charged yet: any positive release must fail.
            prop_assert!(ledger.release(c, s..=e, amount).is_err());
            // Charge a window, then over-release on a longer window that
            // includes an uncharged slot: the whole call must fail and
            // leave every slot untouched.
            ledger.charge(c, s..=e, amount);
            let h = ledger.horizon().len();
            if e + 1 < h {
                prop_assert!(ledger.release(c, s..=e + 1, amount).is_err());
                for t in s..=e {
                    prop_assert_eq!(ledger.used(c, t), amount);
                }
                prop_assert_eq!(ledger.used(c, e + 1), 0.0);
            }
            // Over-amount on the charged window must also fail whole.
            prop_assert!(ledger.release(c, s..=e, amount + 1.0).is_err());
            for t in s..=e {
                prop_assert_eq!(ledger.used(c, t), amount);
            }
        }
    }
}

#[test]
fn lp_bound_brackets_exact_optimum() {
    let (instance, reqs) = build(9, 25);
    let exact =
        vnfrel::onsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    assert!(exact.exact);
    let lp = vnfrel::onsite::offline::solve(
        &instance,
        &reqs,
        &OfflineConfig {
            lp_only: true,
            ..OfflineConfig::default()
        },
    )
    .unwrap();
    let opt = exact.revenue();
    assert!(lp.upper_bound + 1e-6 >= opt);
    // The LP bound should not be wildly loose on packing instances.
    assert!(
        lp.upper_bound <= opt * 1.5 + 1e-6,
        "LP bound {} vs OPT {} looks wrong",
        lp.upper_bound,
        opt
    );
}

#[test]
fn dual_objective_brackets_exact_optimum() {
    // Weak duality chain (Theorem 1): alg1 revenue ≤ OPT ≤ dual objective.
    let (instance, reqs) = build(13, 25);
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let schedule = vnfrel::run_online(&mut alg, &reqs).unwrap();
    let exact =
        vnfrel::onsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    assert!(exact.exact);
    assert!(schedule.revenue() <= exact.revenue() + 1e-6);
    assert!(
        exact.revenue() <= alg.dual_objective() + 1e-6,
        "OPT {} exceeds dual bound {}",
        exact.revenue(),
        alg.dual_objective()
    );
}
