//! Cross-crate invariants: quantities computed independently in
//! different crates must agree (ledger vs validator, schedule revenue vs
//! validator revenue, analytical availability vs Monte-Carlo estimate,
//! LP bound vs exact ILP).

use mec_sim::{failure, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::offline::OfflineConfig;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::reliability::{offsite_availability, onsite_availability, onsite_instances};
use vnfrel::{OnlineScheduler, Placement, ProblemInstance};

fn build(seed: u64, n: usize) -> (ProblemInstance, Vec<mec_workload::Request>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 0.7,
        capacity: (20, 50),
        reliability: (0.99, 0.9999),
    };
    let net = generators::grid(3, 4, &placement, &mut rng).unwrap();
    let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(14)).unwrap();
    let reqs = RequestGenerator::new(instance.horizon())
        .generate(n, instance.catalog(), &mut rng)
        .unwrap();
    (instance, reqs)
}

#[test]
fn scheduler_ledger_agrees_with_independent_validator() {
    let (instance, reqs) = build(3, 150);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let report = sim.run(&mut alg).unwrap();
    // Validator recomputes revenue and overflow from scratch.
    assert!((report.validation.recomputed_revenue - report.schedule.revenue()).abs() < 1e-9);
    assert!((report.validation.max_overflow - alg.ledger().max_overflow()).abs() < 1e-9);
}

#[test]
fn every_admitted_placement_is_minimal_or_better_onsite() {
    // Algorithm 1 places exactly N_ij instances — never more than the
    // formula requires.
    let (instance, reqs) = build(5, 120);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let report = sim.run(&mut alg).unwrap();
    for r in &reqs {
        if let Some(Placement::OnSite {
            cloudlet,
            instances,
        }) = report.schedule.placement(r.id())
        {
            let vnf = instance.catalog().get(r.vnf()).unwrap();
            let c = instance.network().cloudlet(*cloudlet).unwrap();
            let needed = onsite_instances(
                vnf.reliability(),
                c.reliability(),
                r.reliability_requirement(),
            )
            .expect("admitted ⇒ eligible");
            assert_eq!(*instances, needed, "placement is not minimal for {}", r.id());
            // Minimality cross-check with the availability formula.
            assert!(
                onsite_availability(vnf.reliability(), c.reliability(), needed)
                    >= r.reliability_requirement().value()
            );
        }
    }
}

#[test]
fn monte_carlo_matches_analytical_availability() {
    let (instance, reqs) = build(7, 60);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let schedule = sim.run(&mut alg).unwrap().schedule;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let report =
        failure::inject_failures(&instance, &reqs, &schedule, 60_000, &mut rng).unwrap();
    for ra in &report.requests {
        let r = &reqs[ra.request.index()];
        let vnf = instance.catalog().get(r.vnf()).unwrap();
        let analytical = match schedule.placement(r.id()).unwrap() {
            Placement::OnSite {
                cloudlet,
                instances,
            } => {
                let c = instance.network().cloudlet(*cloudlet).unwrap();
                onsite_availability(vnf.reliability(), c.reliability(), *instances)
            }
            Placement::OffSite { cloudlets } => {
                let rels = cloudlets
                    .iter()
                    .map(|&c| instance.network().cloudlet(c).unwrap().reliability());
                offsite_availability(vnf.reliability(), rels)
            }
        };
        assert!(
            (ra.measured - analytical).abs() < 5.0 * ra.standard_error().max(1e-4),
            "{}: measured {} vs analytical {}",
            ra.request,
            ra.measured,
            analytical
        );
    }
}

#[test]
fn lp_bound_brackets_exact_optimum() {
    let (instance, reqs) = build(9, 25);
    let exact =
        vnfrel::onsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    assert!(exact.exact);
    let lp = vnfrel::onsite::offline::solve(
        &instance,
        &reqs,
        &OfflineConfig {
            lp_only: true,
            ..OfflineConfig::default()
        },
    )
    .unwrap();
    let opt = exact.revenue();
    assert!(lp.upper_bound + 1e-6 >= opt);
    // The LP bound should not be wildly loose on packing instances.
    assert!(
        lp.upper_bound <= opt * 1.5 + 1e-6,
        "LP bound {} vs OPT {} looks wrong",
        lp.upper_bound,
        opt
    );
}

#[test]
fn dual_objective_brackets_exact_optimum() {
    // Weak duality chain (Theorem 1): alg1 revenue ≤ OPT ≤ dual objective.
    let (instance, reqs) = build(13, 25);
    let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let schedule = vnfrel::run_online(&mut alg, &reqs).unwrap();
    let exact =
        vnfrel::onsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    assert!(exact.exact);
    assert!(schedule.revenue() <= exact.revenue() + 1e-6);
    assert!(
        exact.revenue() <= alg.dual_objective() + 1e-6,
        "OPT {} exceeds dual bound {}",
        exact.revenue(),
        alg.dual_objective()
    );
}
