//! Smoke tests for the figure-regeneration harness: tiny versions of the
//! Figure 1/2 sweeps must build, be internally consistent, and show the
//! paper's qualitative orderings where the theory guarantees them.

use vnfrel::Scheme;
use vnfrel_bench::{fig1_sweep, fig2a_sweep, fig2b_sweep, Scenario, ScenarioParams};

#[test]
fn fig1a_smoke_opt_dominates() {
    let table = fig1_sweep(Scheme::OnSite, &[20, 40], &[1], true, 1_000, 1);
    for row in 0..table.rows.len() {
        let opt = table.value(row, "Optimal").unwrap();
        let alg = table.value(row, "Algorithm 1").unwrap();
        let greedy = table.value(row, "Greedy").unwrap();
        assert!(alg <= opt + 1e-6, "alg {alg} > opt {opt}");
        assert!(greedy <= opt + 1e-6, "greedy {greedy} > opt {opt}");
        assert!(alg >= 0.0 && greedy >= 0.0);
    }
}

#[test]
fn fig1b_smoke_opt_dominates() {
    let table = fig1_sweep(Scheme::OffSite, &[10, 20], &[1], true, 1_000, 1);
    for row in 0..table.rows.len() {
        let opt = table.value(row, "Optimal").unwrap();
        assert!(table.value(row, "Algorithm 2").unwrap() <= opt + 1e-6);
        assert!(table.value(row, "Greedy").unwrap() <= opt + 1e-6);
    }
}

#[test]
fn fig2a_smoke_revenue_declines_with_h() {
    // More payment-rate spread (H up, pr_min down) ⇒ less revenue, on
    // average. Use multiple seeds and compare the endpoints.
    let table = fig2a_sweep(&[1.0, 8.0], 250, &[1, 2, 3, 4], 2);
    let at_h1 = table.value(0, "Algorithm 1").unwrap();
    let at_h8 = table.value(1, "Algorithm 1").unwrap();
    assert!(
        at_h8 < at_h1,
        "revenue should drop with H: H=1 → {at_h1}, H=8 → {at_h8}"
    );
}

#[test]
fn fig2b_smoke_alg2_stays_above_greedy_as_k_grows() {
    // The paper's Figure 2(b) claims: revenue decreases with K, and
    // Algorithm 2 "always achieves better performance than the greedy
    // algorithm by varying the value of K".
    let table = fig2b_sweep(&[1.0, 1.2], 400, &[1, 2, 3, 4], 2);
    for row in 0..table.rows.len() {
        let alg = table.value(row, "Algorithm 2").unwrap();
        let greedy = table.value(row, "Greedy (off-site)").unwrap();
        assert!(
            alg > greedy,
            "row {row}: alg2 {alg:.1} should beat greedy {greedy:.1}"
        );
    }
    // Revenue declines as cloudlets get less reliable.
    let alg_first = table.value(0, "Algorithm 2").unwrap();
    let alg_last = table.value(1, "Algorithm 2").unwrap();
    assert!(alg_last < alg_first, "alg2 revenue should drop with K");
}

#[test]
fn scenario_revenue_scale_is_sane() {
    // With abundant capacity (few requests) almost everything is
    // admitted, so all algorithms are near the total payment sum.
    let s = Scenario::build(&ScenarioParams {
        requests: 10,
        ..ScenarioParams::default()
    });
    let total: f64 = s.requests.iter().map(|r| r.payment()).sum();
    let alg1 = s.alg1_revenue();
    assert!(alg1 > 0.0 && alg1 <= total + 1e-9);
}
