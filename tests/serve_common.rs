//! Shared helpers for the `mec-serve` integration tests: a deterministic
//! scenario builder and an in-process daemon spawned on an ephemeral
//! port. Not a test target itself — included via `#[path]`.

#![allow(dead_code)]

use std::net::SocketAddr;
use std::sync::mpsc;
use std::thread;

use mec_obs::MetricsRegistry;
use mec_serve::{serve, DecisionTap, ServeConfig, ServeError, ServeMetricIds, ServeReport};
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance};

/// Deterministic scenario: a Waxman edge network plus a generated
/// request stream, both derived from `seed`.
pub fn scenario(requests: usize, seed: u64) -> (ProblemInstance, Vec<Request>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 0.6,
        capacity: (20, 40),
        reliability: (0.99, 0.9999),
    };
    let net = generators::waxman(12, 0.5, 0.3, &placement, &mut rng).unwrap();
    let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(12)).unwrap();
    let reqs = RequestGenerator::new(instance.horizon())
        .generate(requests, instance.catalog(), &mut rng)
        .unwrap();
    (instance, reqs)
}

/// Which scheduler the daemon runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Algorithm 1 (on-site) with capacity enforcement.
    Onsite,
    /// Algorithm 2 (off-site).
    Offsite,
}

/// Starts a daemon thread on `127.0.0.1:0` and returns the bound
/// address plus the join handle yielding the final [`ServeReport`].
pub fn spawn_daemon(
    instance: ProblemInstance,
    algo: Algo,
    config: ServeConfig,
) -> (
    SocketAddr,
    thread::JoinHandle<Result<ServeReport, ServeError>>,
) {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let tap = DecisionTap::new();
        let mut onsite;
        let mut offsite;
        let scheduler: &mut dyn OnlineScheduler = match algo {
            Algo::Onsite => {
                onsite =
                    OnsitePrimalDual::with_sink(&instance, CapacityPolicy::Enforce, tap.clone())
                        .unwrap();
                &mut onsite
            }
            Algo::Offsite => {
                offsite = OffsitePrimalDual::with_sink(&instance, tap.clone());
                &mut offsite
            }
        };
        let mut registry = MetricsRegistry::new();
        let ids = ServeMetricIds::register(&mut registry, scheduler.ledger().cloudlet_count());
        serve(scheduler, &tap, &registry, &ids, &config, Some(tx))
    });
    let addr = rx.recv().expect("daemon bound");
    (addr, handle)
}
