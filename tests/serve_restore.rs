//! Snapshot/restore determinism (golden-stream comparison, like
//! `tests/equivalence.rs`): a daemon killed mid-trace and restored from
//! its last snapshot must produce a decision stream that — concatenated
//! with the pre-kill prefix — is byte-identical to an uninterrupted run.
//!
//! The "kill" loses work on purpose: the first daemon keeps deciding
//! *after* the snapshot was taken, and those post-snapshot decisions are
//! discarded. The restored daemon replays exactly those requests again;
//! if restore were not bit-exact (prices, usage grid, Σδ), the replayed
//! suffix would diverge from the golden stream.

#[path = "serve_common.rs"]
mod common;

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;

use common::{scenario, spawn_daemon, Algo};
use mec_serve::{
    encode_client, parse_server, ClientMsg, ControlAction, ServeConfig, ServerMsg, SubmitRequest,
};
use mec_workload::Request;

/// Drives `requests` over one connection, returning the raw reply line
/// per request (the golden decision stream).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
            line: String::new(),
        }
    }

    fn send(&mut self, msg: &ClientMsg) -> String {
        let mut out = encode_client(msg);
        out.push('\n');
        self.writer.write_all(out.as_bytes()).unwrap();
        self.line.clear();
        assert!(self.reader.read_line(&mut self.line).unwrap() > 0);
        self.line.trim().to_string()
    }

    fn submit_all(&mut self, requests: &[Request]) -> Vec<String> {
        requests
            .iter()
            .map(|r| {
                let line = self.send(&ClientMsg::Submit(SubmitRequest {
                    id: r.id().index(),
                    vnf: r.vnf().index(),
                    reliability: r.reliability_requirement().value(),
                    arrival: r.arrival(),
                    duration: r.duration(),
                    payment: r.payment(),
                }));
                assert!(
                    matches!(parse_server(&line).unwrap(), ServerMsg::Decision(_)),
                    "expected a decision line, got: {line}"
                );
                line
            })
            .collect()
    }

    fn control(&mut self, action: ControlAction) -> ServerMsg {
        let line = self.send(&ClientMsg::Control(action));
        parse_server(&line).unwrap()
    }
}

fn check_restore(algo: Algo) {
    let (instance, reqs) = scenario(1200, 11);
    let cut = 500;
    let lost = 120; // decided after the snapshot, then "lost" in the kill
    let dir = std::env::temp_dir().join(format!("vnfrel-serve-restore-{algo:?}"));
    std::fs::create_dir_all(&dir).unwrap();
    let fingerprint = "restore-test:seed=11";

    // Golden: one uninterrupted daemon over the whole trace.
    let golden = {
        let (addr, daemon) = spawn_daemon(instance.clone(), algo, {
            let mut c = ServeConfig::new("127.0.0.1:0");
            c.fingerprint = fingerprint.to_string();
            c
        });
        let mut client = Client::connect(&addr.to_string());
        let stream = client.submit_all(&reqs);
        assert!(matches!(
            client.control(ControlAction::Shutdown),
            ServerMsg::Ack(_)
        ));
        daemon.join().unwrap().unwrap();
        stream
    };

    // Interrupted: decide `cut`, snapshot, decide `lost` more, then die
    // without using the newer state (the snapshot file from the explicit
    // control is copied aside before the shutdown overwrites it).
    let snap_live = dir.join("live.snap");
    let snap_kept = dir.join("kept.snap");
    let mut prefix = {
        let (addr, daemon) = spawn_daemon(instance.clone(), algo, {
            let mut c = ServeConfig::new("127.0.0.1:0");
            c.fingerprint = fingerprint.to_string();
            c.snapshot_path = Some(snap_live.clone());
            c
        });
        let mut client = Client::connect(&addr.to_string());
        let stream = client.submit_all(&reqs[..cut]);
        assert!(matches!(
            client.control(ControlAction::Snapshot),
            ServerMsg::Ack(_)
        ));
        std::fs::copy(&snap_live, &snap_kept).unwrap();
        // Work the kill will lose.
        client.submit_all(&reqs[cut..cut + lost]);
        assert!(matches!(
            client.control(ControlAction::Shutdown),
            ServerMsg::Ack(_)
        ));
        daemon.join().unwrap().unwrap();
        stream
    };

    // Restored: a fresh daemon resumes from the kept snapshot and
    // replays everything after the cut (including the lost work).
    let suffix = {
        let (addr, daemon) = spawn_daemon(instance, algo, {
            let mut c = ServeConfig::new("127.0.0.1:0");
            c.fingerprint = fingerprint.to_string();
            c.snapshot_path = Some(snap_kept.clone());
            c.resume = true;
            c
        });
        let mut client = Client::connect(&addr.to_string());
        let stream = client.submit_all(&reqs[cut..]);
        assert!(matches!(
            client.control(ControlAction::Shutdown),
            ServerMsg::Ack(_)
        ));
        let report = daemon.join().unwrap().unwrap();
        assert_eq!(report.next_id, reqs.len());
        assert_eq!(report.stats.decided as usize, reqs.len());
        stream
    };

    prefix.extend(suffix);
    assert_eq!(prefix.len(), golden.len());
    for (i, (a, b)) in golden.iter().zip(prefix.iter()).enumerate() {
        assert_eq!(a, b, "decision stream diverged at request {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_restore_reproduces_decision_stream_onsite() {
    check_restore(Algo::Onsite);
}

#[test]
fn kill_restore_reproduces_decision_stream_offsite() {
    check_restore(Algo::Offsite);
}

#[test]
fn resume_refuses_mismatched_fingerprint() {
    let (instance, reqs) = scenario(50, 3);
    let dir = std::env::temp_dir().join("vnfrel-serve-restore-mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("state.snap");

    let (addr, daemon) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = ServeConfig::new("127.0.0.1:0");
        c.fingerprint = "config-a".to_string();
        c.snapshot_path = Some(snap.clone());
        c
    });
    let mut client = Client::connect(&addr.to_string());
    client.submit_all(&reqs);
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    daemon.join().unwrap().unwrap();

    // A daemon with a different fingerprint must refuse the snapshot.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut c = ServeConfig::new("127.0.0.1:0");
        c.fingerprint = "config-b".to_string();
        c.snapshot_path = Some(snap.clone());
        c.resume = true;
        let (_addr, daemon) = spawn_daemon(instance, Algo::Onsite, c);
        daemon.join().unwrap()
    }));
    match result {
        Ok(Err(e)) => assert!(e.to_string().contains("does not match")),
        Ok(Ok(_)) => panic!("resume with a mismatched fingerprint succeeded"),
        // spawn_daemon panics waiting for the bound address if serve()
        // errored before binding — also an acceptable refusal.
        Err(_) => {}
    }
    std::fs::remove_dir_all(&dir).ok();
}
