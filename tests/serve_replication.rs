//! Replication edge cases: clean handover parity, mid-stream join via
//! snapshot catch-up, duplicate/out-of-order frame rejection, divergence
//! detection, auto-promotion, and fencing — including a property test
//! that a deposed primary can never ack a submit after its standby was
//! promoted, regardless of where in the stream the split happened.

#[path = "serve_common.rs"]
mod common;

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use common::{scenario, spawn_daemon, Algo};
use mec_serve::{
    encode_client, encode_repl, parse_repl, parse_server, ClientMsg, ControlAction, ReplMsg, Role,
    ServeConfig, ServeError, ServerMsg, SubmitRequest,
};
use mec_workload::Request;
use proptest::prelude::*;

fn submit_msg(r: &Request) -> ClientMsg {
    ClientMsg::Submit(SubmitRequest {
        id: r.id().index(),
        vnf: r.vnf().index(),
        reliability: r.reliability_requirement().value(),
        arrival: r.arrival(),
        duration: r.duration(),
        payment: r.payment(),
    })
}

fn base_config(fingerprint: &str) -> ServeConfig {
    let mut c = ServeConfig::new("127.0.0.1:0");
    c.fingerprint = fingerprint.to_string();
    c
}

/// Reserves a loopback address that nothing listens on yet — lets a
/// primary be configured to replicate to a standby that only boots
/// later (the mid-stream join).
fn reserve_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

/// A line client speaking the admission protocol (and, for the fake
/// primary, raw replication lines).
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
            line: String::new(),
        }
    }

    fn send_raw(&mut self, line: &str) {
        let mut out = line.to_string();
        out.push('\n');
        self.writer.write_all(out.as_bytes()).unwrap();
    }

    fn read_reply(&mut self) -> String {
        self.line.clear();
        assert!(
            self.reader.read_line(&mut self.line).unwrap() > 0,
            "daemon closed the connection"
        );
        self.line.trim().to_string()
    }

    fn send(&mut self, msg: &ClientMsg) -> String {
        self.send_raw(&encode_client(msg));
        self.read_reply()
    }

    fn submit_all(&mut self, requests: &[Request]) -> Vec<String> {
        requests
            .iter()
            .map(|r| {
                let line = self.send(&submit_msg(r));
                assert!(
                    matches!(parse_server(&line).unwrap(), ServerMsg::Decision(_)),
                    "expected a decision line, got: {line}"
                );
                line
            })
            .collect()
    }

    /// Writes every submit first, then reads every reply — used when
    /// replies are withheld by the availability timeout so the holds
    /// overlap instead of serializing.
    fn submit_pipelined(&mut self, requests: &[Request]) -> Vec<String> {
        let mut buf = String::new();
        for r in requests {
            buf.push_str(&encode_client(&submit_msg(r)));
            buf.push('\n');
        }
        self.writer.write_all(buf.as_bytes()).unwrap();
        (0..requests.len())
            .map(|_| {
                let line = self.read_reply();
                assert!(
                    matches!(parse_server(&line).unwrap(), ServerMsg::Decision(_)),
                    "expected a decision line, got: {line}"
                );
                line
            })
            .collect()
    }

    fn control(&mut self, action: ControlAction) -> ServerMsg {
        let line = self.send(&ClientMsg::Control(action));
        parse_server(&line).unwrap()
    }

    fn repl(&mut self, msg: &ReplMsg) -> ReplMsg {
        self.send_raw(&encode_repl(msg));
        parse_repl(&self.read_reply()).unwrap()
    }
}

/// The uninterrupted single-daemon decision stream for `reqs`.
fn golden_stream(
    instance: &vnfrel::ProblemInstance,
    algo: Algo,
    fingerprint: &str,
    reqs: &[Request],
) -> Vec<String> {
    let (addr, daemon) = spawn_daemon(instance.clone(), algo, base_config(fingerprint));
    let mut client = Client::connect(&addr.to_string());
    let stream = client.submit_all(reqs);
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    daemon.join().unwrap().unwrap();
    stream
}

/// Polls the daemon's stats control until `pred` holds on the ack.
fn wait_for_ack(
    addr: &str,
    timeout: Duration,
    pred: impl Fn(&mec_serve::ControlAck) -> bool,
) -> mec_serve::ControlAck {
    let deadline = Instant::now() + timeout;
    loop {
        let mut c = Client::connect(addr);
        if let ServerMsg::Ack(ack) = c.control(ControlAction::Stats) {
            if pred(&ack) {
                return ack;
            }
            assert!(
                Instant::now() < deadline,
                "condition not reached before the deadline; last ack: role {} epoch {} decided {}",
                ack.role,
                ack.epoch,
                ack.stats.decided
            );
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// Handover parity: primary + strict standby, clean primary exit,
// promote, finish the stream on the survivor — byte-identical to the
// uninterrupted run.
// ---------------------------------------------------------------------

fn check_handover(algo: Algo) {
    let (instance, reqs) = scenario(260, 21);
    let cut = 110;
    let fp = format!("repl-handover:{algo:?}");
    let golden = golden_stream(&instance, algo, &fp, &reqs);

    let (standby_addr, standby) = spawn_daemon(instance.clone(), algo, {
        let mut c = base_config(&fp);
        c.standby = true;
        c
    });
    let (primary_addr, primary) = spawn_daemon(instance.clone(), algo, {
        let mut c = base_config(&fp);
        c.replicate_to = Some(standby_addr.to_string());
        c.repl_strict = true;
        c
    });

    let mut client = Client::connect(&primary_addr.to_string());
    let mut stream = client.submit_all(&reqs[..cut]);
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let report = primary.join().unwrap().unwrap();
    assert_eq!(report.role, Role::Primary);
    assert_eq!(report.epoch, 1);
    assert_eq!(report.stats.decided as usize, cut);

    let mut sc = Client::connect(&standby_addr.to_string());
    match sc.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => {
            assert_eq!(ack.role, "primary");
            assert_eq!(ack.epoch, 2);
            // Every decision the primary acked survived the handover.
            assert_eq!(ack.stats.decided as usize, cut);
        }
        other => panic!("promote refused: {other:?}"),
    }
    stream.extend(sc.submit_all(&reqs[cut..]));
    assert!(matches!(
        sc.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let survivor = standby.join().unwrap().unwrap();
    assert_eq!(survivor.role, Role::Primary);
    assert_eq!(survivor.epoch, 2);
    assert_eq!(survivor.stats.decided as usize, reqs.len());

    assert_eq!(stream.len(), golden.len());
    for (i, (a, b)) in golden.iter().zip(stream.iter()).enumerate() {
        assert_eq!(a, b, "decision stream diverged at request {i}");
    }
}

#[test]
fn handover_preserves_decision_stream_onsite() {
    check_handover(Algo::Onsite);
}

#[test]
fn handover_preserves_decision_stream_offsite() {
    check_handover(Algo::Offsite);
}

// ---------------------------------------------------------------------
// Mid-stream join: the standby boots only after the primary has decided
// a prefix. Catch-up must go snapshot-first, then frames, and the
// handover must still be byte-identical.
// ---------------------------------------------------------------------

#[test]
fn standby_joining_mid_stream_catches_up_via_snapshot() {
    let (instance, reqs) = scenario(180, 22);
    let (cut_a, cut_b) = (70, 130);
    let fp = "repl-midjoin";
    let golden = golden_stream(&instance, Algo::Onsite, fp, &reqs);

    // The primary is told to replicate to an address nothing listens on
    // yet. Non-strict: the availability timeout releases the prefix
    // replies unreplicated (pipelined, so the holds overlap).
    let standby_addr = reserve_addr();
    let (primary_addr, primary) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.replicate_to = Some(standby_addr.clone());
        c.repl_strict = false;
        c
    });
    let mut client = Client::connect(&primary_addr.to_string());
    let mut stream = client.submit_pipelined(&reqs[..cut_a]);

    // Boot the standby on the reserved address; the sender's reconnect
    // loop finds it and catches it up with a snapshot covering the
    // prefix.
    let (bound, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.addr = standby_addr.clone();
        c.standby = true;
        c
    });
    assert_eq!(bound.to_string(), standby_addr);
    let caught_up = wait_for_ack(&standby_addr, Duration::from_secs(10), |ack| {
        ack.stats.decided as usize >= cut_a
    });
    assert_eq!(caught_up.role, "standby");

    // Live frames from here on.
    stream.extend(client.submit_all(&reqs[cut_a..cut_b]));
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    primary.join().unwrap().unwrap();

    let mut sc = Client::connect(&standby_addr);
    match sc.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => {
            assert_eq!(ack.role, "primary");
            assert_eq!(ack.epoch, 2);
            assert_eq!(ack.stats.decided as usize, cut_b);
        }
        other => panic!("promote refused: {other:?}"),
    }
    stream.extend(sc.submit_all(&reqs[cut_b..]));
    assert!(matches!(
        sc.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let survivor = standby.join().unwrap().unwrap();
    assert_eq!(survivor.stats.decided as usize, reqs.len());

    assert_eq!(stream.len(), golden.len());
    for (i, (a, b)) in golden.iter().zip(stream.iter()).enumerate() {
        assert_eq!(a, b, "decision stream diverged at request {i}");
    }
}

// ---------------------------------------------------------------------
// Frame-level protocol: duplicates are acked without re-applying,
// sequence gaps are refused, and a tampered decision is fatal.
// ---------------------------------------------------------------------

/// Captures the canonical submit and decision lines for the first two
/// requests of a scenario by running them through a throwaway daemon.
fn capture_frames(
    instance: &vnfrel::ProblemInstance,
    fp: &str,
    reqs: &[Request],
) -> Vec<(String, String)> {
    let (addr, daemon) = spawn_daemon(instance.clone(), Algo::Onsite, base_config(fp));
    let mut client = Client::connect(&addr.to_string());
    let decisions = client.submit_all(&reqs[..2]);
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    daemon.join().unwrap().unwrap();
    reqs[..2]
        .iter()
        .zip(decisions)
        .map(|(r, d)| (encode_client(&submit_msg(r)), d))
        .collect()
}

#[test]
fn standby_rejects_duplicate_and_out_of_order_frames() {
    let (instance, reqs) = scenario(4, 23);
    let fp = "repl-dup";
    let frames = capture_frames(&instance, fp, &reqs);

    let (addr, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.standby = true;
        c
    });
    let addr = addr.to_string();
    let mut fake = Client::connect(&addr);
    assert_eq!(
        fake.repl(&ReplMsg::Hello { epoch: 1, seq: 0 }),
        ReplMsg::State { epoch: 1, seq: 0 }
    );
    let frame1 = ReplMsg::Frame {
        epoch: 1,
        seq: 1,
        submit: frames[0].0.clone(),
        decision: frames[0].1.clone(),
    };
    assert_eq!(fake.repl(&frame1), ReplMsg::Ack { epoch: 1, seq: 1 });
    // Exact duplicate: acked at the applied position, not re-applied.
    assert_eq!(fake.repl(&frame1), ReplMsg::Ack { epoch: 1, seq: 1 });
    // Gap: seq 3 when 2 is expected — refused, nothing applied.
    assert_eq!(
        fake.repl(&ReplMsg::Frame {
            epoch: 1,
            seq: 3,
            submit: frames[1].0.clone(),
            decision: frames[1].1.clone(),
        }),
        ReplMsg::Refused {
            epoch: 1,
            expected: 2,
            got: 3
        }
    );
    // The in-order frame still applies after the refusal.
    assert_eq!(
        fake.repl(&ReplMsg::Frame {
            epoch: 1,
            seq: 2,
            submit: frames[1].0.clone(),
            decision: frames[1].1.clone(),
        }),
        ReplMsg::Ack { epoch: 1, seq: 2 }
    );

    // The duplicate must not have double-counted: exactly two decisions.
    let ack = wait_for_ack(&addr, Duration::from_secs(5), |ack| ack.stats.decided == 2);
    assert_eq!(ack.role, "standby");
    assert_eq!(ack.epoch, 1);

    drop(fake);
    let mut c = Client::connect(&addr);
    // A standby accepts promote-then-shutdown; promotion is immediate
    // once the (closed) replication connection's EOF is processed.
    match c.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => assert_eq!(ack.epoch, 2),
        other => panic!("promote refused: {other:?}"),
    }
    assert!(matches!(
        c.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let report = standby.join().unwrap().unwrap();
    assert_eq!(report.stats.decided, 2);
}

#[test]
fn tampered_decision_line_is_fatal_divergence() {
    let (instance, reqs) = scenario(4, 24);
    let fp = "repl-diverge";
    let frames = capture_frames(&instance, fp, &reqs);

    let (addr, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.standby = true;
        c
    });
    let mut fake = Client::connect(&addr.to_string());
    assert_eq!(
        fake.repl(&ReplMsg::Hello { epoch: 1, seq: 0 }),
        ReplMsg::State { epoch: 1, seq: 0 }
    );
    // Request 0's submit paired with request 1's decision: the follower
    // re-decides, sees a different byte stream, and must refuse to
    // continue as a replica that could later be promoted.
    fake.send_raw(&encode_repl(&ReplMsg::Frame {
        epoch: 1,
        seq: 1,
        submit: frames[0].0.clone(),
        decision: frames[1].1.clone(),
    }));
    match standby.join().unwrap() {
        Err(ServeError::Protocol(msg)) => {
            assert!(msg.contains("divergence"), "unexpected error: {msg}")
        }
        other => panic!("divergence was not fatal: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Fencing.
// ---------------------------------------------------------------------

#[test]
fn stale_hello_after_promotion_is_fenced() {
    let (instance, reqs) = scenario(8, 25);
    let fp = "repl-fence-hello";
    let frames = capture_frames(&instance, fp, &reqs);

    let (addr, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.standby = true;
        c
    });
    let addr = addr.to_string();
    let mut fake = Client::connect(&addr);
    assert_eq!(
        fake.repl(&ReplMsg::Hello { epoch: 1, seq: 0 }),
        ReplMsg::State { epoch: 1, seq: 0 }
    );
    assert_eq!(
        fake.repl(&ReplMsg::Frame {
            epoch: 1,
            seq: 1,
            submit: frames[0].0.clone(),
            decision: frames[0].1.clone(),
        }),
        ReplMsg::Ack { epoch: 1, seq: 1 }
    );
    // Drop the "primary" and promote the standby.
    drop(fake);
    let mut c = Client::connect(&addr);
    match c.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => assert_eq!((ack.epoch, ack.role.as_str()), (2, "primary")),
        other => panic!("promote refused: {other:?}"),
    }
    // The deposed primary reconnects at its stale epoch: fenced, and
    // nothing it streams is applied.
    let mut stale = Client::connect(&addr);
    assert_eq!(
        stale.repl(&ReplMsg::Hello { epoch: 1, seq: 1 }),
        ReplMsg::Fenced {
            epoch: 2,
            stale_epoch: 1
        }
    );
    assert_eq!(
        stale.repl(&ReplMsg::Frame {
            epoch: 1,
            seq: 2,
            submit: frames[1].0.clone(),
            decision: frames[1].1.clone(),
        }),
        ReplMsg::Fenced {
            epoch: 2,
            stale_epoch: 1
        }
    );
    let ack = wait_for_ack(&addr, Duration::from_secs(5), |ack| ack.stats.decided == 1);
    assert_eq!(ack.epoch, 2);
    assert!(matches!(
        c.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    standby.join().unwrap().unwrap();
}

/// One split-brain case: promote the standby while the primary is still
/// alive after `k` replicated decisions, then prove the deposed primary
/// can never ack another submit (strict mode: the held reply dies with
/// the fencing) and exits with the typed fenced error.
fn deposed_primary_never_acks_case(k: usize) {
    let (instance, reqs) = scenario(16, 26);
    let fp = format!("repl-fence-{k}");
    let (standby_addr, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(&fp);
        c.standby = true;
        c
    });
    let (primary_addr, primary) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(&fp);
        c.replicate_to = Some(standby_addr.to_string());
        c.repl_strict = true;
        c
    });
    let mut client = Client::connect(&primary_addr.to_string());
    client.submit_all(&reqs[..k]);

    // Split brain on purpose: promote while the primary lives. The
    // standby force-closes the replication connection after its drain
    // grace, so the promote ack itself proves the promotion completed.
    let mut sc = Client::connect(&standby_addr.to_string());
    match sc.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => {
            assert_eq!((ack.epoch, ack.role.as_str()), (2, "primary"));
            assert_eq!(ack.stats.decided as usize, k);
        }
        other => panic!("promote refused: {other:?}"),
    }

    // The deposed primary must never ack this submit: acceptable fates
    // are an error line, a closed connection, or silence — never a
    // decision.
    client
        .writer
        .set_write_timeout(Some(Duration::from_secs(1)))
        .unwrap();
    let mut line = encode_client(&submit_msg(&reqs[k]));
    line.push('\n');
    let _ = client.writer.write_all(line.as_bytes());
    client
        .reader
        .get_mut()
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut reply = String::new();
    match client.reader.read_line(&mut reply) {
        Ok(0) => {} // daemon exited
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected read error: {e}"
        ),
        Ok(_) => {
            let msg = parse_server(reply.trim()).unwrap();
            assert!(
                !matches!(msg, ServerMsg::Decision(_)),
                "deposed primary acked a decision after the promotion: {reply}"
            );
        }
    }

    // The deposed primary exits with the typed fenced error (exit code
    // 7 at the CLI).
    match primary.join().unwrap() {
        Err(ServeError::Fenced { epoch, by }) => {
            assert_eq!(epoch, 1);
            assert_eq!(by, 2);
        }
        other => panic!("deposed primary did not fence itself: {other:?}"),
    }

    // The survivor still serves and lost nothing it acked.
    let tail = sc.submit_all(&reqs[k..]);
    assert_eq!(tail.len(), reqs.len() - k);
    assert!(matches!(
        sc.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let report = standby.join().unwrap().unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(report.stats.decided as usize, reqs.len());
}

proptest! {
    // Each case boots two daemons and rides out the promote drain
    // grace, so keep the case count small; the kill point is the only
    // dimension that matters.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn deposed_primary_never_acks(k in 0usize..12) {
        deposed_primary_never_acks_case(k);
    }
}

// ---------------------------------------------------------------------
// Standby behavior and auto-promotion.
// ---------------------------------------------------------------------

#[test]
fn standby_refuses_submits_with_not_primary() {
    let (instance, reqs) = scenario(4, 27);
    let (addr, standby) = spawn_daemon(instance, Algo::Onsite, {
        let mut c = base_config("repl-refuse");
        c.standby = true;
        c
    });
    let mut client = Client::connect(&addr.to_string());
    let line = client.send(&submit_msg(&reqs[0]));
    match parse_server(&line).unwrap() {
        ServerMsg::NotPrimary { epoch, id } => {
            assert_eq!(epoch, 1);
            assert_eq!(id, reqs[0].id().index());
        }
        other => panic!("expected not-primary, got {other:?}"),
    }
    // The slot clock of a standby advances only via replication.
    match client.control(ControlAction::AdvanceSlot) {
        ServerMsg::Error(msg) => assert!(msg.contains("standby"), "{msg}"),
        other => panic!("expected an error, got {other:?}"),
    }
    match client.control(ControlAction::Promote) {
        ServerMsg::Ack(ack) => assert_eq!(ack.epoch, 2),
        other => panic!("promote refused: {other:?}"),
    }
    // Promoted: the same submit now gets a decision.
    let line = client.send(&submit_msg(&reqs[0]));
    assert!(matches!(
        parse_server(&line).unwrap(),
        ServerMsg::Decision(_)
    ));
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    standby.join().unwrap().unwrap();
}

#[test]
fn auto_promotion_waits_for_silence_then_fires() {
    let (instance, reqs) = scenario(30, 28);
    let cut = 12;
    let fp = "repl-autopromote";
    let (standby_addr, standby) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.standby = true;
        c.auto_promote_after = Some(Duration::from_millis(500));
        c
    });
    let (primary_addr, primary) = spawn_daemon(instance.clone(), Algo::Onsite, {
        let mut c = base_config(fp);
        c.replicate_to = Some(standby_addr.to_string());
        c.repl_strict = true;
        c
    });
    let mut client = Client::connect(&primary_addr.to_string());
    client.submit_all(&reqs[..cut]);

    // An idle but living primary heartbeats; the standby must NOT
    // promote itself while it can still hear them.
    std::thread::sleep(Duration::from_millis(1200));
    let mut sc = Client::connect(&standby_addr.to_string());
    match sc.control(ControlAction::Stats) {
        ServerMsg::Ack(ack) => assert_eq!(
            (ack.role.as_str(), ack.epoch),
            ("standby", 1),
            "standby self-promoted under a living primary"
        ),
        other => panic!("stats refused: {other:?}"),
    }

    // Primary gone: silence now means promotion, no operator needed.
    assert!(matches!(
        client.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    primary.join().unwrap().unwrap();
    let ack = wait_for_ack(&standby_addr.to_string(), Duration::from_secs(10), |ack| {
        ack.role == "primary"
    });
    assert_eq!(ack.epoch, 2);

    let tail = sc.submit_all(&reqs[cut..]);
    assert_eq!(tail.len(), reqs.len() - cut);
    assert!(matches!(
        sc.control(ControlAction::Shutdown),
        ServerMsg::Ack(_)
    ));
    let report = standby.join().unwrap().unwrap();
    assert_eq!(report.stats.decided as usize, reqs.len());
}
