//! Acceptance test of the correlated-failure and graceful-degradation
//! subsystem: under a seeded correlated-outage scenario (zone-partition
//! failure domains plus a cascade overlay, the parameters of the
//! `correlated_failures` bin), graceful degradation yields strictly
//! fewer SLA-violated request-slots and strictly more retained revenue
//! than [`RecoveryPolicy::None`] on the same event stream, for both
//! backup schemes, and the runtime invariant auditor reports zero
//! violations — the claims checked into `results/correlated_failures.txt`.

use mec_sim::{
    CascadeConfig, DegradationConfig, FailureConfig, FailureProcess, RecoveryPolicy, Simulation,
};
use mec_topology::FailureDomainSet;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, Scheme};
use vnfrel_bench::{Scenario, ScenarioParams};

/// Same parameters as the `correlated_failures` bin.
fn config() -> FailureConfig {
    FailureConfig {
        cloudlet_mttf: 12.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.05,
    }
}

fn cascade() -> CascadeConfig {
    CascadeConfig {
        utilization_threshold: 0.5,
        hazard: 0.5,
        outage_slots: 2,
    }
}

fn correlated_trace(scenario: &Scenario, fseed: u64) -> FailureProcess {
    let domains = FailureDomainSet::zones(scenario.instance.network(), 3, 6.0, 2.0).unwrap();
    FailureProcess::generate_with_domains(
        scenario.instance.network(),
        &config(),
        &domains,
        Some(cascade()),
        scenario.instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(fseed),
    )
    .unwrap()
}

fn scheduler_for<'a>(scheme: Scheme, scenario: &'a Scenario) -> Box<dyn OnlineScheduler + 'a> {
    match scheme {
        Scheme::OnSite => {
            Box::new(OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap())
        }
        Scheme::OffSite => Box::new(OffsitePrimalDual::new(&scenario.instance)),
    }
}

#[test]
fn degradation_beats_no_recovery_on_correlated_traces_for_both_schemes() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 150,
        seed: 1,
        ..ScenarioParams::default()
    });
    let trace = correlated_trace(&scenario, 9001);
    assert!(
        trace.total_domain_events() > 0,
        "no domain-level outage in the sampled trace"
    );
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();

    for scheme in [Scheme::OnSite, Scheme::OffSite] {
        let mut s = scheduler_for(scheme, &scenario);
        let none = sim
            .run_with_failures(s.as_mut(), &trace, RecoveryPolicy::None)
            .unwrap();
        assert!(
            none.sla.total_failures() > 0,
            "{scheme:?}: correlated outages broke nothing — vacuous comparison"
        );

        let mut s = scheduler_for(scheme, &scenario);
        let degraded = sim
            .run_degraded(
                s.as_mut(),
                &trace,
                RecoveryPolicy::SchemeMatching,
                &DegradationConfig::default(),
            )
            .unwrap();
        assert!(
            degraded.sla.violated_request_slots() < none.sla.violated_request_slots(),
            "{scheme:?}: degradation did not strictly reduce violated slots ({} vs {})",
            degraded.sla.violated_request_slots(),
            none.sla.violated_request_slots()
        );
        assert!(
            degraded.sla.revenue_retained() > none.sla.revenue_retained(),
            "{scheme:?}: degradation did not strictly increase retained revenue \
             ({:.2} vs {:.2})",
            degraded.sla.revenue_retained(),
            none.sla.revenue_retained()
        );
        let audit = degraded.audit.as_ref().expect("auditing on by default");
        assert!(
            audit.is_clean(),
            "{scheme:?}: invariant auditor reported violations: {audit}"
        );
        assert_eq!(audit.slots_checked, scenario.instance.horizon().len());
        assert!(degraded.degradation.unwrap().degraded_slots > 0);
    }
}

#[test]
fn domain_outages_take_members_down_atomically() {
    // Every domain-down marker in the sampled stream is mirrored by net
    // CloudletDown transitions covering each member that was still up —
    // replaying cloudlet events alone reconstructs the same fleet state.
    let scenario = Scenario::build(&ScenarioParams {
        requests: 50,
        seed: 2,
        ..ScenarioParams::default()
    });
    let trace = correlated_trace(&scenario, 9002);
    let m = scenario.instance.network().cloudlets().count();
    let mut up = vec![true; m];
    for t in 0..trace.horizon_len() {
        let mut down_this_slot: Vec<usize> = Vec::new();
        for e in trace.events_at(t) {
            match e {
                mec_sim::FailureEvent::CloudletDown { cloudlet, .. } => {
                    up[*cloudlet] = false;
                    down_this_slot.push(*cloudlet);
                }
                mec_sim::FailureEvent::CloudletUp { cloudlet, .. } => up[*cloudlet] = true,
                mec_sim::FailureEvent::InstanceKill { .. } => {}
            }
        }
        for d in trace.domain_events_at(t) {
            if let mec_sim::DomainEvent::Down { domain, .. } = d {
                for &j in trace.domain_members(*domain) {
                    assert!(
                        !up[j] || down_this_slot.contains(&j),
                        "slot {t}: domain {domain} crashed but member {j} stayed up"
                    );
                }
            }
        }
    }
}

#[test]
fn degraded_replay_is_deterministic() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 100,
        seed: 3,
        ..ScenarioParams::default()
    });
    let trace = correlated_trace(&scenario, 9003);
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
    let run = || {
        let mut s = scheduler_for(Scheme::OnSite, &scenario);
        sim.run_degraded(
            s.as_mut(),
            &trace,
            RecoveryPolicy::SchemeMatching,
            &DegradationConfig::default(),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
