//! Acceptance test of the dynamic failure-and-recovery subsystem: with
//! a fixed seed and a nonzero cloudlet outage rate, a fault-aware run
//! with recovery strictly reduces SLA-violated request-slots versus
//! [`RecoveryPolicy::None`] on the same event stream, for both backup
//! schemes — the claim checked into `results/failure_recovery.txt`.

use mec_sim::{FailureConfig, FailureProcess, RecoveryPolicy, Simulation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, Scheme};
use vnfrel_bench::{Scenario, ScenarioParams};

/// Same outage parameters as the `failure_recovery` bin.
fn config() -> FailureConfig {
    FailureConfig {
        cloudlet_mttf: 6.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.05,
    }
}

fn fault_run(
    scenario: &Scenario,
    trace: &FailureProcess,
    scheme: Scheme,
    policy: RecoveryPolicy,
) -> mec_sim::FaultRunReport {
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
    let mut scheduler: Box<dyn OnlineScheduler> = match scheme {
        Scheme::OnSite => {
            Box::new(OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap())
        }
        Scheme::OffSite => Box::new(OffsitePrimalDual::new(&scenario.instance)),
    };
    sim.run_with_failures(scheduler.as_mut(), trace, policy)
        .unwrap()
}

#[test]
fn recovery_strictly_reduces_violated_slots_for_both_schemes() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 200,
        seed: 1,
        ..ScenarioParams::default()
    });
    let trace = FailureProcess::generate(
        scenario.instance.network(),
        &config(),
        scenario.instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(7001),
    )
    .unwrap();
    assert!(trace.total_events() > 0, "outage trace is empty");

    for scheme in [Scheme::OnSite, Scheme::OffSite] {
        let none = fault_run(&scenario, &trace, scheme, RecoveryPolicy::None);
        assert!(
            none.sla.total_failures() > 0,
            "{scheme:?}: no placement ever failed — the comparison is vacuous"
        );
        assert!(none.sla.violated_request_slots() > 0);
        assert_eq!(none.sla.total_recoveries(), 0);

        let recovered = fault_run(&scenario, &trace, scheme, RecoveryPolicy::SchemeMatching);
        assert!(
            recovered.sla.violated_request_slots() < none.sla.violated_request_slots(),
            "{scheme:?}: recovery did not strictly reduce violated slots ({} vs {})",
            recovered.sla.violated_request_slots(),
            none.sla.violated_request_slots()
        );
        assert!(recovered.sla.total_recoveries() > 0);
        assert!(
            recovered.sla.revenue_retained() > none.sla.revenue_retained(),
            "{scheme:?}: recovery should retain more revenue"
        );
    }
}

#[test]
fn fault_runs_never_oversubscribe_capacity() {
    // Releases and recovery charges must keep the ledger within the
    // static caps throughout — max_overflow is recomputed from the
    // ledger's own high-water marks.
    let scenario = Scenario::build(&ScenarioParams {
        requests: 250,
        seed: 2,
        ..ScenarioParams::default()
    });
    let trace = FailureProcess::generate(
        scenario.instance.network(),
        &config(),
        scenario.instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(7002),
    )
    .unwrap();
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
    for policy in [
        RecoveryPolicy::None,
        RecoveryPolicy::OnSite,
        RecoveryPolicy::OffSite,
        RecoveryPolicy::SchemeMatching,
    ] {
        let mut alg = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        let _ = sim.run_with_failures(&mut alg, &trace, policy).unwrap();
        assert_eq!(
            alg.ledger().max_overflow(),
            0.0,
            "{policy}: fault run oversubscribed a cloudlet"
        );
    }
}

#[test]
fn sla_accounting_conserves_revenue() {
    // retained + refunded must equal the gross revenue of admitted
    // requests, record by record and in aggregate.
    let scenario = Scenario::build(&ScenarioParams {
        requests: 150,
        seed: 3,
        ..ScenarioParams::default()
    });
    let trace = FailureProcess::generate(
        scenario.instance.network(),
        &config(),
        scenario.instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(7003),
    )
    .unwrap();
    for scheme in [Scheme::OnSite, Scheme::OffSite] {
        let report = fault_run(&scenario, &trace, scheme, RecoveryPolicy::SchemeMatching);
        for rec in &report.sla.records {
            assert!((rec.retained() + rec.refund() - rec.payment).abs() < 1e-9);
            assert!(rec.refund() >= 0.0 && rec.refund() <= rec.payment + 1e-9);
            assert!(rec.downtime_slots <= rec.duration);
            assert!(rec.recoveries <= rec.recovery_attempts);
            assert!(rec.recoveries <= rec.failures);
        }
        let gross = report.metrics.revenue;
        assert!(
            (report.sla.revenue_retained() + report.sla.revenue_refunded() - gross).abs() < 1e-6,
            "{scheme:?}: retained + refunded != gross revenue"
        );
        assert_eq!(report.sla.records.len(), report.metrics.admitted);
    }
}
