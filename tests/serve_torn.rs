//! Wire-level hardening: torn (half-written) frames, oversized lines,
//! slow multi-write continuations, garbage JSON and invalid UTF-8 must
//! never wedge or kill the daemon — at worst they cost the offending
//! connection.

#[path = "serve_common.rs"]
mod common;

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use common::{scenario, spawn_daemon, Algo};
use mec_serve::{
    encode_client, parse_server, ClientMsg, ControlAction, ServeConfig, ServerMsg, SubmitRequest,
    MAX_LINE_BYTES,
};
use mec_workload::Request;

fn submit_line(r: &Request) -> String {
    let mut line = encode_client(&ClientMsg::Submit(SubmitRequest {
        id: r.id().index(),
        vnf: r.vnf().index(),
        reliability: r.reliability_requirement().value(),
        arrival: r.arrival(),
        duration: r.duration(),
        payment: r.payment(),
    }));
    line.push('\n');
    line
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    line: String,
}

impl Client {
    fn connect(addr: &str) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
            line: String::new(),
        }
    }

    /// Reads one reply line; panics if the daemon closed the connection.
    fn read_reply(&mut self) -> String {
        self.line.clear();
        assert!(
            self.reader.read_line(&mut self.line).unwrap() > 0,
            "daemon closed the connection"
        );
        self.line.trim().to_string()
    }

    /// Reads until EOF, asserting the daemon closed the connection.
    fn expect_closed(&mut self) {
        self.reader
            .get_mut()
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        self.line.clear();
        assert_eq!(
            self.reader.read_line(&mut self.line).unwrap(),
            0,
            "expected the daemon to drop the connection, got: {}",
            self.line
        );
    }

    fn submit(&mut self, r: &Request) -> ServerMsg {
        self.writer.write_all(submit_line(r).as_bytes()).unwrap();
        parse_server(&self.read_reply()).unwrap()
    }

    fn shutdown_daemon(&mut self) {
        let mut line = encode_client(&ClientMsg::Control(ControlAction::Shutdown));
        line.push('\n');
        self.writer.write_all(line.as_bytes()).unwrap();
        let reply = self.read_reply();
        assert!(
            matches!(parse_server(&reply).unwrap(), ServerMsg::Ack(_)),
            "shutdown not acked: {reply}"
        );
    }
}

fn boot(
    n: usize,
    seed: u64,
    fp: &str,
) -> (
    Vec<Request>,
    String,
    std::thread::JoinHandle<Result<mec_serve::ServeReport, mec_serve::ServeError>>,
) {
    let (instance, reqs) = scenario(n, seed);
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.fingerprint = fp.to_string();
    let (addr, daemon) = spawn_daemon(instance, Algo::Onsite, config);
    (reqs, addr.to_string(), daemon)
}

#[test]
fn torn_frame_gets_an_error_and_daemon_survives() {
    let (reqs, addr, daemon) = boot(4, 31, "torn");

    // Write half a submit line and hang up the write side: the daemon
    // must call out the torn frame rather than silently discarding it
    // or treating the fragment as a request.
    let mut torn = Client::connect(&addr);
    let line = submit_line(&reqs[0]);
    let half = &line.as_bytes()[..line.len() / 2];
    torn.writer.write_all(half).unwrap();
    torn.writer.flush().unwrap();
    torn.writer.shutdown(Shutdown::Write).unwrap();
    let reply = torn.read_reply();
    match parse_server(&reply).unwrap() {
        ServerMsg::Error(msg) => {
            assert!(msg.contains("torn frame"), "unexpected error: {msg}")
        }
        other => panic!("expected a torn-frame error, got {other:?}"),
    }
    torn.expect_closed();

    // The fragment left no trace: a fresh client gets ordinary service
    // and the torn bytes were not counted as a decision.
    let mut client = Client::connect(&addr);
    assert!(matches!(client.submit(&reqs[0]), ServerMsg::Decision(_)));
    client.shutdown_daemon();
    let report = daemon.join().unwrap().unwrap();
    assert_eq!(report.stats.decided, 1);
}

#[test]
fn oversized_line_is_rejected_and_connection_dropped() {
    let (reqs, addr, daemon) = boot(4, 32, "oversized");

    let mut hog = Client::connect(&addr);
    // No newline in sight: the daemon must bail out once the line
    // exceeds the limit instead of buffering without bound.
    let blob = vec![b'x'; MAX_LINE_BYTES + 10];
    hog.writer.write_all(&blob).unwrap();
    hog.writer.flush().unwrap();
    let reply = hog.read_reply();
    match parse_server(&reply).unwrap() {
        ServerMsg::Error(msg) => {
            assert!(msg.contains("oversized"), "unexpected error: {msg}");
            assert!(
                msg.contains(&MAX_LINE_BYTES.to_string()),
                "error should state the limit: {msg}"
            );
        }
        other => panic!("expected an oversized-frame error, got {other:?}"),
    }
    hog.expect_closed();

    let mut client = Client::connect(&addr);
    assert!(matches!(client.submit(&reqs[0]), ServerMsg::Decision(_)));
    client.shutdown_daemon();
    daemon.join().unwrap().unwrap();
}

#[test]
fn slow_two_part_write_still_decides() {
    let (reqs, addr, daemon) = boot(4, 33, "slow");

    // A client that stalls mid-line for longer than the daemon's read
    // timeout is slow, not torn: the fragment must be kept and the
    // completed line decided.
    let mut slow = Client::connect(&addr);
    let line = submit_line(&reqs[0]);
    let (head, tail) = line.as_bytes().split_at(line.len() / 2);
    slow.writer.write_all(head).unwrap();
    slow.writer.flush().unwrap();
    std::thread::sleep(Duration::from_millis(250));
    slow.writer.write_all(tail).unwrap();
    slow.writer.flush().unwrap();
    let reply = slow.read_reply();
    assert!(
        matches!(parse_server(&reply).unwrap(), ServerMsg::Decision(_)),
        "slow continuation not decided: {reply}"
    );
    slow.shutdown_daemon();
    let report = daemon.join().unwrap().unwrap();
    assert_eq!(report.stats.decided, 1);
}

#[test]
fn garbage_json_errors_but_connection_survives() {
    let (reqs, addr, daemon) = boot(4, 34, "garbage");

    let mut client = Client::connect(&addr);
    client
        .writer
        .write_all(b"{\"type\":\"submit\",\"v\":2,\"id\":oops}\n")
        .unwrap();
    let reply = client.read_reply();
    assert!(
        matches!(parse_server(&reply).unwrap(), ServerMsg::Error(_)),
        "expected an error line, got: {reply}"
    );
    // A complete-but-malformed line costs a reply, not the connection.
    assert!(matches!(client.submit(&reqs[0]), ServerMsg::Decision(_)));
    client.shutdown_daemon();
    daemon.join().unwrap().unwrap();
}

#[test]
fn invalid_utf8_drops_the_connection_only() {
    let (reqs, addr, daemon) = boot(4, 35, "utf8");

    let mut bad = Client::connect(&addr);
    bad.writer.write_all(b"\xff\xfe\n").unwrap();
    bad.writer.flush().unwrap();
    bad.expect_closed();

    let mut client = Client::connect(&addr);
    assert!(matches!(client.submit(&reqs[0]), ServerMsg::Decision(_)));
    client.shutdown_daemon();
    daemon.join().unwrap().unwrap();
}
