//! Daemon ↔ batch parity: driving the daemon with the closed-loop load
//! generator over a deterministic trace must reproduce the batch
//! `Simulation` run of the same trace exactly — same admit/reject
//! counts, bit-identical revenue — for both schemes. The daemon is the
//! same schedulers behind a socket, not a reimplementation.

#[path = "serve_common.rs"]
mod common;

use common::{scenario, spawn_daemon, Algo};
use mec_serve::{run_loadgen, LoadgenConfig, ServeConfig};
use mec_sim::Simulation;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};

fn check_parity(algo: Algo, requests: usize, seed: u64) {
    let (instance, reqs) = scenario(requests, seed);

    let sim = Simulation::new(&instance, &reqs).unwrap();
    let batch = match algo {
        Algo::Onsite => {
            let mut alg = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
            sim.run(&mut alg).unwrap()
        }
        Algo::Offsite => {
            let mut alg = OffsitePrimalDual::new(&instance);
            sim.run(&mut alg).unwrap()
        }
    };

    let (addr, daemon) = spawn_daemon(instance, algo, ServeConfig::new("127.0.0.1:0"));
    let mut lg = LoadgenConfig::new(addr.to_string());
    lg.shutdown_when_done = true;
    let client = run_loadgen(&reqs, &lg).unwrap();
    let report = daemon.join().unwrap().unwrap();

    assert_eq!(client.sent, reqs.len());
    assert_eq!(client.decided, reqs.len());
    assert_eq!(client.overloaded, 0, "closed loop cannot overload");
    assert_eq!(client.errors, 0);

    // Client-side bookkeeping, daemon counters and the batch engine must
    // all agree; revenue is a sum in identical order, so it is
    // bit-identical, not approximately equal.
    assert_eq!(client.admitted, batch.metrics.admitted);
    assert_eq!(client.rejected, reqs.len() - batch.metrics.admitted);
    assert_eq!(client.revenue.to_bits(), batch.metrics.revenue.to_bits());

    assert_eq!(report.stats.decided as usize, reqs.len());
    assert_eq!(report.stats.admitted as usize, batch.metrics.admitted);
    assert_eq!(
        report.stats.revenue.to_bits(),
        batch.metrics.revenue.to_bits()
    );
    assert_eq!(report.next_id, reqs.len());

    let final_stats = client.final_stats.expect("shutdown ack carries stats");
    assert_eq!(final_stats.decided, report.stats.decided);
    assert_eq!(final_stats.admitted, report.stats.admitted);
}

#[test]
fn daemon_matches_batch_onsite() {
    check_parity(Algo::Onsite, 2000, 7);
}

#[test]
fn daemon_matches_batch_offsite() {
    check_parity(Algo::Offsite, 2000, 7);
}

#[test]
fn daemon_matches_batch_small_seeds() {
    for seed in [1, 2, 3] {
        check_parity(Algo::Onsite, 300, seed);
        check_parity(Algo::Offsite, 300, seed);
    }
}
