//! Integration coverage for the extension modules, exercised end-to-end
//! across crates: SFC chains on a real topology, CSV export, the
//! comparison harness, windowed failure injection, the Watts–Strogatz
//! generator, and offline shadow prices.

use mec_sim::{compare, export, failure, IntraSlotOrder, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::stats::NetworkStats;
use mec_topology::zoo;
use mec_workload::stats::WorkloadStats;
use mec_workload::{Horizon, RequestGenerator, VnfCatalog, VnfTypeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::baselines::{DensityGreedy, RandomPlacement};
use vnfrel::chain::{run_chain_online, ChainGreedy, ChainPrimalDual, ChainRequest, ChainRequestId};
use vnfrel::onsite::offline::capacity_shadow_prices;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

fn instance(seed: u64) -> ProblemInstance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 0.5,
        capacity: (8, 12),
        reliability: (0.99, 0.9999),
    };
    let net = zoo::garr().into_network(&placement, &mut rng).unwrap();
    ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(16)).unwrap()
}

fn workload(inst: &ProblemInstance, n: usize, seed: u64) -> Vec<mec_workload::Request> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    RequestGenerator::new(inst.horizon())
        .reliability_band(0.9, 0.95)
        .unwrap()
        .payment_rate_band(1.0, 10.0)
        .unwrap()
        .generate(n, inst.catalog(), &mut rng)
        .unwrap()
}

#[test]
fn chains_schedule_on_garr_and_stay_feasible() {
    let inst = instance(11);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let horizon = inst.horizon();
    let reqs: Vec<ChainRequest> = (0..120)
        .map(|i| {
            let len = rng.gen_range(1..=3);
            let stages: Vec<VnfTypeId> =
                (0..len).map(|_| VnfTypeId(rng.gen_range(0..10))).collect();
            let arrival = rng.gen_range(0..horizon.len() - 1);
            ChainRequest::new(
                ChainRequestId(i),
                stages,
                mec_topology::Reliability::new(rng.gen_range(0.9..0.95)).unwrap(),
                arrival,
                rng.gen_range(1..=(horizon.len() - arrival).min(4)),
                rng.gen_range(1.0..30.0),
                horizon,
            )
            .unwrap()
        })
        .collect();
    let mut pd = ChainPrimalDual::new(&inst);
    let spd = run_chain_online(&mut pd, &reqs).unwrap();
    let mut gr = ChainGreedy::new(&inst);
    let sgr = run_chain_online(&mut gr, &reqs).unwrap();
    assert_eq!(pd.ledger().max_overflow(), 0.0);
    assert_eq!(gr.ledger().max_overflow(), 0.0);
    assert!(spd.admitted_count() + sgr.admitted_count() > 0);
}

#[test]
fn comparison_harness_agrees_with_individual_runs() {
    let inst = instance(21);
    let reqs = workload(&inst, 200, 22);
    let sim = Simulation::new(&inst, &reqs).unwrap();

    let mut solo = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
    let solo_revenue = sim.run(&mut solo).unwrap().metrics.revenue;

    let mut a = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
    let mut b = OnsiteGreedy::new(&inst);
    let mut c = DensityGreedy::new(&inst, 0.0).unwrap();
    let mut d = RandomPlacement::new(&inst, Scheme::OnSite, 5);
    let schedulers: &mut [&mut dyn OnlineScheduler] = &mut [&mut a, &mut b, &mut c, &mut d];
    let cmp = compare(&inst, &reqs, schedulers).unwrap();
    assert_eq!(cmp.rows.len(), 4);
    let row = cmp
        .rows
        .iter()
        .find(|r| r.algorithm == "alg1-primal-dual")
        .unwrap();
    assert!((row.revenue - solo_revenue).abs() < 1e-9);
    assert!(cmp.best().unwrap().revenue <= cmp.total_payment);
    assert!(cmp.to_string().contains("rev/best"));
}

#[test]
fn csv_exports_are_consistent_with_reports() {
    let inst = instance(31);
    let reqs = workload(&inst, 150, 32);
    let sim = Simulation::new(&inst, &reqs).unwrap();
    let mut alg = OnsiteGreedy::new(&inst);
    let report = sim.run(&mut alg).unwrap();
    let csv = export::timeline_csv(&report);
    assert_eq!(csv.lines().count(), inst.horizon().len() + 1);
    // Sum the admitted column; must equal the metrics count.
    let admitted: usize = csv
        .lines()
        .skip(1)
        .map(|l| l.split(',').nth(2).unwrap().parse::<usize>().unwrap())
        .sum();
    assert_eq!(admitted, report.metrics.admitted);

    // Workload stats agree with the generator's bands.
    let stats = WorkloadStats::compute(&reqs, inst.catalog(), inst.horizon());
    assert_eq!(stats.count, 150);
    assert!(stats.rate_spread() <= 10.0 + 1e-6);
    assert!((stats.total_payment - cmp_total(&reqs)).abs() < 1e-9);
}

fn cmp_total(reqs: &[mec_workload::Request]) -> f64 {
    reqs.iter().map(|r| r.payment()).sum()
}

#[test]
fn windowed_failures_never_violate_compounded_targets() {
    let inst = instance(41);
    let reqs = workload(&inst, 100, 42);
    let sim = Simulation::new(&inst, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
    let schedule = sim.run(&mut alg).unwrap().schedule;
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let report =
        failure::inject_failures_windowed(&inst, &reqs, &schedule, 10_000, &mut rng).unwrap();
    assert!(report.statistical_violations(4.0).is_empty());
}

#[test]
fn watts_strogatz_supports_full_pipeline() {
    let mut rng = ChaCha8Rng::seed_from_u64(51);
    let placement = CloudletPlacement {
        fraction: 0.5,
        capacity: (8, 12),
        reliability: (0.99, 0.9999),
    };
    let net = generators::watts_strogatz(24, 4, 0.15, &placement, &mut rng).unwrap();
    let stats = NetworkStats::compute(&net);
    assert!(stats.diameter.is_some());
    let inst = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(16)).unwrap();
    let reqs = workload(&inst, 120, 52);
    let sim = Simulation::new(&inst, &reqs).unwrap();
    let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
    let report = sim
        .run_ordered(&mut alg, IntraSlotOrder::DensityDescending)
        .unwrap();
    assert!(report.validation.is_feasible());
}

#[test]
fn shadow_prices_concentrate_where_lambda_does() {
    // Not a strict theorem — but on a congested instance, the slots the
    // offline LP prices must be a subset of "slots with load", and the
    // online prices must be zero wherever no request ever lands.
    let inst = instance(61);
    let reqs = workload(&inst, 140, 62);
    let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
    vnfrel::run_online(&mut alg, &reqs).unwrap();
    let offline = capacity_shadow_prices(&inst, &reqs).unwrap();

    let mut any_positive = false;
    for cloudlet in inst.network().cloudlets() {
        let j = cloudlet.id();
        for t in inst.horizon().slots() {
            let covered = reqs.iter().any(|r| r.active_at(t));
            if !covered {
                assert_eq!(alg.lambda(j, t), 0.0);
                assert!(offline[j.index()][t].abs() < 1e-9);
            }
            if offline[j.index()][t] > 1e-9 {
                any_positive = true;
            }
        }
    }
    assert!(
        any_positive,
        "140 requests on small cloudlets must bind capacity"
    );
}
