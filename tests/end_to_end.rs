//! End-to-end integration tests spanning all crates: build a real
//! topology, generate a workload, run every scheduler, validate every
//! schedule, and check the paper's qualitative claims at small scale.

use mec_sim::{failure, Simulation};
use mec_topology::generators::CloudletPlacement;
use mec_topology::zoo;
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::offline::OfflineConfig;
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

/// NSFNET with deliberately small cloudlets: the scarcity regime where
/// the paper's Figure 1 separation between the primal-dual algorithms
/// and greedy shows up (see EXPERIMENTS.md on capacity calibration).
fn build(seed: u64, requests: usize) -> (ProblemInstance, Vec<mec_workload::Request>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement {
        fraction: 0.5,
        capacity: (8, 12),
        reliability: (0.99, 0.9999),
    };
    let net = zoo::nsfnet().into_network(&placement, &mut rng).unwrap();
    let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(20)).unwrap();
    let reqs = RequestGenerator::new(instance.horizon())
        .reliability_band(0.9, 0.95)
        .unwrap()
        .payment_rate_band(1.0, 10.0)
        .unwrap()
        .generate(requests, instance.catalog(), &mut rng)
        .unwrap();
    (instance, reqs)
}

#[test]
fn all_four_online_schedulers_run_feasibly_on_nsfnet() {
    let (instance, reqs) = build(17, 200);
    let sim = Simulation::new(&instance, &reqs).unwrap();

    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let mut g1 = OnsiteGreedy::new(&instance);
    let mut alg2 = OffsitePrimalDual::new(&instance);
    let mut g2 = OffsiteGreedy::new(&instance);

    let schedulers: Vec<&mut dyn OnlineScheduler> = vec![&mut alg1, &mut g1, &mut alg2, &mut g2];
    for s in schedulers {
        let report = sim.run(s).unwrap();
        assert!(
            report.validation.is_feasible(),
            "{}: {:?}",
            report.metrics.algorithm,
            report.validation.violations
        );
        assert!(
            report.metrics.revenue > 0.0,
            "{} earned nothing",
            report.metrics.algorithm
        );
        assert_eq!(report.metrics.max_overflow, 0.0);
    }
}

#[test]
fn primal_dual_beats_greedy_under_scarcity_onsite() {
    // The paper's headline claim (Figure 1a): once resources are scarce,
    // Algorithm 1 collects more revenue than greedy. Average over seeds
    // to avoid flaky single-draw comparisons.
    let mut alg_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in [1, 2, 3, 4, 5] {
        let (instance, reqs) = build(seed, 500);
        let sim = Simulation::new(&instance, &reqs).unwrap();
        let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
        alg_total += sim.run(&mut alg1).unwrap().metrics.revenue;
        let mut g = OnsiteGreedy::new(&instance);
        greedy_total += sim.run(&mut g).unwrap().metrics.revenue;
    }
    assert!(
        alg_total > greedy_total,
        "algorithm 1 ({alg_total:.1}) should beat greedy ({greedy_total:.1}) under scarcity"
    );
}

#[test]
fn primal_dual_beats_greedy_under_scarcity_offsite() {
    let mut alg_total = 0.0;
    let mut greedy_total = 0.0;
    for seed in [1, 2, 3, 4, 5] {
        let (instance, reqs) = build(seed, 500);
        let sim = Simulation::new(&instance, &reqs).unwrap();
        let mut alg2 = OffsitePrimalDual::new(&instance);
        alg_total += sim.run(&mut alg2).unwrap().metrics.revenue;
        let mut g = OffsiteGreedy::new(&instance);
        greedy_total += sim.run(&mut g).unwrap().metrics.revenue;
    }
    assert!(
        alg_total > greedy_total,
        "algorithm 2 ({alg_total:.1}) should beat greedy ({greedy_total:.1}) under scarcity"
    );
}

#[test]
fn offline_optimum_dominates_and_alg1_within_competitive_ratio() {
    let (instance, reqs) = build(23, 30);
    let sim = Simulation::new(&instance, &reqs).unwrap();

    let offline =
        vnfrel::onsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    assert!(offline.exact, "small instance must solve exactly");
    let opt = offline.revenue();

    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let r1 = sim.run(&mut alg1).unwrap();
    assert!(r1.metrics.revenue <= opt + 1e-6);

    // Theorem 1: revenue ≥ OPT / (1 + a_max). (The theorem covers the raw
    // algorithm; with the capacity gate the guarantee can only weaken, so
    // check the raw variant.)
    let bounds = vnfrel::bounds::OnsiteBounds::compute(&instance, &reqs).unwrap();
    let mut raw = OnsitePrimalDual::new(&instance, CapacityPolicy::AllowViolations).unwrap();
    let mut schedule = vnfrel::Schedule::new();
    for r in &reqs {
        let d = raw.decide(r);
        schedule.record(r, d);
    }
    assert!(
        schedule.revenue() + 1e-6 >= opt / bounds.competitive_ratio(),
        "raw alg1 {} below OPT/{} = {}",
        schedule.revenue(),
        bounds.competitive_ratio(),
        opt / bounds.competitive_ratio()
    );
}

#[test]
fn admitted_requests_survive_failure_injection() {
    let (instance, reqs) = build(29, 150);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(77);

    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let s1 = sim.run(&mut alg1).unwrap().schedule;
    let report = failure::inject_failures(&instance, &reqs, &s1, 20_000, &mut rng).unwrap();
    assert!(report.statistical_violations(4.0).is_empty());

    let mut alg2 = OffsitePrimalDual::new(&instance);
    let s2 = sim.run(&mut alg2).unwrap().schedule;
    let report = failure::inject_failures(&instance, &reqs, &s2, 20_000, &mut rng).unwrap();
    assert!(report.statistical_violations(4.0).is_empty());
}

#[test]
fn offsite_admits_requirements_above_single_cloudlet_reliability() {
    // Build a network whose cloudlets are all mediocre and ask for more.
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let placement = CloudletPlacement {
        fraction: 1.0,
        capacity: (40, 60),
        reliability: (0.93, 0.96),
    };
    let net = zoo::abilene().into_network(&placement, &mut rng).unwrap();
    let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(16)).unwrap();
    let reqs = RequestGenerator::new(instance.horizon())
        .reliability_band(0.97, 0.99)
        .unwrap()
        .generate(60, instance.catalog(), &mut rng)
        .unwrap();
    let sim = Simulation::new(&instance, &reqs).unwrap();

    // On-site cannot serve anyone (r_c ≤ R_i everywhere)…
    let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
    let r1 = sim.run(&mut alg1).unwrap();
    assert_eq!(r1.metrics.admitted, 0);

    // …but off-site replication can.
    let mut alg2 = OffsitePrimalDual::new(&instance);
    let r2 = sim.run(&mut alg2).unwrap();
    assert!(r2.metrics.admitted > 0);
    assert!(r2.validation.is_feasible());
}

#[test]
fn offsite_offline_dominates_alg2_at_small_scale() {
    let (instance, reqs) = build(41, 15);
    let sim = Simulation::new(&instance, &reqs).unwrap();
    let offline =
        vnfrel::offsite::offline::solve(&instance, &reqs, &OfflineConfig::default()).unwrap();
    let mut alg2 = OffsitePrimalDual::new(&instance);
    let r2 = sim.run(&mut alg2).unwrap();
    assert!(
        r2.metrics.revenue <= offline.revenue() + 1e-6,
        "alg2 {} beat 'optimal' {}",
        r2.metrics.revenue,
        offline.revenue()
    );
    if let Some((_, schedule)) = &offline.incumbent {
        let rep = vnfrel::validate_schedule(&instance, &reqs, schedule, Scheme::OffSite).unwrap();
        assert!(rep.is_feasible(), "{:?}", rep.violations);
    }
}
