//! Reproducibility: identical seeds must give bit-identical topologies,
//! workloads, schedules, and sweep tables — the property every
//! experiment in EXPERIMENTS.md relies on.

use mec_sim::Simulation;
use mec_topology::generators::{self, CloudletPlacement};
use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::offsite::OffsitePrimalDual;
use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
use vnfrel::ProblemInstance;
use vnfrel_bench::{Scenario, ScenarioParams};

#[test]
fn identical_seeds_identical_schedules() {
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let placement = CloudletPlacement {
            fraction: 0.6,
            capacity: (20, 40),
            reliability: (0.99, 0.9999),
        };
        let net = generators::waxman(15, 0.5, 0.3, &placement, &mut rng).unwrap();
        let instance = ProblemInstance::new(net, VnfCatalog::standard(), Horizon::new(12)).unwrap();
        let reqs = RequestGenerator::new(instance.horizon())
            .generate(80, instance.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&instance, &reqs).unwrap();
        let mut alg1 = OnsitePrimalDual::new(&instance, CapacityPolicy::Enforce).unwrap();
        let r1 = sim.run(&mut alg1).unwrap();
        let mut alg2 = OffsitePrimalDual::new(&instance);
        let r2 = sim.run(&mut alg2).unwrap();
        (
            r1.schedule,
            r2.schedule,
            r1.metrics.revenue,
            r2.metrics.revenue,
        )
    };
    let a = run(5150);
    let b = run(5150);
    assert_eq!(a.0, b.0, "on-site schedules differ across identical runs");
    assert_eq!(a.1, b.1, "off-site schedules differ across identical runs");
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);

    let c = run(5151);
    // Different seeds should (overwhelmingly) give different outcomes.
    assert!(
        a.2 != c.2 || a.3 != c.3,
        "different seeds gave identical revenue"
    );
}

#[test]
fn scenario_harness_is_deterministic() {
    let params = ScenarioParams {
        requests: 120,
        h_ratio: 3.0,
        k_ratio: 1.05,
        seed: 42,
    };
    let s1 = Scenario::build(&params);
    let s2 = Scenario::build(&params);
    assert_eq!(s1.requests, s2.requests);
    assert_eq!(s1.alg1_revenue(), s2.alg1_revenue());
    assert_eq!(s1.alg2_revenue(), s2.alg2_revenue());
    assert_eq!(s1.greedy_onsite_revenue(), s2.greedy_onsite_revenue());
    assert_eq!(s1.greedy_offsite_revenue(), s2.greedy_offsite_revenue());
}

#[test]
fn identical_seeds_identical_failure_streams_and_recovery() {
    use mec_sim::{FailureConfig, FailureProcess, RecoveryPolicy};

    let config = FailureConfig {
        cloudlet_mttf: 5.0,
        cloudlet_mttr: 2.0,
        instance_kill_rate: 0.1,
    };
    let run = |trace_seed: u64| {
        let scenario = Scenario::build(&ScenarioParams {
            requests: 100,
            seed: 21,
            ..ScenarioParams::default()
        });
        let trace = FailureProcess::generate(
            scenario.instance.network(),
            &config,
            scenario.instance.horizon(),
            &mut ChaCha8Rng::seed_from_u64(trace_seed),
        )
        .unwrap();
        // The event stream is schedule-independent: collect it before
        // any scheduler sees it.
        let events: Vec<_> = trace.iter().cloned().collect();
        let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
        let mut on = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
        let r_on = sim
            .run_with_failures(&mut on, &trace, RecoveryPolicy::SchemeMatching)
            .unwrap();
        let mut off = OffsitePrimalDual::new(&scenario.instance);
        let r_off = sim
            .run_with_failures(&mut off, &trace, RecoveryPolicy::SchemeMatching)
            .unwrap();
        (events, r_on, r_off)
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(
        a.0, b.0,
        "failure event streams differ across identical seeds"
    );
    assert_eq!(
        a.1, b.1,
        "on-site recovery outcomes differ across identical seeds"
    );
    assert_eq!(
        a.2, b.2,
        "off-site recovery outcomes differ across identical seeds"
    );

    let c = run(78);
    assert!(
        a.0 != c.0 || a.0.is_empty(),
        "different trace seeds gave identical event streams"
    );
}

#[test]
fn sweep_tables_are_reproducible() {
    let t1 = vnfrel_bench::fig2b_sweep(&[1.0, 1.08], 60, &[7, 8], 1);
    let t2 = vnfrel_bench::fig2b_sweep(&[1.0, 1.08], 60, &[7, 8], 1);
    assert_eq!(t1, t2);
}

#[test]
fn sweep_tables_are_thread_count_invariant() {
    // The parallel fan-out must not change any figure table: the serial
    // path is the reference, and 4 workers with the ordered merge must
    // reproduce it bit for bit.
    let serial = vnfrel_bench::fig1_sweep(vnfrel::Scheme::OnSite, &[20, 40], &[3, 4], false, 1, 1);
    let threaded =
        vnfrel_bench::fig1_sweep(vnfrel::Scheme::OnSite, &[20, 40], &[3, 4], false, 1, 4);
    assert_eq!(serial, threaded, "fig1 table depends on thread count");

    let serial = vnfrel_bench::fig2a_sweep(&[1.0, 6.0], 40, &[3, 4], 1);
    let threaded = vnfrel_bench::fig2a_sweep(&[1.0, 6.0], 40, &[3, 4], 4);
    assert_eq!(serial, threaded, "fig2a table depends on thread count");

    let serial = vnfrel_bench::fig2b_sweep(&[1.0, 1.08], 40, &[3, 4], 1);
    let threaded = vnfrel_bench::fig2b_sweep(&[1.0, 1.08], 40, &[3, 4], 4);
    assert_eq!(serial, threaded, "fig2b table depends on thread count");

    let (on1, off1) = vnfrel_bench::fig1_both_sweep(&[20, 40], &[3, 4], 1);
    let (on4, off4) = vnfrel_bench::fig1_both_sweep(&[20, 40], &[3, 4], 4);
    assert_eq!(on1, on4);
    assert_eq!(off1, off4);
}

#[test]
fn monte_carlo_injection_is_thread_count_invariant() {
    use mec_sim::failure::{inject_failures_parallel, FailureReport};
    use vnfrel::run_online;

    let scenario = Scenario::build(&ScenarioParams {
        requests: 80,
        seed: 9,
        ..ScenarioParams::default()
    });
    let mut alg1 = OnsitePrimalDual::new(&scenario.instance, CapacityPolicy::Enforce).unwrap();
    let schedule = run_online(&mut alg1, &scenario.requests).unwrap();
    let run = |threads: usize| -> FailureReport {
        inject_failures_parallel(
            &scenario.instance,
            &scenario.requests,
            &schedule,
            2_000,
            123,
            threads,
        )
        .unwrap()
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_eq!(
            serial,
            run(threads),
            "MC failure report depends on thread count ({threads})"
        );
    }
}
