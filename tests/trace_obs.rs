//! Observability integration suite.
//!
//! * **Trace completeness** — every request processed by any of the four
//!   schedulers produces exactly one decision event, and the admit split
//!   matches the engine's independently computed [`RunMetrics`].
//! * **Golden rejection reasons** — each [`RejectReason`] variant is
//!   produced by a crafted scenario, pinning the reason taxonomy.
//! * **Noop/Ring equivalence** — attaching a recording sink never
//!   changes a scheduling decision.
//! * **Schema round-trip** — every trace-event variant survives
//!   JSONL serialization byte-exactly.
//! * **Metrics exposition** — the decision metrics fold matches the
//!   trace, in both Prometheus and JSONL form.

use std::cell::RefCell;
use std::rc::Rc;

use mec_obs::{
    parse_trace, to_json, DecisionEvent, DecisionMetricIds, MetricsRegistry, MetricsSink, Outcome,
    RejectReason, RingSink, SitePlacement, TraceEvent,
};
use mec_sim::Simulation;
use mec_topology::{NetworkBuilder, Reliability};
use mec_workload::{Horizon, Request, RequestId, VnfCatalog, VnfTypeId};
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{run_online, OnlineScheduler, ProblemInstance};
use vnfrel_bench::{Scenario, ScenarioParams};

fn rel(v: f64) -> Reliability {
    Reliability::new(v).unwrap()
}

/// Chain network with one cloudlet of the given (capacity, reliability)
/// per AP.
fn instance(cloudlets: &[(u64, f64)], horizon: usize) -> ProblemInstance {
    let mut b = NetworkBuilder::new();
    let mut prev = None;
    for (i, &(cap, r)) in cloudlets.iter().enumerate() {
        let ap = b.add_ap(format!("ap{i}"));
        if let Some(p) = prev {
            b.add_link(p, ap, 1.0).unwrap();
        }
        prev = Some(ap);
        b.add_cloudlet(ap, cap, rel(r)).unwrap();
    }
    ProblemInstance::new(
        b.build().unwrap(),
        VnfCatalog::standard(),
        Horizon::new(horizon),
    )
    .unwrap()
}

fn request(id: usize, vnf: usize, req: f64, arrival: usize, dur: usize, pay: f64) -> Request {
    Request::new(
        RequestId(id),
        VnfTypeId(vnf),
        rel(req),
        arrival,
        dur,
        pay,
        Horizon::new(20),
    )
    .unwrap()
}

/// Decision events recorded by `scheduler` over `requests`, taking the
/// sink back out of the scheduler via the supplied extractor.
fn decisions_of(events: Vec<TraceEvent>) -> Vec<DecisionEvent> {
    events
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::Decision(d) => Some(d),
            _ => None,
        })
        .collect()
}

/// The single decision event a one-request probe produced.
fn sole_decision(events: Vec<TraceEvent>) -> DecisionEvent {
    let mut ds = decisions_of(events);
    assert_eq!(ds.len(), 1, "expected exactly one decision event");
    ds.pop().unwrap()
}

// --- trace completeness ------------------------------------------------

/// One decision event per request, cross-checked against RunMetrics, for
/// all four schedulers on a contended shared scenario.
#[test]
fn every_scheduler_emits_one_decision_per_request() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 300,
        ..ScenarioParams::default()
    });
    let sim = Simulation::new(&scenario.instance, &scenario.requests).unwrap();
    let ring = || Rc::new(RefCell::new(RingSink::new(400)));

    let mut checked = 0;
    let mut check = |name: &str, sink: Rc<RefCell<RingSink>>, report: mec_sim::RunReport| {
        let sink = Rc::try_unwrap(sink).unwrap().into_inner();
        let events = sink.into_events();
        let decisions = decisions_of(events);
        assert_eq!(
            decisions.len(),
            report.metrics.total,
            "{name}: one decision event per processed request"
        );
        let admits = decisions.iter().filter(|d| d.outcome.is_admit()).count();
        assert_eq!(
            admits, report.metrics.admitted,
            "{name}: admit events match RunMetrics.admitted"
        );
        for d in &decisions {
            assert_eq!(d.algorithm, name, "{name}: algorithm label");
        }
        checked += 1;
    };

    {
        let s = ring();
        let mut alg =
            OnsitePrimalDual::with_sink(&scenario.instance, CapacityPolicy::Enforce, Rc::clone(&s))
                .unwrap();
        let report = sim.run(&mut alg).unwrap();
        drop(alg);
        check("alg1-primal-dual", s, report);
    }
    {
        let s = ring();
        let mut alg = OnsiteGreedy::with_sink(&scenario.instance, Rc::clone(&s));
        let report = sim.run(&mut alg).unwrap();
        drop(alg);
        check("greedy-onsite", s, report);
    }
    {
        let s = ring();
        let mut alg = OffsitePrimalDual::with_sink(&scenario.instance, Rc::clone(&s));
        let report = sim.run(&mut alg).unwrap();
        drop(alg);
        check("alg2-primal-dual", s, report);
    }
    {
        let s = ring();
        let mut alg = OffsiteGreedy::with_sink(&scenario.instance, Rc::clone(&s));
        let report = sim.run(&mut alg).unwrap();
        drop(alg);
        check("greedy-offsite", s, report);
    }
    assert_eq!(checked, 4);

    // The scenario must actually exercise both outcomes, or the
    // completeness check proves nothing.
    let s = ring();
    let mut alg =
        OnsitePrimalDual::with_sink(&scenario.instance, CapacityPolicy::Enforce, Rc::clone(&s))
            .unwrap();
    let report = sim.run(&mut alg).unwrap();
    drop(alg);
    assert!(report.metrics.admitted > 0, "scenario admits nothing");
    assert!(
        report.metrics.admitted < report.metrics.total,
        "scenario rejects nothing"
    );
}

// --- golden rejection reasons ------------------------------------------

#[test]
fn unknown_vnf_reason() {
    let inst = instance(&[(100, 0.999)], 20);
    let mut alg =
        OnsitePrimalDual::with_sink(&inst, CapacityPolicy::Enforce, RingSink::new(4)).unwrap();
    alg.decide(&request(0, 999, 0.9, 0, 1, 5.0));
    let d = sole_decision(alg.into_sink().into_events());
    assert_eq!(
        d.outcome,
        Outcome::Reject {
            reason: RejectReason::UnknownVnf,
            dual_cost: None,
            margin: None
        }
    );
}

#[test]
fn reliability_infeasible_reason_onsite() {
    // Requirement above the only cloudlet's reliability: no eligible site.
    let inst = instance(&[(100, 0.93)], 20);
    let mut alg =
        OnsitePrimalDual::with_sink(&inst, CapacityPolicy::Enforce, RingSink::new(4)).unwrap();
    alg.decide(&request(0, 0, 0.95, 0, 1, 100.0));
    let d = sole_decision(alg.into_sink().into_events());
    assert_eq!(
        d.outcome,
        Outcome::Reject {
            reason: RejectReason::ReliabilityInfeasible,
            dual_cost: None,
            margin: None
        }
    );
}

#[test]
fn reliability_infeasible_reason_offsite() {
    // One weak cloudlet cannot accumulate the log-reliability target even
    // with capacity to spare.
    let inst = instance(&[(10, 0.5)], 20);
    let mut alg = OffsitePrimalDual::with_sink(&inst, RingSink::new(4));
    alg.decide(&request(0, 8, 0.99, 0, 2, 100.0));
    let d = sole_decision(alg.into_sink().into_events());
    match d.outcome {
        Outcome::Reject {
            reason: RejectReason::ReliabilityInfeasible,
            ..
        } => {}
        other => panic!("expected reliability-infeasible, got {other:?}"),
    }
}

#[test]
fn doomed_short_circuit_reason() {
    // Saturate the single cloudlet's prices with identical low payers:
    // once λ makes the unrestricted minimum exceed the payment, the
    // pre-selection short-circuit fires.
    let inst = instance(&[(10, 0.999)], 20);
    let mut alg =
        OnsitePrimalDual::with_sink(&inst, CapacityPolicy::AllowViolations, RingSink::new(256))
            .unwrap();
    for i in 0..200 {
        alg.decide(&request(i, 1, 0.9, 0, 1, 1.5));
    }
    let decisions = decisions_of(alg.into_sink().into_events());
    let doomed: Vec<_> = decisions
        .iter()
        .filter_map(|d| match &d.outcome {
            Outcome::Reject {
                reason: RejectReason::DoomedShortCircuit,
                dual_cost,
                margin,
            } => Some((d.payment, dual_cost.unwrap(), margin.unwrap())),
            _ => None,
        })
        .collect();
    assert!(
        !doomed.is_empty(),
        "price saturation must doom some request"
    );
    for (pay, cost, margin) in doomed {
        assert!(margin <= 0.0, "doomed requests have non-positive margin");
        assert!((margin - (pay - cost)).abs() < 1e-9);
    }
}

#[test]
fn capacity_gate_reason_greedy() {
    // vnf 1 on a cloudlet reliable enough for one instance; capacity for
    // exactly one placement. The second identical request finds an
    // eligible but full cloudlet.
    let inst = instance(&[(10, 0.999)], 20);
    let w = inst.catalog().get(VnfTypeId(1)).unwrap().compute();
    let tight = instance(&[(w, 0.999)], 20);
    let mut alg = OnsiteGreedy::with_sink(&tight, RingSink::new(4));
    assert!(alg.decide(&request(0, 1, 0.9, 0, 1, 5.0)).is_admit());
    alg.decide(&request(1, 1, 0.9, 0, 1, 5.0));
    let decisions = decisions_of(alg.into_sink().into_events());
    assert_eq!(decisions.len(), 2);
    match &decisions[1].outcome {
        Outcome::Reject {
            reason: RejectReason::CapacityGate,
            ..
        } => {}
        other => panic!("expected capacity-gate, got {other:?}"),
    }
    drop(inst);
}

#[test]
fn capacity_gate_reason_primal_dual() {
    // A σ=6 scaled gate starts failing long before the payment test does
    // (the existing rejection-counter scenario, now pinned to the event).
    let inst = instance(&[(10, 0.999)], 20);
    let mut alg =
        OnsitePrimalDual::with_sink(&inst, CapacityPolicy::Scaled(6.0), RingSink::new(16)).unwrap();
    for i in 0..8 {
        alg.decide(&request(i, 1, 0.9, 0, 1, 1e6));
    }
    let decisions = decisions_of(alg.into_sink().into_events());
    assert!(
        decisions.iter().any(|d| matches!(
            d.outcome,
            Outcome::Reject {
                reason: RejectReason::CapacityGate,
                ..
            }
        )),
        "scaled gate must reject at least one request: {decisions:?}"
    );
}

#[test]
fn payment_test_reason_offsite() {
    // Saturate the prices with high payers, then probe with a payment too
    // small to beat any cloudlet's price ratio.
    let inst = instance(&[(10, 0.99)], 20);
    let mut alg = OffsitePrimalDual::with_sink(&inst, RingSink::new(32));
    for i in 0..20 {
        alg.decide(&request(i, 8, 0.9, 0, 2, 50.0));
    }
    alg.decide(&request(20, 8, 0.9, 0, 2, 1e-6));
    let decisions = decisions_of(alg.into_sink().into_events());
    let last = decisions.last().unwrap();
    match &last.outcome {
        Outcome::Reject {
            reason: RejectReason::PaymentTest,
            dual_cost: Some(cost),
            margin: Some(margin),
        } => {
            assert!((margin - (last.payment - cost)).abs() < 1e-9);
            assert!(*margin <= 0.0);
        }
        other => panic!("expected payment-test with costs, got {other:?}"),
    }
}

#[test]
fn payment_test_reason_onsite_selected_site() {
    // The non-short-circuit on-site payment test needs the *cheapest*
    // cloudlet gated out by capacity while a pricier one still fits:
    // fill c0 exactly with a low payer (λ_0 barely moves), pump c1's
    // price with high payers, then probe with a payment between the two
    // dual costs.
    let probe_vnf = 1;
    let catalog = VnfCatalog::standard();
    let w = catalog.get(VnfTypeId(probe_vnf)).unwrap().compute();
    let inst = instance(&[(w, 0.999), (100 * w, 0.999)], 20);
    let mut alg =
        OnsitePrimalDual::with_sink(&inst, CapacityPolicy::Enforce, RingSink::new(32)).unwrap();
    // Fills c0 (both prices zero, tie toward the lower id).
    assert!(alg
        .decide(&request(0, probe_vnf, 0.9, 0, 1, 2.0))
        .is_admit());
    // Pump λ_1 (c0's gate now fails, so these land on c1).
    for i in 1..=10 {
        assert!(alg
            .decide(&request(i, probe_vnf, 0.9, 0, 1, 1000.0))
            .is_admit());
    }
    // c0 is cheapest but full; c1 is selected and too expensive.
    let d = alg.decide(&request(11, probe_vnf, 0.9, 0, 1, 10.0));
    assert!(!d.is_admit());
    let decisions = decisions_of(alg.into_sink().into_events());
    let last = decisions.last().unwrap();
    match &last.outcome {
        Outcome::Reject {
            reason: RejectReason::PaymentTest,
            dual_cost: Some(cost),
            margin: Some(margin),
        } => {
            assert!((margin - (last.payment - cost)).abs() < 1e-9);
        }
        other => panic!("expected selected-site payment-test, got {other:?}"),
    }
}

// --- sink equivalence ---------------------------------------------------

/// Recording a trace must never change a decision: identical schedules
/// with and without a sink attached, for all four schedulers.
#[test]
fn recording_sink_does_not_change_decisions() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 250,
        ..ScenarioParams::default()
    });
    let inst = &scenario.instance;
    let reqs = &scenario.requests;

    let plain = run_online(
        &mut OnsitePrimalDual::new(inst, CapacityPolicy::Enforce).unwrap(),
        reqs,
    )
    .unwrap();
    let traced = run_online(
        &mut OnsitePrimalDual::with_sink(inst, CapacityPolicy::Enforce, RingSink::new(256))
            .unwrap(),
        reqs,
    )
    .unwrap();
    assert_eq!(plain, traced, "alg1 decisions changed under tracing");

    let plain = run_online(&mut OnsiteGreedy::new(inst), reqs).unwrap();
    let traced = run_online(&mut OnsiteGreedy::with_sink(inst, RingSink::new(256)), reqs).unwrap();
    assert_eq!(plain, traced, "greedy-onsite decisions changed");

    let plain = run_online(&mut OffsitePrimalDual::new(inst), reqs).unwrap();
    let traced = run_online(
        &mut OffsitePrimalDual::with_sink(inst, RingSink::new(256)),
        reqs,
    )
    .unwrap();
    assert_eq!(plain, traced, "alg2 decisions changed");

    let plain = run_online(&mut OffsiteGreedy::new(inst), reqs).unwrap();
    let traced = run_online(
        &mut OffsiteGreedy::with_sink(inst, RingSink::new(256)),
        reqs,
    )
    .unwrap();
    assert_eq!(plain, traced, "greedy-offsite decisions changed");
}

// --- schema round-trip --------------------------------------------------

/// Every event variant (and every Outcome shape) survives the JSONL
/// round-trip byte-exactly — f64 payloads included.
#[test]
fn trace_schema_round_trips_every_variant() {
    let events = vec![
        TraceEvent::Decision(DecisionEvent {
            request: 17,
            algorithm: "alg1-primal-dual".into(),
            scheme: "onsite".into(),
            slot: 3,
            payment: 4.25,
            outcome: Outcome::Admit {
                dual_cost: 1.0625,
                margin: 3.1875,
                sites: vec![
                    SitePlacement {
                        cloudlet: 2,
                        instances: 3,
                        dual_cost: 0.5625,
                    },
                    SitePlacement {
                        cloudlet: 5,
                        instances: 1,
                        dual_cost: 0.5,
                    },
                ],
            },
        }),
        TraceEvent::Decision(DecisionEvent {
            request: 18,
            algorithm: "alg2-primal-dual".into(),
            scheme: "offsite".into(),
            slot: 4,
            payment: 0.1,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: Some(7.75),
                margin: Some(-7.65),
            },
        }),
        TraceEvent::Decision(DecisionEvent {
            request: 19,
            algorithm: "greedy-onsite".into(),
            scheme: "onsite".into(),
            slot: 0,
            payment: f64::MAX,
            outcome: Outcome::Reject {
                reason: RejectReason::UnknownVnf,
                dual_cost: None,
                margin: None,
            },
        }),
        TraceEvent::OutageStart {
            slot: 2,
            cloudlet: 1,
        },
        TraceEvent::OutageEnd {
            slot: 5,
            cloudlet: 1,
        },
        TraceEvent::InstanceKill {
            slot: 3,
            cloudlet: 0,
            request: 17,
        },
        TraceEvent::SlaBreach {
            slot: 3,
            request: 17,
        },
        TraceEvent::Recovery {
            slot: 4,
            request: 17,
            success: true,
            cloudlets: vec![2, 4],
        },
        TraceEvent::Recovery {
            slot: 5,
            request: 18,
            success: false,
            cloudlets: vec![],
        },
    ];
    // All RejectReason variants appear somewhere in the suite; here check
    // they each survive individually too.
    for reason in [
        RejectReason::PaymentTest,
        RejectReason::ReliabilityInfeasible,
        RejectReason::CapacityGate,
        RejectReason::DoomedShortCircuit,
        RejectReason::UnknownVnf,
    ] {
        let e = TraceEvent::Decision(DecisionEvent {
            request: 0,
            algorithm: "x".into(),
            scheme: "onsite".into(),
            slot: 0,
            payment: 1.0,
            outcome: Outcome::Reject {
                reason,
                dual_cost: None,
                margin: None,
            },
        });
        let text = to_json(&e);
        assert_eq!(parse_trace(&text).unwrap(), vec![e]);
    }

    let jsonl: String = events.iter().map(|e| to_json(e) + "\n").collect();
    let parsed = parse_trace(&jsonl).unwrap();
    assert_eq!(parsed, events);
    // Round-trip again: serialize the parsed events and compare bytes.
    let jsonl2: String = parsed.iter().map(|e| to_json(e) + "\n").collect();
    assert_eq!(jsonl, jsonl2);
}

// --- metrics exposition -------------------------------------------------

/// The metrics fold over a real run agrees with the trace itself, and
/// both exporters carry the counts.
#[test]
fn decision_metrics_match_trace() {
    let scenario = Scenario::build(&ScenarioParams {
        requests: 200,
        ..ScenarioParams::default()
    });
    let mut registry = MetricsRegistry::new();
    let ids = DecisionMetricIds::register(&mut registry);
    let sink = MetricsSink::with_inner(&registry, ids, RingSink::new(256));
    let mut alg =
        OnsitePrimalDual::with_sink(&scenario.instance, CapacityPolicy::Enforce, sink).unwrap();
    run_online(&mut alg, &scenario.requests).unwrap();
    let decisions = decisions_of(alg.into_sink().into_inner().into_events());

    let admits = decisions.iter().filter(|d| d.outcome.is_admit()).count();
    let rejects = decisions.len() - admits;
    assert!(admits > 0 && rejects > 0, "need both outcomes");

    let prom = registry.to_prometheus();
    assert!(
        prom.contains(&format!("vnfrel_admissions_total {admits}")),
        "{prom}"
    );
    assert!(
        prom.contains(&format!("vnfrel_rejections_total {rejects}")),
        "{prom}"
    );
    assert!(prom.contains("# TYPE vnfrel_dual_cost histogram"), "{prom}");
    assert!(
        prom.contains("vnfrel_dual_cost_bucket{le=\"+Inf\"}"),
        "{prom}"
    );

    let jsonl = registry.to_jsonl();
    assert!(jsonl.contains("\"vnfrel_admissions_total\""), "{jsonl}");
    assert!(jsonl.lines().count() >= 3, "one line per metric family");
}
