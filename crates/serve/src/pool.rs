//! A bounded MPMC queue built on `Mutex` + `Condvar`.
//!
//! Both daemon queues use it: the connection queue feeding the worker
//! pool (multi-consumer) and the ingress queue feeding the single decide
//! thread. Bounding is the backpressure mechanism — [`BoundedQueue::try_push`]
//! fails immediately when the queue is full so the caller can send a
//! typed overload rejection instead of stalling the socket.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Result of a [`BoundedQueue::pop_timeout`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty for the whole wait.
    TimedOut,
    /// The queue is closed and drained; no item will ever arrive.
    Closed,
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking. Returns the item back on a full or
    /// closed queue so the caller can reject it explicitly.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        if s.closed || s.items.len() >= self.capacity {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full. Returns the item back
    /// only if the queue is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.closed {
                return Err(item);
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).unwrap();
        }
    }

    /// Dequeues, blocking until an item arrives or the queue closes.
    /// `None` means closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Dequeues without blocking; `None` when currently empty (closed or
    /// not).
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        let item = s.items.pop_front();
        drop(s);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Dequeues, waiting at most `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> PopTimeout<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return PopTimeout::Item(item);
            }
            if s.closed {
                return PopTimeout::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return PopTimeout::TimedOut;
            }
            let (guard, result) = self.not_empty.wait_timeout(s, deadline - now).unwrap();
            s = guard;
            if result.timed_out() && s.items.is_empty() {
                return if s.closed {
                    PopTimeout::Closed
                } else {
                    PopTimeout::TimedOut
                };
            }
        }
    }

    /// Closes the queue: producers start failing, consumers drain what is
    /// left and then observe the close.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert!(q.is_empty());
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_wakes_consumers_and_rejects_producers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.try_push(7), Err(7));
        assert_eq!(q.push(8), Err(8));
    }

    #[test]
    fn close_lets_consumers_drain() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), PopTimeout::Closed);
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q = BoundedQueue::new(4);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            PopTimeout::TimedOut
        );
        q.try_push(9).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), PopTimeout::Item(9));
    }

    #[test]
    fn blocked_push_resumes_after_pop() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push(2));
        thread::sleep(Duration::from_millis(5));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap().is_ok());
        assert_eq!(q.pop(), Some(2));
    }
}
