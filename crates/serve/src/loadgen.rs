//! Closed-loop load generator: replays a `mec-workload` trace against a
//! running daemon over one connection, one outstanding request at a
//! time, recording end-to-end admission latency.
//!
//! Closed-loop means the generator waits for each decision before
//! sending the next request, so submission order equals decision order —
//! exactly the batch engine's arrival order. That is what makes the
//! daemon's decision stream comparable (and byte-identical) to a batch
//! `Simulation` run of the same trace. `rate` paces *send* times but
//! never reorders.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mec_workload::Request;

use crate::error::ServeError;
use crate::protocol::{
    encode_client, parse_server, ClientMsg, ControlAction, ServeStats, ServerMsg, SubmitRequest,
};

/// How the load generator drives the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `"127.0.0.1:7070"`.
    pub addr: String,
    /// Target arrival rate in requests/second; `f64::INFINITY` (the
    /// default) sends as fast as the closed loop allows.
    pub rate: f64,
    /// Skip requests with id below this (resume after a daemon restart).
    pub start_at: usize,
    /// Send a `shutdown` control after the last request and wait for the
    /// drain-then-snapshot ack.
    pub shutdown_when_done: bool,
}

impl LoadgenConfig {
    /// Full-speed config against `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            rate: f64::INFINITY,
            start_at: 0,
            shutdown_when_done: false,
        }
    }
}

/// Latency summary over all decided requests, in seconds.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
    /// Histogram counts over [`LatencySummary::BUCKET_BOUNDS`] plus a
    /// final overflow bucket.
    pub buckets: Vec<u64>,
}

impl LatencySummary {
    /// Upper bounds (seconds) of the latency histogram buckets.
    pub const BUCKET_BOUNDS: [f64; 8] = [25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 5e-3, 25e-3];

    /// Summarizes a set of samples (sorted internally).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                buckets: vec![0; Self::BUCKET_BOUNDS.len() + 1],
                ..LatencySummary::default()
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = samples.len();
        let pct = |q: f64| -> f64 {
            let idx = ((count - 1) as f64 * q).round() as usize;
            samples[idx]
        };
        let mut buckets = vec![0u64; Self::BUCKET_BOUNDS.len() + 1];
        for &s in &samples {
            let idx = Self::BUCKET_BOUNDS
                .iter()
                .position(|&b| s <= b)
                .unwrap_or(Self::BUCKET_BOUNDS.len());
            buckets[idx] += 1;
        }
        LatencySummary {
            count,
            mean: samples.iter().sum::<f64>() / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: samples[count - 1],
            buckets,
        }
    }

    /// Renders the summary plus bucket table as plain text (the CI
    /// latency-histogram artifact).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "samples {}", self.count);
        let _ = writeln!(out, "mean_us {:.2}", self.mean * 1e6);
        let _ = writeln!(out, "p50_us {:.2}", self.p50 * 1e6);
        let _ = writeln!(out, "p90_us {:.2}", self.p90 * 1e6);
        let _ = writeln!(out, "p99_us {:.2}", self.p99 * 1e6);
        let _ = writeln!(out, "max_us {:.2}", self.max * 1e6);
        for (i, count) in self.buckets.iter().enumerate() {
            match Self::BUCKET_BOUNDS.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "le_{}us {}", (bound * 1e6) as u64, count);
                }
                None => {
                    let _ = writeln!(out, "le_inf {count}");
                }
            }
        }
        out
    }
}

/// What a completed load-generation run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests submitted.
    pub sent: usize,
    /// Decisions received.
    pub decided: usize,
    /// Admissions among them.
    pub admitted: usize,
    /// Rejections among them.
    pub rejected: usize,
    /// Typed overload rejections (request dropped before the scheduler).
    pub overloaded: usize,
    /// Error replies.
    pub errors: usize,
    /// Σ payment over admitted requests (client-side bookkeeping).
    pub revenue: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end latency (send → decision parsed) summary.
    pub latency: LatencySummary,
    /// The daemon's own counters from the final ack, when
    /// `shutdown_when_done` was set.
    pub final_stats: Option<ServeStats>,
}

impl LoadgenReport {
    /// Decisions per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.decided as f64 / secs
        } else {
            0.0
        }
    }
}

fn read_reply(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
) -> Result<ServerMsg, ServeError> {
    line.clear();
    let n = reader.read_line(line)?;
    if n == 0 {
        return Err(ServeError::Protocol(
            "daemon closed the connection".to_string(),
        ));
    }
    parse_server(line.trim())
}

/// Replays `requests` (dense-id arrival order) against the daemon.
///
/// # Errors
///
/// [`ServeError::Net`] if the daemon is unreachable, [`ServeError::Io`] /
/// [`ServeError::Protocol`] if the connection drops or replies are
/// malformed.
pub fn run_loadgen(
    requests: &[Request],
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ServeError> {
    let stream = TcpStream::connect(&config.addr).map_err(|source| ServeError::Net {
        action: "connect",
        addr: config.addr.clone(),
        source,
    })?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    let mut report = LoadgenReport {
        sent: 0,
        decided: 0,
        admitted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        revenue: 0.0,
        elapsed: Duration::ZERO,
        latency: LatencySummary::default(),
        final_stats: None,
    };
    let mut samples = Vec::with_capacity(requests.len());
    let started = Instant::now();
    let pace = config.rate.is_finite() && config.rate > 0.0;

    for request in requests
        .iter()
        .filter(|r| r.id().index() >= config.start_at)
    {
        if pace {
            let target = started + Duration::from_secs_f64(report.sent as f64 / config.rate);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let msg = ClientMsg::Submit(SubmitRequest {
            id: request.id().index(),
            vnf: request.vnf().index(),
            reliability: request.reliability_requirement().value(),
            arrival: request.arrival(),
            duration: request.duration(),
            payment: request.payment(),
        });
        let mut out = encode_client(&msg);
        out.push('\n');
        let sent_at = Instant::now();
        writer.write_all(out.as_bytes())?;
        report.sent += 1;
        match read_reply(&mut reader, &mut line)? {
            ServerMsg::Decision(event) => {
                samples.push(sent_at.elapsed().as_secs_f64());
                report.decided += 1;
                if event.outcome.is_admit() {
                    report.admitted += 1;
                    report.revenue += request.payment();
                } else {
                    report.rejected += 1;
                }
            }
            ServerMsg::Overload(_) => report.overloaded += 1,
            ServerMsg::Error(_) => report.errors += 1,
            ServerMsg::Ack(_) => {
                return Err(ServeError::Protocol(
                    "unexpected ack while awaiting a decision".to_string(),
                ))
            }
        }
    }

    if config.shutdown_when_done {
        let mut out = encode_client(&ClientMsg::Control(ControlAction::Shutdown));
        out.push('\n');
        writer.write_all(out.as_bytes())?;
        match read_reply(&mut reader, &mut line)? {
            ServerMsg::Ack(ack) => report.final_stats = Some(ack.stats),
            other => {
                return Err(ServeError::Protocol(format!(
                    "expected a shutdown ack, got {other:?}"
                )))
            }
        }
    }

    report.elapsed = started.elapsed();
    report.latency = LatencySummary::from_samples(samples);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_and_buckets() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-5).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert!((s.p50 - 51e-5).abs() < 1e-9);
        assert!((s.p99 - 99e-5).abs() < 1e-9);
        assert!((s.max - 1e-3).abs() < 1e-12);
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
        let text = s.to_text();
        assert!(text.contains("samples 100"));
        assert!(text.contains("le_inf"));
    }

    #[test]
    fn empty_summary_is_well_formed() {
        let s = LatencySummary::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.buckets.len(), LatencySummary::BUCKET_BOUNDS.len() + 1);
    }
}
