//! Closed-loop load generator: replays a `mec-workload` trace against a
//! running daemon over one connection, one outstanding request at a
//! time, recording end-to-end admission latency.
//!
//! Closed-loop means the generator waits for each decision before
//! sending the next request, so submission order equals decision order —
//! exactly the batch engine's arrival order. That is what makes the
//! daemon's decision stream comparable (and byte-identical) to a batch
//! `Simulation` run of the same trace. `rate` paces *send* times but
//! never reorders.
//!
//! With [`LoadgenConfig::reconnect`] the generator survives daemon
//! failover: `addr` may list several daemons (comma-separated), a
//! dropped connection or `not-primary` refusal rotates to the next
//! address with exponential backoff plus deterministic jitter, and the
//! in-flight request is resubmitted under the same id. The daemon's
//! recent-decision ring makes the resubmit idempotent — if the original
//! submit was decided but its reply lost, the stored decision comes
//! back — so no request is ever lost or decided twice.

use std::io::{self, BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use mec_workload::Request;

use crate::error::ServeError;
use crate::protocol::{
    encode_client, parse_server, ClientMsg, ControlAction, ServeStats, ServerMsg, SubmitRequest,
};

/// Base delay of the reconnect backoff schedule.
const BACKOFF_MIN: Duration = Duration::from_millis(25);
/// Ceiling of the reconnect backoff schedule.
const BACKOFF_MAX: Duration = Duration::from_secs(1);

/// How the load generator drives the daemon.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address, e.g. `"127.0.0.1:7070"`. With
    /// [`LoadgenConfig::reconnect`], a comma-separated list of addresses
    /// to rotate through (primary first, then standbys).
    pub addr: String,
    /// Target arrival rate in requests/second; `f64::INFINITY` (the
    /// default) sends as fast as the closed loop allows.
    pub rate: f64,
    /// Skip requests with id below this (resume after a daemon restart).
    pub start_at: usize,
    /// Send a `shutdown` control after the last request and wait for the
    /// drain-then-snapshot ack.
    pub shutdown_when_done: bool,
    /// Survive connection loss and `not-primary` refusals: rotate
    /// through the addresses with backoff and resubmit the in-flight
    /// request under the same id.
    pub reconnect: bool,
    /// Give up on a single request after this many delivery attempts
    /// (reconnect mode only; the backoff schedule makes the default
    /// roughly two minutes of unavailability).
    pub max_attempts: u32,
}

impl LoadgenConfig {
    /// Full-speed config against `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            rate: f64::INFINITY,
            start_at: 0,
            shutdown_when_done: false,
            reconnect: false,
            max_attempts: 200,
        }
    }
}

/// Latency summary over all decided requests, in seconds.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
    /// Histogram counts over [`LatencySummary::BUCKET_BOUNDS`] plus a
    /// final overflow bucket.
    pub buckets: Vec<u64>,
}

impl LatencySummary {
    /// Upper bounds (seconds) of the latency histogram buckets.
    pub const BUCKET_BOUNDS: [f64; 8] = [25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 5e-3, 25e-3];

    /// Summarizes a set of samples (sorted internally).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                buckets: vec![0; Self::BUCKET_BOUNDS.len() + 1],
                ..LatencySummary::default()
            };
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = samples.len();
        let pct = |q: f64| -> f64 {
            let idx = ((count - 1) as f64 * q).round() as usize;
            samples[idx]
        };
        let mut buckets = vec![0u64; Self::BUCKET_BOUNDS.len() + 1];
        for &s in &samples {
            let idx = Self::BUCKET_BOUNDS
                .iter()
                .position(|&b| s <= b)
                .unwrap_or(Self::BUCKET_BOUNDS.len());
            buckets[idx] += 1;
        }
        LatencySummary {
            count,
            mean: samples.iter().sum::<f64>() / count as f64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: samples[count - 1],
            buckets,
        }
    }

    /// Renders the summary plus bucket table as plain text (the CI
    /// latency-histogram artifact).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "samples {}", self.count);
        let _ = writeln!(out, "mean_us {:.2}", self.mean * 1e6);
        let _ = writeln!(out, "p50_us {:.2}", self.p50 * 1e6);
        let _ = writeln!(out, "p90_us {:.2}", self.p90 * 1e6);
        let _ = writeln!(out, "p99_us {:.2}", self.p99 * 1e6);
        let _ = writeln!(out, "max_us {:.2}", self.max * 1e6);
        for (i, count) in self.buckets.iter().enumerate() {
            match Self::BUCKET_BOUNDS.get(i) {
                Some(bound) => {
                    let _ = writeln!(out, "le_{}us {}", (bound * 1e6) as u64, count);
                }
                None => {
                    let _ = writeln!(out, "le_inf {count}");
                }
            }
        }
        out
    }
}

/// What a completed load-generation run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests submitted.
    pub sent: usize,
    /// Decisions received.
    pub decided: usize,
    /// Admissions among them.
    pub admitted: usize,
    /// Rejections among them.
    pub rejected: usize,
    /// Typed overload rejections (request dropped before the scheduler).
    pub overloaded: usize,
    /// Error replies.
    pub errors: usize,
    /// Σ payment over admitted requests (client-side bookkeeping).
    pub revenue: f64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end latency (send → decision parsed) summary.
    pub latency: LatencySummary,
    /// The daemon's own counters from the final ack, when
    /// `shutdown_when_done` was set.
    pub final_stats: Option<ServeStats>,
    /// Connections (re-)established after the first (reconnect mode).
    pub reconnects: usize,
    /// Requests resubmitted after a connection loss or `not-primary`
    /// refusal (each deduplicated server-side by id).
    pub resubmits: usize,
    /// `not-primary` refusals absorbed while waiting for a promotion.
    pub not_primary: usize,
}

impl LoadgenReport {
    /// Decisions per second of wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.decided as f64 / secs
        } else {
            0.0
        }
    }
}

struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

fn read_reply(conn: &mut Conn, line: &mut String) -> Result<ServerMsg, ServeError> {
    line.clear();
    let n = conn.reader.read_line(line)?;
    if n == 0 {
        return Err(ServeError::Protocol(
            "daemon closed the connection".to_string(),
        ));
    }
    parse_server(line.trim())
}

fn connect_one(addr: &str) -> io::Result<Conn> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let writer = stream.try_clone()?;
    Ok(Conn {
        writer,
        reader: BufReader::new(stream),
    })
}

// Deterministic jitter in [0, 1): splitmix64 of the attempt counter, so
// reruns of the drill take identical backoff schedules but concurrent
// clients (different counters) still de-synchronize.
fn jitter_frac(seed: u64) -> f64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn backoff_delay(attempt: u32) -> Duration {
    let exp = BACKOFF_MIN.saturating_mul(1u32 << attempt.min(6));
    let capped = exp.min(BACKOFF_MAX);
    capped.mul_f64(0.5 + 0.5 * jitter_frac(u64::from(attempt)))
}

/// Replays `requests` (dense-id arrival order) against the daemon.
///
/// # Errors
///
/// [`ServeError::Net`] if the daemon is unreachable, [`ServeError::Io`] /
/// [`ServeError::Protocol`] if the connection drops or replies are
/// malformed. In reconnect mode connection loss and `not-primary` are
/// absorbed (up to [`LoadgenConfig::max_attempts`] per request) instead.
pub fn run_loadgen(
    requests: &[Request],
    config: &LoadgenConfig,
) -> Result<LoadgenReport, ServeError> {
    let addrs: Vec<&str> = config
        .addr
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .collect();
    if addrs.is_empty() {
        return Err(ServeError::Config("no daemon address given".to_string()));
    }
    let mut addr_idx = 0usize;
    let mut conn: Option<Conn> = None;
    let mut ever_connected = false;
    let mut line = String::new();

    let mut report = LoadgenReport {
        sent: 0,
        decided: 0,
        admitted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        revenue: 0.0,
        elapsed: Duration::ZERO,
        latency: LatencySummary::default(),
        final_stats: None,
        reconnects: 0,
        resubmits: 0,
        not_primary: 0,
    };
    let mut samples = Vec::with_capacity(requests.len());
    let started = Instant::now();
    let pace = config.rate.is_finite() && config.rate > 0.0;

    for request in requests
        .iter()
        .filter(|r| r.id().index() >= config.start_at)
    {
        if pace {
            let target = started + Duration::from_secs_f64(report.sent as f64 / config.rate);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        }
        let msg = ClientMsg::Submit(SubmitRequest {
            id: request.id().index(),
            vnf: request.vnf().index(),
            reliability: request.reliability_requirement().value(),
            arrival: request.arrival(),
            duration: request.duration(),
            payment: request.payment(),
        });
        let mut out = encode_client(&msg);
        out.push('\n');

        let mut attempt = 0u32;
        report.sent += 1;
        loop {
            if attempt > 0 {
                if !config.reconnect {
                    unreachable!("retries only happen in reconnect mode");
                }
                if attempt >= config.max_attempts {
                    return Err(ServeError::Protocol(format!(
                        "gave up on request {} after {} delivery attempts",
                        request.id().index(),
                        attempt
                    )));
                }
                std::thread::sleep(backoff_delay(attempt - 1));
                report.resubmits += 1;
            }
            let c = match ensure_conn(
                &mut conn,
                &addrs,
                &mut addr_idx,
                &mut ever_connected,
                &mut report,
                config,
            )? {
                Some(c) => c,
                None => {
                    attempt += 1;
                    continue;
                }
            };
            let sent_at = Instant::now();
            let outcome = c
                .writer
                .write_all(out.as_bytes())
                .map_err(ServeError::Io)
                .and_then(|()| read_reply(c, &mut line));
            match outcome {
                Ok(ServerMsg::Decision(event)) => {
                    if event.request != request.id().index() {
                        return Err(ServeError::Protocol(format!(
                            "decision for request {} while awaiting {}",
                            event.request,
                            request.id().index()
                        )));
                    }
                    samples.push(sent_at.elapsed().as_secs_f64());
                    report.decided += 1;
                    if event.outcome.is_admit() {
                        report.admitted += 1;
                        report.revenue += request.payment();
                    } else {
                        report.rejected += 1;
                    }
                    break;
                }
                Ok(ServerMsg::Overload(_)) => {
                    report.overloaded += 1;
                    break;
                }
                Ok(ServerMsg::Error(_)) => {
                    report.errors += 1;
                    break;
                }
                Ok(ServerMsg::NotPrimary { .. }) => {
                    // A standby: rotate to the next address and wait for
                    // the promotion with backoff.
                    if !config.reconnect {
                        return Err(ServeError::Protocol(
                            "daemon is a standby (not-primary); it does not accept submits"
                                .to_string(),
                        ));
                    }
                    report.not_primary += 1;
                    conn = None;
                    addr_idx = (addr_idx + 1) % addrs.len();
                    attempt += 1;
                }
                Ok(ServerMsg::Ack(_)) => {
                    return Err(ServeError::Protocol(
                        "unexpected ack while awaiting a decision".to_string(),
                    ))
                }
                Err(e) => {
                    // Connection lost mid-request. The submit may or may
                    // not have been decided; resubmitting under the same
                    // id is safe because the daemon's recent-decision
                    // ring answers duplicates with the stored decision.
                    if !config.reconnect {
                        return Err(e);
                    }
                    conn = None;
                    attempt += 1;
                }
            }
        }
    }

    if config.shutdown_when_done {
        let mut out = encode_client(&ClientMsg::Control(ControlAction::Shutdown));
        out.push('\n');
        let mut attempt = 0u32;
        loop {
            if attempt > 0 {
                if !config.reconnect || attempt >= config.max_attempts {
                    return Err(ServeError::Protocol(
                        "could not deliver the shutdown control".to_string(),
                    ));
                }
                std::thread::sleep(backoff_delay(attempt - 1));
            }
            let c = match ensure_conn(
                &mut conn,
                &addrs,
                &mut addr_idx,
                &mut ever_connected,
                &mut report,
                config,
            )? {
                Some(c) => c,
                None => {
                    attempt += 1;
                    continue;
                }
            };
            let outcome = c
                .writer
                .write_all(out.as_bytes())
                .map_err(ServeError::Io)
                .and_then(|()| read_reply(c, &mut line));
            match outcome {
                Ok(ServerMsg::Ack(ack)) => {
                    report.final_stats = Some(ack.stats);
                    break;
                }
                Ok(other) => {
                    return Err(ServeError::Protocol(format!(
                        "expected a shutdown ack, got {other:?}"
                    )))
                }
                Err(e) => {
                    if !config.reconnect {
                        return Err(e);
                    }
                    conn = None;
                    attempt += 1;
                }
            }
        }
    }

    report.elapsed = started.elapsed();
    report.latency = LatencySummary::from_samples(samples);
    Ok(report)
}

// Returns the live connection, dialing the current address if there is
// none. `Ok(None)` means the dial failed in reconnect mode: the caller
// backs off and retries (the address cursor has already rotated).
fn ensure_conn<'a>(
    conn: &'a mut Option<Conn>,
    addrs: &[&str],
    addr_idx: &mut usize,
    ever_connected: &mut bool,
    report: &mut LoadgenReport,
    config: &LoadgenConfig,
) -> Result<Option<&'a mut Conn>, ServeError> {
    if conn.is_none() {
        match connect_one(addrs[*addr_idx]) {
            Ok(c) => {
                if *ever_connected {
                    report.reconnects += 1;
                }
                *ever_connected = true;
                *conn = Some(c);
            }
            Err(source) => {
                if !config.reconnect {
                    return Err(ServeError::Net {
                        action: "connect",
                        addr: addrs[*addr_idx].to_string(),
                        source,
                    });
                }
                *addr_idx = (*addr_idx + 1) % addrs.len();
                return Ok(None);
            }
        }
    }
    Ok(conn.as_mut())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles_and_buckets() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1e-5).collect();
        let s = LatencySummary::from_samples(samples);
        assert_eq!(s.count, 100);
        assert!((s.p50 - 51e-5).abs() < 1e-9);
        assert!((s.p99 - 99e-5).abs() < 1e-9);
        assert!((s.max - 1e-3).abs() < 1e-12);
        assert_eq!(s.buckets.iter().sum::<u64>(), 100);
        let text = s.to_text();
        assert!(text.contains("samples 100"));
        assert!(text.contains("le_inf"));
    }

    #[test]
    fn empty_summary_is_well_formed() {
        let s = LatencySummary::from_samples(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.buckets.len(), LatencySummary::BUCKET_BOUNDS.len() + 1);
    }
}
