//! Crash-consistent persistence of the daemon's serving state.
//!
//! A snapshot is a single JSON line capturing everything the decide
//! thread accumulates: the scheduler's [`SchedulerState`] (usage grid,
//! dual prices, rejection counters), the dense id cursor, the virtual
//! slot clock and the protocol-level counters. Floats use the byte-exact
//! `{:?}` encoding (see `mec_obs::json`), so restore is bit-identical
//! and a restored daemon continues the decision stream byte for byte.
//!
//! Writes go to `<path>.tmp` first and are fsynced before an atomic
//! rename over `<path>`; a crash mid-write leaves the previous snapshot
//! intact. Loading validates the schema version, the algorithm name and
//! a caller-supplied configuration fingerprint before any state touches
//! the scheduler, so a snapshot from a different scenario fails cleanly.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use mec_obs::JsonValue;
use vnfrel::SchedulerState;

use crate::error::ServeError;
use crate::protocol::ServeStats;

/// Snapshot schema version.
pub const SNAPSHOT_VERSION: usize = 1;

/// One persisted serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `OnlineScheduler::name()` of the scheduler that produced it.
    pub algorithm: String,
    /// Opaque fingerprint of the scenario configuration (topology,
    /// catalog, seed, policy); restore refuses on mismatch.
    pub config: String,
    /// Dense id of the next request to decide.
    pub next_id: usize,
    /// Virtual slot clock.
    pub slot: usize,
    /// Protocol-level counters.
    pub stats: ServeStats,
    /// The scheduler's mutable state.
    pub state: SchedulerState,
}

fn arr_f64(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn serr(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot(msg.into())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ServeError> {
    v.get(key)
        .ok_or_else(|| serr(format!("missing field '{key}'")))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, ServeError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| serr(format!("field '{key}' must be a non-negative integer")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, ServeError> {
    match field(v, key)? {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(serr(format!("field '{key}' must be a number"))),
    }
}

fn field_f64_arr(v: &JsonValue, key: &str) -> Result<Vec<f64>, ServeError> {
    let items = field(v, key)?
        .as_array()
        .ok_or_else(|| serr(format!("field '{key}' must be an array")))?;
    items
        .iter()
        .map(|item| match item {
            JsonValue::Num(n) => Ok(*n),
            _ => Err(serr(format!("field '{key}' must contain only numbers"))),
        })
        .collect()
}

impl Snapshot {
    /// Encodes the snapshot as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        obj(vec![
            ("type", JsonValue::Str("snapshot".into())),
            ("v", JsonValue::Num(SNAPSHOT_VERSION as f64)),
            ("algorithm", JsonValue::Str(self.algorithm.clone())),
            ("config", JsonValue::Str(self.config.clone())),
            ("next_id", JsonValue::Num(self.next_id as f64)),
            ("slot", JsonValue::Num(self.slot as f64)),
            ("decided", JsonValue::Num(self.stats.decided as f64)),
            ("admitted", JsonValue::Num(self.stats.admitted as f64)),
            ("rejected", JsonValue::Num(self.stats.rejected as f64)),
            ("overloaded", JsonValue::Num(self.stats.overloaded as f64)),
            ("revenue", JsonValue::Num(self.stats.revenue)),
            ("sum_delta", JsonValue::Num(self.state.sum_delta)),
            ("used", arr_f64(&self.state.used)),
            ("lambda", arr_f64(&self.state.lambda)),
            (
                "counters",
                JsonValue::Arr(
                    self.state
                        .counters
                        .iter()
                        .map(|&c| JsonValue::Num(c as f64))
                        .collect(),
                ),
            ),
        ])
        .encode()
    }

    /// Decodes a snapshot line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] on malformed JSON, wrong `type`, or an
    /// unsupported schema version.
    pub fn decode(text: &str) -> Result<Self, ServeError> {
        let v = mec_obs::parse_value(text.trim()).map_err(|e| serr(e.to_string()))?;
        let ty = field(&v, "type")?
            .as_str()
            .ok_or_else(|| serr("field 'type' must be a string"))?;
        if ty != "snapshot" {
            return Err(serr(format!("expected a snapshot line, got '{ty}'")));
        }
        let version = field_usize(&v, "v")?;
        if version != SNAPSHOT_VERSION {
            return Err(serr(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let counters = field(&v, "counters")?
            .as_array()
            .ok_or_else(|| serr("field 'counters' must be an array"))?
            .iter()
            .map(|item| {
                item.as_usize()
                    .map(|c| c as u64)
                    .ok_or_else(|| serr("field 'counters' must contain non-negative integers"))
            })
            .collect::<Result<Vec<u64>, ServeError>>()?;
        Ok(Snapshot {
            algorithm: field(&v, "algorithm")?
                .as_str()
                .ok_or_else(|| serr("field 'algorithm' must be a string"))?
                .to_string(),
            config: field(&v, "config")?
                .as_str()
                .ok_or_else(|| serr("field 'config' must be a string"))?
                .to_string(),
            next_id: field_usize(&v, "next_id")?,
            slot: field_usize(&v, "slot")?,
            stats: ServeStats {
                decided: field_usize(&v, "decided")? as u64,
                admitted: field_usize(&v, "admitted")? as u64,
                rejected: field_usize(&v, "rejected")? as u64,
                overloaded: field_usize(&v, "overloaded")? as u64,
                revenue: field_f64(&v, "revenue")?,
            },
            state: SchedulerState {
                used: field_f64_arr(&v, "used")?,
                lambda: field_f64_arr(&v, "lambda")?,
                sum_delta: field_f64(&v, "sum_delta")?,
                counters,
            },
        })
    }

    /// Writes the snapshot crash-consistently: temp file, fsync, rename.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotIo`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        let io_err = |source: std::io::Error| ServeError::SnapshotIo {
            path: path.to_path_buf(),
            source,
        };
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(self.encode().as_bytes()).map_err(io_err)?;
            f.write_all(b"\n").map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads and decodes a snapshot file.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotIo`] if the file cannot be read,
    /// [`ServeError::Snapshot`] if it does not decode.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = fs::read_to_string(path).map_err(|source| ServeError::SnapshotIo {
            path: path.to_path_buf(),
            source,
        })?;
        Snapshot::decode(&text)
    }

    /// Checks the snapshot against the running daemon's identity.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] naming the mismatched field.
    pub fn validate(&self, algorithm: &str, config: &str) -> Result<(), ServeError> {
        if self.algorithm != algorithm {
            return Err(serr(format!(
                "snapshot was taken by '{}' but the daemon runs '{algorithm}'",
                self.algorithm
            )));
        }
        if self.config != config {
            return Err(serr(format!(
                "snapshot configuration '{}' does not match '{config}'",
                self.config
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            algorithm: "alg1-primal-dual".into(),
            config: "zoo:seed=42".into(),
            next_id: 17,
            slot: 4,
            stats: ServeStats {
                decided: 17,
                admitted: 11,
                rejected: 6,
                overloaded: 2,
                revenue: 123.456789,
            },
            state: SchedulerState {
                used: vec![0.0, 1.5, 0.25, 3.0],
                lambda: vec![0.1 + 0.2, 0.0, 1e-9, 7.0],
                sum_delta: 42.125,
                counters: vec![3, 0, 3],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exact() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        for (a, b) in decoded.state.lambda.iter().zip(snap.state.lambda.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn save_load_round_trips_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("vnfrel-snapshot-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let snap = sample();
        snap.save(&path).unwrap();
        let mut newer = snap.clone();
        newer.next_id = 18;
        newer.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), newer);
        assert!(!path.with_extension("snap.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_rejects_mismatches() {
        let snap = sample();
        assert!(snap.validate("alg1-primal-dual", "zoo:seed=42").is_ok());
        assert!(snap.validate("alg2-primal-dual", "zoo:seed=42").is_err());
        assert!(snap.validate("alg1-primal-dual", "zoo:seed=43").is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(Snapshot::decode("{").is_err());
        assert!(Snapshot::decode("{\"type\":\"decision\"}").is_err());
        let wrong_version = sample().encode().replace("\"v\":1", "\"v\":9");
        assert!(Snapshot::decode(&wrong_version).is_err());
        let truncated = &sample().encode()[..40];
        assert!(Snapshot::decode(truncated).is_err());
    }
}
