//! Crash-consistent persistence of the daemon's serving state.
//!
//! A snapshot is a single JSON line capturing everything the decide
//! thread accumulates: the scheduler's [`SchedulerState`] (usage grid,
//! dual prices, rejection counters), the dense id cursor, the virtual
//! slot clock and the protocol-level counters. Floats use the byte-exact
//! `{:?}` encoding (see `mec_obs::json`), so restore is bit-identical
//! and a restored daemon continues the decision stream byte for byte.
//!
//! Writes go to `<path>.tmp` first and are fsynced before an atomic
//! rename over `<path>`; a crash mid-write leaves the previous snapshot
//! intact. Loading validates the schema version, the algorithm name and
//! a caller-supplied configuration fingerprint before any state touches
//! the scheduler, so a snapshot from a different scenario fails cleanly.
//!
//! Version 2 appends an FNV-1a 64-bit checksum as the final `crc`
//! field (computed over every byte before it), plus the replication
//! epoch/seq position and the recent-decision ring used for idempotent
//! resubmits after a failover. Version 1 files still load, with the
//! pre-replication defaults and no checksum to verify; any corruption
//! of a v2 file — a flipped byte, a truncation — fails decode with a
//! typed [`ServeError::Snapshot`] (exit code 6 at the CLI).

use std::fs;
use std::io::Write as _;
use std::path::Path;

use mec_obs::JsonValue;
use vnfrel::SchedulerState;

use crate::error::ServeError;
use crate::protocol::ServeStats;

/// Snapshot schema version.
pub const SNAPSHOT_VERSION: usize = 2;

/// Oldest snapshot schema version that still loads.
pub const MIN_SNAPSHOT_VERSION: usize = 1;

/// FNV-1a 64-bit hash — tiny, dependency-free, and plenty to catch
/// torn writes and bit rot (this is an integrity check, not a MAC).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One persisted serving state.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// `OnlineScheduler::name()` of the scheduler that produced it.
    pub algorithm: String,
    /// Opaque fingerprint of the scenario configuration (topology,
    /// catalog, seed, policy); restore refuses on mismatch.
    pub config: String,
    /// Dense id of the next request to decide.
    pub next_id: usize,
    /// Virtual slot clock.
    pub slot: usize,
    /// Protocol-level counters.
    pub stats: ServeStats,
    /// The scheduler's mutable state.
    pub state: SchedulerState,
    /// Fencing epoch at snapshot time (v1 files load as 1).
    pub epoch: u64,
    /// Replication log position the snapshot covers (v1 files load as
    /// `next_id`: one log entry per decision, no advances).
    pub seq: u64,
    /// Recent decision lines, oldest first, for the idempotent-resubmit
    /// ring (v1 files load empty).
    pub recent: Vec<String>,
}

fn arr_f64(values: &[f64]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Num(v)).collect())
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn serr(msg: impl Into<String>) -> ServeError {
    ServeError::Snapshot(msg.into())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ServeError> {
    v.get(key)
        .ok_or_else(|| serr(format!("missing field '{key}'")))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, ServeError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| serr(format!("field '{key}' must be a non-negative integer")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, ServeError> {
    match field(v, key)? {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(serr(format!("field '{key}' must be a number"))),
    }
}

fn field_f64_arr(v: &JsonValue, key: &str) -> Result<Vec<f64>, ServeError> {
    let items = field(v, key)?
        .as_array()
        .ok_or_else(|| serr(format!("field '{key}' must be an array")))?;
    items
        .iter()
        .map(|item| match item {
            JsonValue::Num(n) => Ok(*n),
            _ => Err(serr(format!("field '{key}' must contain only numbers"))),
        })
        .collect()
}

impl Snapshot {
    /// Encodes the snapshot as one JSON line (no trailing newline),
    /// ending in the `crc` checksum field.
    pub fn encode(&self) -> String {
        let mut body = obj(vec![
            ("type", JsonValue::Str("snapshot".into())),
            ("v", JsonValue::Num(SNAPSHOT_VERSION as f64)),
            ("algorithm", JsonValue::Str(self.algorithm.clone())),
            ("config", JsonValue::Str(self.config.clone())),
            ("next_id", JsonValue::Num(self.next_id as f64)),
            ("slot", JsonValue::Num(self.slot as f64)),
            ("decided", JsonValue::Num(self.stats.decided as f64)),
            ("admitted", JsonValue::Num(self.stats.admitted as f64)),
            ("rejected", JsonValue::Num(self.stats.rejected as f64)),
            ("overloaded", JsonValue::Num(self.stats.overloaded as f64)),
            ("revenue", JsonValue::Num(self.stats.revenue)),
            ("sum_delta", JsonValue::Num(self.state.sum_delta)),
            ("used", arr_f64(&self.state.used)),
            ("lambda", arr_f64(&self.state.lambda)),
            (
                "counters",
                JsonValue::Arr(
                    self.state
                        .counters
                        .iter()
                        .map(|&c| JsonValue::Num(c as f64))
                        .collect(),
                ),
            ),
            ("epoch", JsonValue::Num(self.epoch as f64)),
            ("seq", JsonValue::Num(self.seq as f64)),
            (
                "recent",
                JsonValue::Arr(
                    self.recent
                        .iter()
                        .map(|line| JsonValue::Str(line.clone()))
                        .collect(),
                ),
            ),
        ])
        .encode();
        // The checksum covers every byte before the crc field itself:
        // strip the closing brace, hash, re-append as the last field.
        use std::fmt::Write as _;
        body.pop();
        let crc = fnv1a64(body.as_bytes());
        let _ = write!(body, ",\"crc\":\"{crc:016x}\"}}");
        body
    }

    /// Decodes a snapshot line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] on malformed JSON, wrong `type`, or an
    /// unsupported schema version.
    pub fn decode(text: &str) -> Result<Self, ServeError> {
        let text = text.trim();
        let v = mec_obs::parse_value(text).map_err(|e| serr(e.to_string()))?;
        let ty = field(&v, "type")?
            .as_str()
            .ok_or_else(|| serr("field 'type' must be a string"))?;
        if ty != "snapshot" {
            return Err(serr(format!("expected a snapshot line, got '{ty}'")));
        }
        let version = field_usize(&v, "v")?;
        if !(MIN_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(serr(format!(
                "unsupported snapshot version {version} \
                 (expected {MIN_SNAPSHOT_VERSION}..={SNAPSHOT_VERSION})"
            )));
        }
        if version >= 2 {
            let want = field(&v, "crc")?
                .as_str()
                .ok_or_else(|| serr("field 'crc' must be a string"))?
                .to_string();
            let prefix_len = text
                .rfind(",\"crc\":\"")
                .ok_or_else(|| serr("v2 snapshot must end in the crc field"))?;
            let got = format!("{:016x}", fnv1a64(&text.as_bytes()[..prefix_len]));
            if got != want {
                return Err(serr(format!(
                    "snapshot checksum mismatch (stored {want}, computed {got}): \
                     the file is corrupt or truncated"
                )));
            }
        }
        let counters = field(&v, "counters")?
            .as_array()
            .ok_or_else(|| serr("field 'counters' must be an array"))?
            .iter()
            .map(|item| {
                item.as_usize()
                    .map(|c| c as u64)
                    .ok_or_else(|| serr("field 'counters' must contain non-negative integers"))
            })
            .collect::<Result<Vec<u64>, ServeError>>()?;
        let next_id = field_usize(&v, "next_id")?;
        let (epoch, seq, recent) = if version >= 2 {
            let recent = field(&v, "recent")?
                .as_array()
                .ok_or_else(|| serr("field 'recent' must be an array"))?
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| serr("field 'recent' must contain only strings"))
                })
                .collect::<Result<Vec<String>, ServeError>>()?;
            (
                field_usize(&v, "epoch")? as u64,
                field_usize(&v, "seq")? as u64,
                recent,
            )
        } else {
            (1, next_id as u64, Vec::new())
        };
        Ok(Snapshot {
            algorithm: field(&v, "algorithm")?
                .as_str()
                .ok_or_else(|| serr("field 'algorithm' must be a string"))?
                .to_string(),
            config: field(&v, "config")?
                .as_str()
                .ok_or_else(|| serr("field 'config' must be a string"))?
                .to_string(),
            next_id,
            slot: field_usize(&v, "slot")?,
            stats: ServeStats {
                decided: field_usize(&v, "decided")? as u64,
                admitted: field_usize(&v, "admitted")? as u64,
                rejected: field_usize(&v, "rejected")? as u64,
                overloaded: field_usize(&v, "overloaded")? as u64,
                revenue: field_f64(&v, "revenue")?,
            },
            state: SchedulerState {
                used: field_f64_arr(&v, "used")?,
                lambda: field_f64_arr(&v, "lambda")?,
                sum_delta: field_f64(&v, "sum_delta")?,
                counters,
            },
            epoch,
            seq,
            recent,
        })
    }

    /// Writes the snapshot crash-consistently: temp file, fsync, rename.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotIo`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ServeError> {
        let io_err = |source: std::io::Error| ServeError::SnapshotIo {
            path: path.to_path_buf(),
            source,
        };
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(self.encode().as_bytes()).map_err(io_err)?;
            f.write_all(b"\n").map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, path).map_err(io_err)
    }

    /// Loads and decodes a snapshot file.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotIo`] if the file cannot be read,
    /// [`ServeError::Snapshot`] if it does not decode.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let text = fs::read_to_string(path).map_err(|source| ServeError::SnapshotIo {
            path: path.to_path_buf(),
            source,
        })?;
        Snapshot::decode(&text)
    }

    /// Checks the snapshot against the running daemon's identity.
    ///
    /// # Errors
    ///
    /// [`ServeError::Snapshot`] naming the mismatched field.
    pub fn validate(&self, algorithm: &str, config: &str) -> Result<(), ServeError> {
        if self.algorithm != algorithm {
            return Err(serr(format!(
                "snapshot was taken by '{}' but the daemon runs '{algorithm}'",
                self.algorithm
            )));
        }
        if self.config != config {
            return Err(serr(format!(
                "snapshot configuration '{}' does not match '{config}'",
                self.config
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            algorithm: "alg1-primal-dual".into(),
            config: "zoo:seed=42".into(),
            next_id: 17,
            slot: 4,
            stats: ServeStats {
                decided: 17,
                admitted: 11,
                rejected: 6,
                overloaded: 2,
                revenue: 123.456789,
            },
            state: SchedulerState {
                used: vec![0.0, 1.5, 0.25, 3.0],
                lambda: vec![0.1 + 0.2, 0.0, 1e-9, 7.0],
                sum_delta: 42.125,
                counters: vec![3, 0, 3],
            },
            epoch: 2,
            seq: 19,
            recent: vec![
                "{\"type\":\"decision\",\"request\":15}".to_string(),
                "{\"type\":\"decision\",\"request\":16}".to_string(),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_exact() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        for (a, b) in decoded.state.lambda.iter().zip(snap.state.lambda.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn save_load_round_trips_and_replaces_atomically() {
        let dir = std::env::temp_dir().join("vnfrel-snapshot-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snap");
        let snap = sample();
        snap.save(&path).unwrap();
        let mut newer = snap.clone();
        newer.next_id = 18;
        newer.save(&path).unwrap();
        assert_eq!(Snapshot::load(&path).unwrap(), newer);
        assert!(!path.with_extension("snap.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_rejects_mismatches() {
        let snap = sample();
        assert!(snap.validate("alg1-primal-dual", "zoo:seed=42").is_ok());
        assert!(snap.validate("alg2-primal-dual", "zoo:seed=42").is_err());
        assert!(snap.validate("alg1-primal-dual", "zoo:seed=43").is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        assert!(Snapshot::decode("{").is_err());
        assert!(Snapshot::decode("{\"type\":\"decision\"}").is_err());
        let wrong_version = sample().encode().replace("\"v\":2", "\"v\":9");
        assert!(Snapshot::decode(&wrong_version).is_err());
        let truncated = &sample().encode()[..40];
        assert!(Snapshot::decode(truncated).is_err());
    }

    #[test]
    fn checksum_catches_a_single_flipped_byte() {
        let encoded = sample().encode();
        assert!(encoded.contains("\"crc\":\""), "v2 must carry a checksum");
        // Flip one byte of a numeric payload: the result is still valid
        // JSON with a plausible value, so only the checksum can tell.
        let flipped = encoded.replace("42.125", "42.126");
        assert_ne!(flipped, encoded, "the flip must land");
        let err = Snapshot::decode(&flipped).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "expected a checksum error, got: {err}"
        );
        // Truncation that still ends at a field boundary is caught too.
        let cut = format!("{}\"}}", &encoded[..encoded.len() - 20]);
        assert!(Snapshot::decode(&cut).is_err());
    }

    #[test]
    fn v1_snapshots_still_load_with_defaults() {
        // A v1 line as PR 2 wrote it: no epoch/seq/recent, no crc.
        let v1 = "{\"type\":\"snapshot\",\"v\":1,\"algorithm\":\"alg1-primal-dual\",\
                  \"config\":\"zoo:seed=42\",\"next_id\":17,\"slot\":4,\"decided\":17,\
                  \"admitted\":11,\"rejected\":6,\"overloaded\":2,\"revenue\":123.5,\
                  \"sum_delta\":42.125,\"used\":[0.0,1.5],\"lambda\":[0.25,0.0],\
                  \"counters\":[3,0,3]}";
        let snap = Snapshot::decode(v1).unwrap();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.seq, 17, "v1 seq defaults to next_id");
        assert!(snap.recent.is_empty());
        assert_eq!(snap.next_id, 17);
    }
}
