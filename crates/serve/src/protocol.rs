//! Line-delimited JSON wire protocol of the admission daemon.
//!
//! Every message is one compact JSON object per line with a `"type"`
//! discriminator. Serve-specific messages carry a `"v"` schema version
//! (currently [`PROTOCOL_VERSION`]); decision lines reuse the
//! `mec-obs` trace schema (`"type":"decision"`, see
//! [`mec_obs::to_json`]) unchanged, so a daemon response stream is also
//! a valid trace file.
//!
//! Client → server:
//!
//! ```text
//! {"type":"submit","v":1,"id":0,"vnf":2,"reliability":0.95,"arrival":3,"duration":4,"payment":6.5}
//! {"type":"control","v":1,"action":"advance-slot"}   // also: snapshot | stats | shutdown
//! ```
//!
//! Server → client (one line per submit, in submission order):
//!
//! ```text
//! {"type":"decision", ...}                            // full DecisionEvent
//! {"type":"overload","v":1,"id":7,"queue_depth":128,"limit":128}
//! {"type":"ack","v":1,"action":"stats","slot":3,"stats":{...}}
//! {"type":"error","v":1,"message":"..."}
//! ```

use mec_obs::{parse_line, parse_value, to_json, DecisionEvent, JsonValue, TraceEvent};

use crate::error::ServeError;

/// Wire schema version of the serve-specific message types.
pub const PROTOCOL_VERSION: usize = 1;

/// A request submission: the client-side view of one
/// [`mec_workload::Request`], before validation against the daemon's
/// horizon and catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Dense request id; the daemon enforces arrival order (`id` must
    /// equal the number of requests decided so far).
    pub id: usize,
    /// VNF type index into the daemon's catalog.
    pub vnf: usize,
    /// Required reliability in `(0, 1)`.
    pub reliability: f64,
    /// Arrival slot.
    pub arrival: usize,
    /// Duration in slots (≥ 1).
    pub duration: usize,
    /// Offered payment.
    pub payment: f64,
}

/// Daemon control verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Advance the virtual slot clock by one slot.
    AdvanceSlot,
    /// Write a snapshot now (no-op without a configured snapshot path).
    Snapshot,
    /// Report live counters without changing anything.
    Stats,
    /// Drain the ingress queue, snapshot, and exit.
    Shutdown,
}

impl ControlAction {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ControlAction::AdvanceSlot => "advance-slot",
            ControlAction::Snapshot => "snapshot",
            ControlAction::Stats => "stats",
            ControlAction::Shutdown => "shutdown",
        }
    }

    /// Parses a wire name back into an action.
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "advance-slot" => Some(ControlAction::AdvanceSlot),
            "snapshot" => Some(ControlAction::Snapshot),
            "stats" => Some(ControlAction::Stats),
            "shutdown" => Some(ControlAction::Shutdown),
            _ => None,
        }
    }
}

/// Anything a client can send.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Submit one request for an admission decision.
    Submit(SubmitRequest),
    /// Control the daemon.
    Control(ControlAction),
}

/// Live daemon counters, embedded in every control acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServeStats {
    /// Requests decided (admitted + rejected).
    pub decided: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by the scheduler.
    pub rejected: u64,
    /// Submissions dropped by backpressure (never reached the scheduler).
    pub overloaded: u64,
    /// Σ payment over admitted requests.
    pub revenue: f64,
}

/// Typed backpressure rejection: the ingress queue was full, the request
/// never reached the scheduler and consumed no state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadReject {
    /// Id of the dropped submission.
    pub id: usize,
    /// Queue depth observed when the push failed.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub limit: usize,
}

/// Acknowledgement of a control message.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlAck {
    /// The action being acknowledged.
    pub action: ControlAction,
    /// Current virtual slot.
    pub slot: usize,
    /// Live counters at acknowledgement time.
    pub stats: ServeStats,
}

/// Anything the daemon can send back.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Full admission decision for one submitted request.
    Decision(DecisionEvent),
    /// Backpressure drop.
    Overload(OverloadReject),
    /// Control acknowledgement.
    Ack(ControlAck),
    /// The line could not be honored (parse failure, invalid request
    /// fields, out-of-order id); the daemon keeps serving.
    Error(String),
}

fn num(out: &mut String, v: f64) {
    JsonValue::Num(v).encode_into(out);
}

fn uint(out: &mut String, v: usize) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Encodes a client message as one line (no trailing newline).
pub fn encode_client(msg: &ClientMsg) -> String {
    let mut out = String::with_capacity(128);
    match msg {
        ClientMsg::Submit(s) => {
            out.push_str("{\"type\":\"submit\",\"v\":1,\"id\":");
            uint(&mut out, s.id);
            out.push_str(",\"vnf\":");
            uint(&mut out, s.vnf);
            out.push_str(",\"reliability\":");
            num(&mut out, s.reliability);
            out.push_str(",\"arrival\":");
            uint(&mut out, s.arrival);
            out.push_str(",\"duration\":");
            uint(&mut out, s.duration);
            out.push_str(",\"payment\":");
            num(&mut out, s.payment);
            out.push('}');
        }
        ClientMsg::Control(a) => {
            out.push_str("{\"type\":\"control\",\"v\":1,\"action\":\"");
            out.push_str(a.as_str());
            out.push_str("\"}");
        }
    }
    out
}

fn encode_stats(out: &mut String, s: &ServeStats) {
    out.push_str("{\"decided\":");
    num(out, s.decided as f64);
    out.push_str(",\"admitted\":");
    num(out, s.admitted as f64);
    out.push_str(",\"rejected\":");
    num(out, s.rejected as f64);
    out.push_str(",\"overloaded\":");
    num(out, s.overloaded as f64);
    out.push_str(",\"revenue\":");
    num(out, s.revenue);
    out.push('}');
}

/// Encodes a server message as one line (no trailing newline).
pub fn encode_server(msg: &ServerMsg) -> String {
    match msg {
        ServerMsg::Decision(d) => to_json(&TraceEvent::Decision(d.clone())),
        ServerMsg::Overload(o) => {
            let mut out = String::with_capacity(80);
            out.push_str("{\"type\":\"overload\",\"v\":1,\"id\":");
            uint(&mut out, o.id);
            out.push_str(",\"queue_depth\":");
            uint(&mut out, o.queue_depth);
            out.push_str(",\"limit\":");
            uint(&mut out, o.limit);
            out.push('}');
            out
        }
        ServerMsg::Ack(a) => {
            let mut out = String::with_capacity(160);
            out.push_str("{\"type\":\"ack\",\"v\":1,\"action\":\"");
            out.push_str(a.action.as_str());
            out.push_str("\",\"slot\":");
            uint(&mut out, a.slot);
            out.push_str(",\"stats\":");
            encode_stats(&mut out, &a.stats);
            out.push('}');
            out
        }
        ServerMsg::Error(m) => {
            let mut out = String::with_capacity(48 + m.len());
            out.push_str("{\"type\":\"error\",\"v\":1,\"message\":");
            JsonValue::Str(m.clone()).encode_into(&mut out);
            out.push('}');
            out
        }
    }
}

fn perr(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ServeError> {
    v.get(key)
        .ok_or_else(|| perr(format!("missing field '{key}'")))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, ServeError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| perr(format!("field '{key}' must be a non-negative integer")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, ServeError> {
    match field(v, key)? {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(perr(format!("field '{key}' must be a number"))),
    }
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ServeError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| perr(format!("field '{key}' must be a string")))
}

fn check_version(v: &JsonValue) -> Result<(), ServeError> {
    let version = field_usize(v, "v")?;
    if version != PROTOCOL_VERSION {
        return Err(perr(format!(
            "unsupported protocol version {version} (expected {PROTOCOL_VERSION})"
        )));
    }
    Ok(())
}

/// Parses one client line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, unknown type/action,
/// version mismatch, or missing/mistyped fields.
pub fn parse_client(line: &str) -> Result<ClientMsg, ServeError> {
    let v = parse_value(line).map_err(|e| perr(e.to_string()))?;
    match field_str(&v, "type")? {
        "submit" => {
            check_version(&v)?;
            Ok(ClientMsg::Submit(SubmitRequest {
                id: field_usize(&v, "id")?,
                vnf: field_usize(&v, "vnf")?,
                reliability: field_f64(&v, "reliability")?,
                arrival: field_usize(&v, "arrival")?,
                duration: field_usize(&v, "duration")?,
                payment: field_f64(&v, "payment")?,
            }))
        }
        "control" => {
            check_version(&v)?;
            let action = field_str(&v, "action")?;
            ControlAction::from_wire(action)
                .map(ClientMsg::Control)
                .ok_or_else(|| perr(format!("unknown control action '{action}'")))
        }
        other => Err(perr(format!("unknown client message type '{other}'"))),
    }
}

fn parse_stats(v: &JsonValue) -> Result<ServeStats, ServeError> {
    let as_u64 = |key: &str| -> Result<u64, ServeError> { Ok(field_usize(v, key)? as u64) };
    Ok(ServeStats {
        decided: as_u64("decided")?,
        admitted: as_u64("admitted")?,
        rejected: as_u64("rejected")?,
        overloaded: as_u64("overloaded")?,
        revenue: field_f64(v, "revenue")?,
    })
}

/// Parses one server line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, unknown type, version
/// mismatch, or missing/mistyped fields.
pub fn parse_server(line: &str) -> Result<ServerMsg, ServeError> {
    let v = parse_value(line).map_err(|e| perr(e.to_string()))?;
    match field_str(&v, "type")? {
        "decision" => match parse_line(line).map_err(|e| perr(e.to_string()))? {
            TraceEvent::Decision(d) => Ok(ServerMsg::Decision(d)),
            other => Err(perr(format!(
                "expected a decision event, got '{}'",
                other.kind()
            ))),
        },
        "overload" => {
            check_version(&v)?;
            Ok(ServerMsg::Overload(OverloadReject {
                id: field_usize(&v, "id")?,
                queue_depth: field_usize(&v, "queue_depth")?,
                limit: field_usize(&v, "limit")?,
            }))
        }
        "ack" => {
            check_version(&v)?;
            let action = field_str(&v, "action")?;
            let action = ControlAction::from_wire(action)
                .ok_or_else(|| perr(format!("unknown ack action '{action}'")))?;
            Ok(ServerMsg::Ack(ControlAck {
                action,
                slot: field_usize(&v, "slot")?,
                stats: parse_stats(field(&v, "stats")?)?,
            }))
        }
        "error" => {
            check_version(&v)?;
            Ok(ServerMsg::Error(field_str(&v, "message")?.to_string()))
        }
        other => Err(perr(format!("unknown server message type '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{Outcome, RejectReason, SitePlacement};

    #[test]
    fn submit_round_trips() {
        let msg = ClientMsg::Submit(SubmitRequest {
            id: 42,
            vnf: 3,
            reliability: 0.97,
            arrival: 5,
            duration: 2,
            payment: 12.25,
        });
        let line = encode_client(&msg);
        assert!(line.starts_with("{\"type\":\"submit\",\"v\":1,"));
        assert_eq!(parse_client(&line).unwrap(), msg);
    }

    #[test]
    fn control_round_trips_all_actions() {
        for action in [
            ControlAction::AdvanceSlot,
            ControlAction::Snapshot,
            ControlAction::Stats,
            ControlAction::Shutdown,
        ] {
            let msg = ClientMsg::Control(action);
            assert_eq!(parse_client(&encode_client(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let decision = ServerMsg::Decision(DecisionEvent {
            request: 7,
            algorithm: "alg1-primal-dual".into(),
            scheme: "on-site".into(),
            slot: 2,
            payment: 4.5,
            outcome: Outcome::Admit {
                dual_cost: 1.25,
                margin: 3.25,
                sites: vec![SitePlacement {
                    cloudlet: 1,
                    instances: 2,
                    dual_cost: 1.25,
                }],
            },
        });
        let overload = ServerMsg::Overload(OverloadReject {
            id: 9,
            queue_depth: 128,
            limit: 128,
        });
        let ack = ServerMsg::Ack(ControlAck {
            action: ControlAction::Stats,
            slot: 3,
            stats: ServeStats {
                decided: 10,
                admitted: 6,
                rejected: 4,
                overloaded: 1,
                revenue: 33.5,
            },
        });
        let error = ServerMsg::Error("bad line: \"quoted\"".into());
        for msg in [decision, overload, ack, error] {
            assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn reject_decision_round_trips() {
        let msg = ServerMsg::Decision(DecisionEvent {
            request: 11,
            algorithm: "alg2-primal-dual".into(),
            scheme: "off-site".into(),
            slot: 0,
            payment: 2.0,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: Some(5.5),
                margin: Some(-3.5),
            },
        });
        assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn version_and_type_are_enforced() {
        assert!(parse_client("{\"type\":\"submit\",\"v\":2,\"id\":0}").is_err());
        assert!(parse_client("{\"type\":\"nope\",\"v\":1}").is_err());
        assert!(parse_client("{\"type\":\"control\",\"v\":1,\"action\":\"dance\"}").is_err());
        assert!(parse_client("not json").is_err());
        assert!(parse_server("{\"type\":\"ack\",\"v\":1,\"action\":\"stats\"}").is_err());
    }
}
