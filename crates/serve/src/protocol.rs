//! Line-delimited JSON wire protocol of the admission daemon.
//!
//! Every message is one compact JSON object per line with a `"type"`
//! discriminator. Serve-specific messages carry a `"v"` schema version
//! (currently [`PROTOCOL_VERSION`]); decision lines reuse the
//! `mec-obs` trace schema (`"type":"decision"`, see
//! [`mec_obs::to_json`]) unchanged, so a daemon response stream is also
//! a valid trace file.
//!
//! Client → server:
//!
//! ```text
//! {"type":"submit","v":2,"id":0,"vnf":2,"reliability":0.95,"arrival":3,"duration":4,"payment":6.5}
//! {"type":"control","v":2,"action":"advance-slot"}   // also: snapshot | stats | shutdown | promote
//! ```
//!
//! Server → client (one line per submit, in submission order):
//!
//! ```text
//! {"type":"decision", ...}                            // full DecisionEvent
//! {"type":"overload","v":2,"id":7,"queue_depth":128,"limit":128}
//! {"type":"ack","v":2,"action":"stats","slot":3,"epoch":1,"role":"primary","stats":{...}}
//! {"type":"not-primary","v":2,"epoch":1,"id":7}
//! {"type":"error","v":2,"message":"..."}
//! ```
//!
//! Version 2 adds the `promote` control verb, the `not-primary`
//! rejection a standby sends for submits, and the `epoch`/`role`
//! fields on acks (see [`crate::epoch`]). Parsers accept v1 lines and
//! fill the v2 fields with their pre-replication defaults
//! (`epoch = 1`, `role = "primary"`), so v1 clients and recorded
//! streams keep working.

use mec_obs::{parse_line, parse_value, to_json, DecisionEvent, JsonValue, TraceEvent};

use crate::error::ServeError;

/// Wire schema version of the serve-specific message types.
pub const PROTOCOL_VERSION: usize = 2;

/// Oldest wire schema version parsers still accept.
pub const MIN_PROTOCOL_VERSION: usize = 1;

/// Hard cap on one protocol line, in bytes, including the newline.
///
/// Anything longer is a torn or hostile frame: the largest legitimate
/// line (a full-state replication snapshot for a big topology) stays
/// far below this, so readers can reject oversized input with a typed
/// error instead of buffering without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A request submission: the client-side view of one
/// [`mec_workload::Request`], before validation against the daemon's
/// horizon and catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Dense request id; the daemon enforces arrival order (`id` must
    /// equal the number of requests decided so far).
    pub id: usize,
    /// VNF type index into the daemon's catalog.
    pub vnf: usize,
    /// Required reliability in `(0, 1)`.
    pub reliability: f64,
    /// Arrival slot.
    pub arrival: usize,
    /// Duration in slots (≥ 1).
    pub duration: usize,
    /// Offered payment.
    pub payment: f64,
}

/// Daemon control verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Advance the virtual slot clock by one slot.
    AdvanceSlot,
    /// Write a snapshot now (no-op without a configured snapshot path).
    Snapshot,
    /// Report live counters without changing anything.
    Stats,
    /// Drain the ingress queue, snapshot, and exit.
    Shutdown,
    /// Promote a standby to primary: drain the replication channel,
    /// open a new fencing epoch, and start accepting submits. A no-op
    /// acknowledgement on a node that is already primary.
    Promote,
}

impl ControlAction {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ControlAction::AdvanceSlot => "advance-slot",
            ControlAction::Snapshot => "snapshot",
            ControlAction::Stats => "stats",
            ControlAction::Shutdown => "shutdown",
            ControlAction::Promote => "promote",
        }
    }

    /// Parses a wire name back into an action.
    pub fn from_wire(s: &str) -> Option<Self> {
        match s {
            "advance-slot" => Some(ControlAction::AdvanceSlot),
            "snapshot" => Some(ControlAction::Snapshot),
            "stats" => Some(ControlAction::Stats),
            "shutdown" => Some(ControlAction::Shutdown),
            "promote" => Some(ControlAction::Promote),
            _ => None,
        }
    }
}

/// Anything a client can send.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Submit one request for an admission decision.
    Submit(SubmitRequest),
    /// Control the daemon.
    Control(ControlAction),
}

/// Live daemon counters, embedded in every control acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServeStats {
    /// Requests decided (admitted + rejected).
    pub decided: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected by the scheduler.
    pub rejected: u64,
    /// Submissions dropped by backpressure (never reached the scheduler).
    pub overloaded: u64,
    /// Σ payment over admitted requests.
    pub revenue: f64,
}

/// Typed backpressure rejection: the ingress queue was full, the request
/// never reached the scheduler and consumed no state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadReject {
    /// Id of the dropped submission.
    pub id: usize,
    /// Queue depth observed when the push failed.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub limit: usize,
}

/// Acknowledgement of a control message.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlAck {
    /// The action being acknowledged.
    pub action: ControlAction,
    /// Current virtual slot.
    pub slot: usize,
    /// Current fencing epoch (1 on a never-failed-over primary; v1
    /// lines parse as 1).
    pub epoch: u64,
    /// `"primary"` or `"standby"` (v1 lines parse as `"primary"`).
    pub role: String,
    /// Live counters at acknowledgement time.
    pub stats: ServeStats,
}

/// Anything the daemon can send back.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// Full admission decision for one submitted request.
    Decision(DecisionEvent),
    /// Backpressure drop.
    Overload(OverloadReject),
    /// Control acknowledgement.
    Ack(ControlAck),
    /// The node is a standby (or a fenced ex-primary) and refuses the
    /// submit; the client should retry against the current primary.
    NotPrimary {
        /// The refusing node's fencing epoch.
        epoch: u64,
        /// Id of the refused submission.
        id: usize,
    },
    /// The line could not be honored (parse failure, invalid request
    /// fields, out-of-order id); the daemon keeps serving.
    Error(String),
}

fn num(out: &mut String, v: f64) {
    JsonValue::Num(v).encode_into(out);
}

fn uint(out: &mut String, v: usize) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Encodes a client message as one line (no trailing newline).
pub fn encode_client(msg: &ClientMsg) -> String {
    let mut out = String::with_capacity(128);
    match msg {
        ClientMsg::Submit(s) => {
            out.push_str("{\"type\":\"submit\",\"v\":2,\"id\":");
            uint(&mut out, s.id);
            out.push_str(",\"vnf\":");
            uint(&mut out, s.vnf);
            out.push_str(",\"reliability\":");
            num(&mut out, s.reliability);
            out.push_str(",\"arrival\":");
            uint(&mut out, s.arrival);
            out.push_str(",\"duration\":");
            uint(&mut out, s.duration);
            out.push_str(",\"payment\":");
            num(&mut out, s.payment);
            out.push('}');
        }
        ClientMsg::Control(a) => {
            out.push_str("{\"type\":\"control\",\"v\":2,\"action\":\"");
            out.push_str(a.as_str());
            out.push_str("\"}");
        }
    }
    out
}

fn encode_stats(out: &mut String, s: &ServeStats) {
    out.push_str("{\"decided\":");
    num(out, s.decided as f64);
    out.push_str(",\"admitted\":");
    num(out, s.admitted as f64);
    out.push_str(",\"rejected\":");
    num(out, s.rejected as f64);
    out.push_str(",\"overloaded\":");
    num(out, s.overloaded as f64);
    out.push_str(",\"revenue\":");
    num(out, s.revenue);
    out.push('}');
}

/// Encodes a server message as one line (no trailing newline).
pub fn encode_server(msg: &ServerMsg) -> String {
    match msg {
        ServerMsg::Decision(d) => to_json(&TraceEvent::Decision(d.clone())),
        ServerMsg::Overload(o) => {
            let mut out = String::with_capacity(80);
            out.push_str("{\"type\":\"overload\",\"v\":2,\"id\":");
            uint(&mut out, o.id);
            out.push_str(",\"queue_depth\":");
            uint(&mut out, o.queue_depth);
            out.push_str(",\"limit\":");
            uint(&mut out, o.limit);
            out.push('}');
            out
        }
        ServerMsg::Ack(a) => {
            let mut out = String::with_capacity(200);
            out.push_str("{\"type\":\"ack\",\"v\":2,\"action\":\"");
            out.push_str(a.action.as_str());
            out.push_str("\",\"slot\":");
            uint(&mut out, a.slot);
            out.push_str(",\"epoch\":");
            uint(&mut out, a.epoch as usize);
            out.push_str(",\"role\":\"");
            out.push_str(&a.role);
            out.push_str("\",\"stats\":");
            encode_stats(&mut out, &a.stats);
            out.push('}');
            out
        }
        ServerMsg::NotPrimary { epoch, id } => {
            let mut out = String::with_capacity(64);
            out.push_str("{\"type\":\"not-primary\",\"v\":2,\"epoch\":");
            uint(&mut out, *epoch as usize);
            out.push_str(",\"id\":");
            uint(&mut out, *id);
            out.push('}');
            out
        }
        ServerMsg::Error(m) => {
            let mut out = String::with_capacity(48 + m.len());
            out.push_str("{\"type\":\"error\",\"v\":2,\"message\":");
            JsonValue::Str(m.clone()).encode_into(&mut out);
            out.push('}');
            out
        }
    }
}

fn perr(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ServeError> {
    v.get(key)
        .ok_or_else(|| perr(format!("missing field '{key}'")))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, ServeError> {
    field(v, key)?
        .as_usize()
        .ok_or_else(|| perr(format!("field '{key}' must be a non-negative integer")))
}

fn field_f64(v: &JsonValue, key: &str) -> Result<f64, ServeError> {
    match field(v, key)? {
        JsonValue::Num(n) => Ok(*n),
        _ => Err(perr(format!("field '{key}' must be a number"))),
    }
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, ServeError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| perr(format!("field '{key}' must be a string")))
}

fn check_version(v: &JsonValue) -> Result<usize, ServeError> {
    let version = field_usize(v, "v")?;
    if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) {
        return Err(perr(format!(
            "unsupported protocol version {version} \
             (expected {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
        )));
    }
    Ok(version)
}

/// Parses one client line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, unknown type/action,
/// version mismatch, or missing/mistyped fields.
pub fn parse_client(line: &str) -> Result<ClientMsg, ServeError> {
    let v = parse_value(line).map_err(|e| perr(e.to_string()))?;
    match field_str(&v, "type")? {
        "submit" => {
            check_version(&v)?;
            Ok(ClientMsg::Submit(SubmitRequest {
                id: field_usize(&v, "id")?,
                vnf: field_usize(&v, "vnf")?,
                reliability: field_f64(&v, "reliability")?,
                arrival: field_usize(&v, "arrival")?,
                duration: field_usize(&v, "duration")?,
                payment: field_f64(&v, "payment")?,
            }))
        }
        "control" => {
            check_version(&v)?;
            let action = field_str(&v, "action")?;
            ControlAction::from_wire(action)
                .map(ClientMsg::Control)
                .ok_or_else(|| perr(format!("unknown control action '{action}'")))
        }
        other => Err(perr(format!("unknown client message type '{other}'"))),
    }
}

fn parse_stats(v: &JsonValue) -> Result<ServeStats, ServeError> {
    let as_u64 = |key: &str| -> Result<u64, ServeError> { Ok(field_usize(v, key)? as u64) };
    Ok(ServeStats {
        decided: as_u64("decided")?,
        admitted: as_u64("admitted")?,
        rejected: as_u64("rejected")?,
        overloaded: as_u64("overloaded")?,
        revenue: field_f64(v, "revenue")?,
    })
}

/// Parses one server line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, unknown type, version
/// mismatch, or missing/mistyped fields.
pub fn parse_server(line: &str) -> Result<ServerMsg, ServeError> {
    let v = parse_value(line).map_err(|e| perr(e.to_string()))?;
    match field_str(&v, "type")? {
        "decision" => match parse_line(line).map_err(|e| perr(e.to_string()))? {
            TraceEvent::Decision(d) => Ok(ServerMsg::Decision(d)),
            other => Err(perr(format!(
                "expected a decision event, got '{}'",
                other.kind()
            ))),
        },
        "overload" => {
            check_version(&v)?;
            Ok(ServerMsg::Overload(OverloadReject {
                id: field_usize(&v, "id")?,
                queue_depth: field_usize(&v, "queue_depth")?,
                limit: field_usize(&v, "limit")?,
            }))
        }
        "ack" => {
            let version = check_version(&v)?;
            let action = field_str(&v, "action")?;
            let action = ControlAction::from_wire(action)
                .ok_or_else(|| perr(format!("unknown ack action '{action}'")))?;
            let (epoch, role) = if version >= 2 {
                (
                    field_usize(&v, "epoch")? as u64,
                    field_str(&v, "role")?.to_string(),
                )
            } else {
                (1, "primary".to_string())
            };
            Ok(ServerMsg::Ack(ControlAck {
                action,
                slot: field_usize(&v, "slot")?,
                epoch,
                role,
                stats: parse_stats(field(&v, "stats")?)?,
            }))
        }
        "not-primary" => {
            check_version(&v)?;
            Ok(ServerMsg::NotPrimary {
                epoch: field_usize(&v, "epoch")? as u64,
                id: field_usize(&v, "id")?,
            })
        }
        "error" => {
            check_version(&v)?;
            Ok(ServerMsg::Error(field_str(&v, "message")?.to_string()))
        }
        other => Err(perr(format!("unknown server message type '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{Outcome, RejectReason, SitePlacement};

    #[test]
    fn submit_round_trips() {
        let msg = ClientMsg::Submit(SubmitRequest {
            id: 42,
            vnf: 3,
            reliability: 0.97,
            arrival: 5,
            duration: 2,
            payment: 12.25,
        });
        let line = encode_client(&msg);
        assert!(line.starts_with("{\"type\":\"submit\",\"v\":2,"));
        assert_eq!(parse_client(&line).unwrap(), msg);
    }

    #[test]
    fn control_round_trips_all_actions() {
        for action in [
            ControlAction::AdvanceSlot,
            ControlAction::Snapshot,
            ControlAction::Stats,
            ControlAction::Shutdown,
            ControlAction::Promote,
        ] {
            let msg = ClientMsg::Control(action);
            assert_eq!(parse_client(&encode_client(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let decision = ServerMsg::Decision(DecisionEvent {
            request: 7,
            algorithm: "alg1-primal-dual".into(),
            scheme: "on-site".into(),
            slot: 2,
            payment: 4.5,
            outcome: Outcome::Admit {
                dual_cost: 1.25,
                margin: 3.25,
                sites: vec![SitePlacement {
                    cloudlet: 1,
                    instances: 2,
                    dual_cost: 1.25,
                }],
            },
        });
        let overload = ServerMsg::Overload(OverloadReject {
            id: 9,
            queue_depth: 128,
            limit: 128,
        });
        let ack = ServerMsg::Ack(ControlAck {
            action: ControlAction::Stats,
            slot: 3,
            epoch: 2,
            role: "standby".into(),
            stats: ServeStats {
                decided: 10,
                admitted: 6,
                rejected: 4,
                overloaded: 1,
                revenue: 33.5,
            },
        });
        let not_primary = ServerMsg::NotPrimary { epoch: 3, id: 12 };
        let error = ServerMsg::Error("bad line: \"quoted\"".into());
        for msg in [decision, overload, ack, not_primary, error] {
            assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn v1_lines_still_parse_with_defaults() {
        let submit = "{\"type\":\"submit\",\"v\":1,\"id\":0,\"vnf\":1,\"reliability\":0.9,\
                      \"arrival\":0,\"duration\":1,\"payment\":2.5}";
        assert!(matches!(
            parse_client(submit).unwrap(),
            ClientMsg::Submit(SubmitRequest { id: 0, .. })
        ));
        // A v1 ack has no epoch/role; they default to the
        // pre-replication values.
        let ack = "{\"type\":\"ack\",\"v\":1,\"action\":\"stats\",\"slot\":3,\"stats\":\
                   {\"decided\":1,\"admitted\":1,\"rejected\":0,\"overloaded\":0,\"revenue\":2.5}}";
        match parse_server(ack).unwrap() {
            ServerMsg::Ack(a) => {
                assert_eq!(a.epoch, 1);
                assert_eq!(a.role, "primary");
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn reject_decision_round_trips() {
        let msg = ServerMsg::Decision(DecisionEvent {
            request: 11,
            algorithm: "alg2-primal-dual".into(),
            scheme: "off-site".into(),
            slot: 0,
            payment: 2.0,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: Some(5.5),
                margin: Some(-3.5),
            },
        });
        assert_eq!(parse_server(&encode_server(&msg)).unwrap(), msg);
    }

    #[test]
    fn version_and_type_are_enforced() {
        assert!(parse_client("{\"type\":\"submit\",\"v\":3,\"id\":0}").is_err());
        assert!(parse_client("{\"type\":\"submit\",\"v\":0,\"id\":0}").is_err());
        assert!(parse_client("{\"type\":\"nope\",\"v\":2}").is_err());
        assert!(parse_client("{\"type\":\"control\",\"v\":2,\"action\":\"dance\"}").is_err());
        assert!(parse_client("not json").is_err());
        assert!(parse_server("{\"type\":\"ack\",\"v\":2,\"action\":\"stats\"}").is_err());
    }
}
