//! Metric series exported by the daemon at `GET /metrics`.
//!
//! The daemon reuses the decision series ([`DecisionMetricIds`]) and the
//! engine series ([`EngineMetricIds`], decide-latency + per-cloudlet
//! utilization) so the same dashboards work for batch runs and the
//! daemon, and adds serving-specific counters and gauges.

use mec_obs::{DecisionMetricIds, MetricId, MetricsRegistry};
use mec_sim::obs::EngineMetricIds;

/// Buckets for end-to-end admission latency (socket read → decision
/// written) in seconds: 5 µs .. 100 ms.
pub const ADMISSION_LATENCY_BUCKETS: [f64; 9] = [
    5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 1e-3, 10e-3, 50e-3, 100e-3,
];

/// Pre-registered daemon series.
#[derive(Debug, Clone)]
pub struct ServeMetricIds {
    /// Shared decision series (admissions, rejections by reason, dual
    /// cost).
    pub decisions: DecisionMetricIds,
    /// Shared engine series (decide latency, per-cloudlet utilization).
    pub engine: EngineMetricIds,
    /// `vnfrel_serve_submitted_total`: submit lines accepted off sockets.
    pub submitted: MetricId,
    /// `vnfrel_serve_overload_total`: submissions dropped by backpressure.
    pub overloads: MetricId,
    /// `vnfrel_serve_protocol_errors_total`: unparseable/invalid lines.
    pub protocol_errors: MetricId,
    /// `vnfrel_serve_connections_total`: connections served.
    pub connections: MetricId,
    /// `vnfrel_serve_slot`: the virtual slot clock (gauge).
    pub slot: MetricId,
    /// `vnfrel_serve_queue_depth`: ingress queue depth (gauge).
    pub queue_depth: MetricId,
    /// `vnfrel_serve_admission_latency_seconds`: enqueue → reply written.
    pub admission_latency: MetricId,
}

impl ServeMetricIds {
    /// Registers every daemon series for a topology with
    /// `cloudlet_count` cloudlets.
    pub fn register(reg: &mut MetricsRegistry, cloudlet_count: usize) -> Self {
        ServeMetricIds {
            decisions: DecisionMetricIds::register(reg),
            engine: EngineMetricIds::register(reg, cloudlet_count),
            submitted: reg.register_counter(
                "vnfrel_serve_submitted_total",
                "Submit lines accepted off client sockets",
            ),
            overloads: reg.register_counter(
                "vnfrel_serve_overload_total",
                "Submissions dropped because the ingress queue was full",
            ),
            protocol_errors: reg.register_counter(
                "vnfrel_serve_protocol_errors_total",
                "Client lines that failed to parse or validate",
            ),
            connections: reg.register_counter(
                "vnfrel_serve_connections_total",
                "Client connections served",
            ),
            slot: reg.register_gauge("vnfrel_serve_slot", "Virtual slot clock of the daemon"),
            queue_depth: reg.register_gauge(
                "vnfrel_serve_queue_depth",
                "Current depth of the ingress queue",
            ),
            admission_latency: reg.register_histogram(
                "vnfrel_serve_admission_latency_seconds",
                "End-to-end latency from socket read to decision written",
                &ADMISSION_LATENCY_BUCKETS,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exports_all_series() {
        let mut reg = MetricsRegistry::new();
        let ids = ServeMetricIds::register(&mut reg, 2);
        reg.inc(ids.submitted);
        reg.set_gauge(ids.slot, 3.0);
        reg.observe(ids.admission_latency, 20e-6);
        let text = reg.to_prometheus();
        for name in [
            "vnfrel_admissions_total",
            "vnfrel_decide_latency_seconds",
            "vnfrel_cloudlet_utilization",
            "vnfrel_serve_submitted_total",
            "vnfrel_serve_overload_total",
            "vnfrel_serve_protocol_errors_total",
            "vnfrel_serve_connections_total",
            "vnfrel_serve_slot",
            "vnfrel_serve_queue_depth",
            "vnfrel_serve_admission_latency_seconds",
        ] {
            assert!(text.contains(name), "missing series {name} in:\n{text}");
        }
    }
}
