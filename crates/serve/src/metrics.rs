//! Metric series exported by the daemon at `GET /metrics`.
//!
//! The daemon reuses the decision series ([`DecisionMetricIds`]) and the
//! engine series ([`EngineMetricIds`], decide-latency + per-cloudlet
//! utilization) so the same dashboards work for batch runs and the
//! daemon, and adds serving-specific counters and gauges.

use mec_obs::{DecisionMetricIds, MetricId, MetricsRegistry};
use mec_sim::obs::EngineMetricIds;

/// Buckets for end-to-end admission latency (socket read → decision
/// written) in seconds: 5 µs .. 100 ms.
pub const ADMISSION_LATENCY_BUCKETS: [f64; 9] = [
    5e-6, 10e-6, 25e-6, 50e-6, 100e-6, 1e-3, 10e-3, 50e-3, 100e-3,
];

/// Pre-registered daemon series.
#[derive(Debug, Clone)]
pub struct ServeMetricIds {
    /// Shared decision series (admissions, rejections by reason, dual
    /// cost).
    pub decisions: DecisionMetricIds,
    /// Shared engine series (decide latency, per-cloudlet utilization).
    pub engine: EngineMetricIds,
    /// `vnfrel_serve_submitted_total`: submit lines accepted off sockets.
    pub submitted: MetricId,
    /// `vnfrel_serve_overload_total`: submissions dropped by backpressure.
    pub overloads: MetricId,
    /// `vnfrel_serve_protocol_errors_total`: unparseable/invalid lines.
    pub protocol_errors: MetricId,
    /// `vnfrel_serve_connections_total`: connections served.
    pub connections: MetricId,
    /// `vnfrel_serve_slot`: the virtual slot clock (gauge).
    pub slot: MetricId,
    /// `vnfrel_serve_queue_depth`: ingress queue depth (gauge).
    pub queue_depth: MetricId,
    /// `vnfrel_serve_admission_latency_seconds`: enqueue → reply written.
    pub admission_latency: MetricId,
    /// `vnfrel_serve_epoch`: current fencing epoch (gauge).
    pub epoch: MetricId,
    /// `vnfrel_serve_is_primary`: 1 when primary, 0 when standby (gauge).
    pub is_primary: MetricId,
    /// `vnfrel_serve_repl_sent_seq`: highest log position written to the
    /// standby socket (gauge, primary side).
    pub repl_sent_seq: MetricId,
    /// `vnfrel_serve_repl_acked_seq`: highest log position the standby
    /// acknowledged (gauge, primary side).
    pub repl_acked_seq: MetricId,
    /// `vnfrel_serve_repl_lag`: `sent_seq − acked_seq` (gauge).
    pub repl_lag: MetricId,
    /// `vnfrel_serve_repl_applied_total`: replication frames applied
    /// (standby side).
    pub repl_applied: MetricId,
    /// `vnfrel_serve_repl_snapshots_total`: full-state catch-up
    /// snapshots sent or imported.
    pub repl_snapshots: MetricId,
    /// `vnfrel_serve_repl_refusals_total`: frames refused for a
    /// sequence gap.
    pub repl_refusals: MetricId,
    /// `vnfrel_serve_repl_reconnects`: successful re-handshakes after
    /// the first connect (gauge, mirrored from the sender).
    pub repl_reconnects: MetricId,
    /// `vnfrel_serve_fenced_total`: stale-epoch peers refused.
    pub fenced_peers: MetricId,
    /// `vnfrel_serve_dedupe_hits_total`: resubmits answered from the
    /// recent-decision ring instead of re-deciding.
    pub dedupe_hits: MetricId,
    /// `vnfrel_serve_not_primary_total`: submits refused because this
    /// node is a standby.
    pub not_primary: MetricId,
    /// `vnfrel_serve_unreplicated_acks`: replies released by the
    /// availability timeout before replication (gauge, mirrored from
    /// the sender; always 0 in strict mode).
    pub unreplicated_acks: MetricId,
}

impl ServeMetricIds {
    /// Registers every daemon series for a topology with
    /// `cloudlet_count` cloudlets.
    pub fn register(reg: &mut MetricsRegistry, cloudlet_count: usize) -> Self {
        ServeMetricIds {
            decisions: DecisionMetricIds::register(reg),
            engine: EngineMetricIds::register(reg, cloudlet_count),
            submitted: reg.register_counter(
                "vnfrel_serve_submitted_total",
                "Submit lines accepted off client sockets",
            ),
            overloads: reg.register_counter(
                "vnfrel_serve_overload_total",
                "Submissions dropped because the ingress queue was full",
            ),
            protocol_errors: reg.register_counter(
                "vnfrel_serve_protocol_errors_total",
                "Client lines that failed to parse or validate",
            ),
            connections: reg.register_counter(
                "vnfrel_serve_connections_total",
                "Client connections served",
            ),
            slot: reg.register_gauge("vnfrel_serve_slot", "Virtual slot clock of the daemon"),
            queue_depth: reg.register_gauge(
                "vnfrel_serve_queue_depth",
                "Current depth of the ingress queue",
            ),
            admission_latency: reg.register_histogram(
                "vnfrel_serve_admission_latency_seconds",
                "End-to-end latency from socket read to decision written",
                &ADMISSION_LATENCY_BUCKETS,
            ),
            epoch: reg.register_gauge("vnfrel_serve_epoch", "Current fencing epoch"),
            is_primary: reg.register_gauge(
                "vnfrel_serve_is_primary",
                "1 when this node is primary, 0 when standby",
            ),
            repl_sent_seq: reg.register_gauge(
                "vnfrel_serve_repl_sent_seq",
                "Highest replication log position written to the standby socket",
            ),
            repl_acked_seq: reg.register_gauge(
                "vnfrel_serve_repl_acked_seq",
                "Highest replication log position acknowledged by the standby",
            ),
            repl_lag: reg.register_gauge(
                "vnfrel_serve_repl_lag",
                "Replication lag in log entries (sent minus acked)",
            ),
            repl_applied: reg.register_counter(
                "vnfrel_serve_repl_applied_total",
                "Replication frames applied against local state",
            ),
            repl_snapshots: reg.register_counter(
                "vnfrel_serve_repl_snapshots_total",
                "Full-state catch-up snapshots sent or imported",
            ),
            repl_refusals: reg.register_counter(
                "vnfrel_serve_repl_refusals_total",
                "Replication frames refused for a sequence gap",
            ),
            repl_reconnects: reg.register_gauge(
                "vnfrel_serve_repl_reconnects",
                "Successful replication re-handshakes after the first connect",
            ),
            fenced_peers: reg.register_counter(
                "vnfrel_serve_fenced_total",
                "Stale-epoch replication peers refused",
            ),
            dedupe_hits: reg.register_counter(
                "vnfrel_serve_dedupe_hits_total",
                "Resubmits answered from the recent-decision ring",
            ),
            not_primary: reg.register_counter(
                "vnfrel_serve_not_primary_total",
                "Submits refused because this node is a standby",
            ),
            unreplicated_acks: reg.register_gauge(
                "vnfrel_serve_unreplicated_acks",
                "Replies released by the availability timeout before replication",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_exports_all_series() {
        let mut reg = MetricsRegistry::new();
        let ids = ServeMetricIds::register(&mut reg, 2);
        reg.inc(ids.submitted);
        reg.set_gauge(ids.slot, 3.0);
        reg.observe(ids.admission_latency, 20e-6);
        let text = reg.to_prometheus();
        for name in [
            "vnfrel_admissions_total",
            "vnfrel_decide_latency_seconds",
            "vnfrel_cloudlet_utilization",
            "vnfrel_serve_submitted_total",
            "vnfrel_serve_overload_total",
            "vnfrel_serve_protocol_errors_total",
            "vnfrel_serve_connections_total",
            "vnfrel_serve_slot",
            "vnfrel_serve_queue_depth",
            "vnfrel_serve_admission_latency_seconds",
            "vnfrel_serve_epoch",
            "vnfrel_serve_is_primary",
            "vnfrel_serve_repl_sent_seq",
            "vnfrel_serve_repl_acked_seq",
            "vnfrel_serve_repl_lag",
            "vnfrel_serve_repl_applied_total",
            "vnfrel_serve_repl_snapshots_total",
            "vnfrel_serve_repl_refusals_total",
            "vnfrel_serve_repl_reconnects",
            "vnfrel_serve_fenced_total",
            "vnfrel_serve_dedupe_hits_total",
            "vnfrel_serve_not_primary_total",
            "vnfrel_serve_unreplicated_acks",
        ] {
            assert!(text.contains(name), "missing series {name} in:\n{text}");
        }
    }
}
