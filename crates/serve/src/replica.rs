//! Active-standby replication: frame codec and the primary-side sender.
//!
//! The primary streams its decision log to one standby over a second
//! TCP connection (it *dials* the standby's normal listen address and
//! announces itself with a `repl-hello` line). Frames reuse the
//! line-delimited JSON layer of [`crate::protocol`]:
//!
//! ```text
//! primary → standby
//!   {"type":"repl-hello","v":2,"epoch":1,"seq":42}
//!   {"type":"repl-snapshot","v":2,"epoch":1,"seq":42,"data":"{\"type\":\"snapshot\",…}"}
//!   {"type":"repl-frame","v":2,"epoch":1,"seq":43,"submit":"{…}","decision":"{…}"}
//!   {"type":"repl-advance","v":2,"epoch":1,"seq":44,"slot":3}
//!   {"type":"repl-heartbeat","v":2,"epoch":1,"seq":44}
//!
//! standby → primary
//!   {"type":"repl-state","v":2,"epoch":1,"seq":40}
//!   {"type":"repl-ack","v":2,"epoch":1,"seq":43}
//!   {"type":"repl-refused","v":2,"epoch":1,"expected":44,"got":46}
//!   {"type":"repl-fenced","v":2,"epoch":2,"stale_epoch":1}
//! ```
//!
//! A `repl-frame` embeds the canonical submit line and the decision
//! line the primary produced, both as JSON string payloads: the standby
//! re-runs `decide()` on the submit against its own dual prices and
//! ledger and asserts its encoded decision is byte-identical — state
//! machine replication with a built-in divergence check.
//!
//! **Catch-up is always snapshot-first.** On every (re)connect the
//! sender raises [`ReplHandle::need_snapshot`]; the decide thread
//! answers with a full-state `repl-snapshot` at its current log
//! position, and already-queued frames at or below that position are
//! skipped by the standby's sequence check. This makes a freshly
//! started follower, a lagging follower and a follower that refused a
//! gap all the same code path.
//!
//! **Ack ordering is the safety invariant.** For a replicated submit
//! the client's decision reply is *withheld* by the sender. In strict
//! mode it is released only once the standby's `repl-ack` covers the
//! frame's sequence number — a write alone is not enough, because a
//! freshly promoted standby force-closes the replication connection and
//! the kernel happily accepts writes into a dead socket until the RST
//! arrives. A strict-mode ack therefore means the decision is *applied*
//! on the standby, and a deposed primary can never ack a decision the
//! survivor does not carry. In non-strict mode the reply is released as
//! soon as the frame is written (the kernel owns both buffers from then
//! on), and availability wins over an unreachable standby after
//! [`ReplSenderConfig::availability_timeout`]: held replies go out
//! unreplicated (and are counted).

use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpStream, ToSocketAddrs as _};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mec_obs::{parse_value, JsonValue};

use crate::error::ServeError;
use crate::protocol::MAX_LINE_BYTES;

/// One typed frame on the replication channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplMsg {
    /// Primary announces itself: its epoch and next sequence number.
    Hello {
        /// Sender's fencing epoch.
        epoch: u64,
        /// Sender's replication log position (last assigned seq).
        seq: u64,
    },
    /// Standby's handshake reply: its epoch and applied position.
    State {
        /// Receiver's highest-seen epoch.
        epoch: u64,
        /// Receiver's applied replication log position.
        seq: u64,
    },
    /// Full state transfer: an encoded [`crate::snapshot::Snapshot`]
    /// line as a string payload, stamped with the log position it
    /// covers.
    Snapshot {
        /// Sender's fencing epoch.
        epoch: u64,
        /// Log position the snapshot covers (frames ≤ `seq` are in it).
        seq: u64,
        /// The snapshot line, JSON-escaped.
        data: String,
    },
    /// One replicated decision: the submit line and the decision line.
    Frame {
        /// Sender's fencing epoch.
        epoch: u64,
        /// This frame's log position.
        seq: u64,
        /// Canonical client submit line, JSON-escaped.
        submit: String,
        /// The primary's decision line, JSON-escaped (the standby must
        /// reproduce it byte-for-byte).
        decision: String,
    },
    /// A replicated slot-clock advance.
    Advance {
        /// Sender's fencing epoch.
        epoch: u64,
        /// This frame's log position.
        seq: u64,
        /// The slot value after the advance.
        slot: usize,
    },
    /// Idle keepalive; also drives primary-loss detection on the
    /// standby.
    Heartbeat {
        /// Sender's fencing epoch.
        epoch: u64,
        /// Sender's last assigned log position.
        seq: u64,
    },
    /// Cumulative acknowledgement of the standby's applied position.
    Ack {
        /// Receiver's epoch.
        epoch: u64,
        /// Highest contiguously applied log position.
        seq: u64,
    },
    /// The standby saw a sequence gap and wants a fresh snapshot.
    Refused {
        /// Receiver's epoch.
        epoch: u64,
        /// The position the receiver expected next.
        expected: u64,
        /// The position that actually arrived.
        got: u64,
    },
    /// Fencing refusal: the sender's epoch is stale and it must stop
    /// acking decisions (exit code 7 at the CLI).
    Fenced {
        /// The refusing node's (newer) epoch.
        epoch: u64,
        /// The stale epoch that was refused.
        stale_epoch: u64,
    },
}

fn uint(out: &mut String, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Encodes one replication frame as a line (no trailing newline).
pub fn encode_repl(msg: &ReplMsg) -> String {
    let mut out = String::with_capacity(96);
    let head = |out: &mut String, kind: &str, epoch: u64, seq_key: &str, seq: u64| {
        out.push_str("{\"type\":\"");
        out.push_str(kind);
        out.push_str("\",\"v\":2,\"epoch\":");
        uint(out, epoch);
        out.push_str(",\"");
        out.push_str(seq_key);
        out.push_str("\":");
        uint(out, seq);
    };
    match msg {
        ReplMsg::Hello { epoch, seq } => head(&mut out, "repl-hello", *epoch, "seq", *seq),
        ReplMsg::State { epoch, seq } => head(&mut out, "repl-state", *epoch, "seq", *seq),
        ReplMsg::Snapshot { epoch, seq, data } => {
            head(&mut out, "repl-snapshot", *epoch, "seq", *seq);
            out.push_str(",\"data\":");
            JsonValue::Str(data.clone()).encode_into(&mut out);
        }
        ReplMsg::Frame {
            epoch,
            seq,
            submit,
            decision,
        } => {
            head(&mut out, "repl-frame", *epoch, "seq", *seq);
            out.push_str(",\"submit\":");
            JsonValue::Str(submit.clone()).encode_into(&mut out);
            out.push_str(",\"decision\":");
            JsonValue::Str(decision.clone()).encode_into(&mut out);
        }
        ReplMsg::Advance { epoch, seq, slot } => {
            head(&mut out, "repl-advance", *epoch, "seq", *seq);
            out.push_str(",\"slot\":");
            uint(&mut out, *slot as u64);
        }
        ReplMsg::Heartbeat { epoch, seq } => head(&mut out, "repl-heartbeat", *epoch, "seq", *seq),
        ReplMsg::Ack { epoch, seq } => head(&mut out, "repl-ack", *epoch, "seq", *seq),
        ReplMsg::Refused {
            epoch,
            expected,
            got,
        } => {
            head(&mut out, "repl-refused", *epoch, "expected", *expected);
            out.push_str(",\"got\":");
            uint(&mut out, *got);
        }
        ReplMsg::Fenced { epoch, stale_epoch } => {
            head(&mut out, "repl-fenced", *epoch, "stale_epoch", *stale_epoch);
        }
    }
    out.push('}');
    out
}

fn perr(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, ServeError> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .map(|n| n as u64)
        .ok_or_else(|| {
            perr(format!(
                "replication field '{key}' must be a non-negative integer"
            ))
        })
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, ServeError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| perr(format!("replication field '{key}' must be a string")))
}

/// True when a line looks like a replication frame (used by the daemon
/// to route connections into replication mode).
pub fn is_repl_line(line: &str) -> bool {
    line.starts_with("{\"type\":\"repl-")
}

/// Parses one replication frame line.
///
/// # Errors
///
/// [`ServeError::Protocol`] on malformed JSON, unknown type, version
/// mismatch, or missing/mistyped fields.
pub fn parse_repl(line: &str) -> Result<ReplMsg, ServeError> {
    let v = parse_value(line).map_err(|e| perr(e.to_string()))?;
    let kind = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| perr("replication frame is missing 'type'"))?
        .to_string();
    let version = get_u64(&v, "v")?;
    if version != 2 {
        return Err(perr(format!(
            "unsupported replication protocol version {version} (expected 2)"
        )));
    }
    let epoch = get_u64(&v, "epoch")?;
    Ok(match kind.as_str() {
        "repl-hello" => ReplMsg::Hello {
            epoch,
            seq: get_u64(&v, "seq")?,
        },
        "repl-state" => ReplMsg::State {
            epoch,
            seq: get_u64(&v, "seq")?,
        },
        "repl-snapshot" => ReplMsg::Snapshot {
            epoch,
            seq: get_u64(&v, "seq")?,
            data: get_str(&v, "data")?,
        },
        "repl-frame" => ReplMsg::Frame {
            epoch,
            seq: get_u64(&v, "seq")?,
            submit: get_str(&v, "submit")?,
            decision: get_str(&v, "decision")?,
        },
        "repl-advance" => ReplMsg::Advance {
            epoch,
            seq: get_u64(&v, "seq")?,
            slot: get_u64(&v, "slot")? as usize,
        },
        "repl-heartbeat" => ReplMsg::Heartbeat {
            epoch,
            seq: get_u64(&v, "seq")?,
        },
        "repl-ack" => ReplMsg::Ack {
            epoch,
            seq: get_u64(&v, "seq")?,
        },
        "repl-refused" => ReplMsg::Refused {
            epoch,
            expected: get_u64(&v, "expected")?,
            got: get_u64(&v, "got")?,
        },
        "repl-fenced" => ReplMsg::Fenced {
            epoch,
            stale_epoch: get_u64(&v, "stale_epoch")?,
        },
        other => return Err(perr(format!("unknown replication frame type '{other}'"))),
    })
}

/// A client reply withheld until its frame reaches the standby socket.
#[derive(Debug)]
pub struct PendingReply {
    /// The client connection the reply belongs to.
    pub conn: Arc<Mutex<TcpStream>>,
    /// The encoded reply line (no trailing newline).
    pub line: String,
}

impl PendingReply {
    /// Writes the reply to the client (best effort — a vanished client
    /// is its own problem).
    pub fn flush(self) {
        let mut line = self.line;
        line.push('\n');
        if let Ok(mut s) = self.conn.lock() {
            let _ = s.write_all(line.as_bytes());
        }
    }
}

/// One unit of work the decide thread hands to the replication sender.
#[derive(Debug)]
pub struct ReplItem {
    /// Fully encoded replication frame line (no trailing newline).
    pub line: String,
    /// The frame's log position (used for lag metrics).
    pub seq: u64,
    /// True for `repl-snapshot` frames — they end catch-up mode.
    pub is_snapshot: bool,
    /// Client reply to release once the frame is on the peer socket.
    pub reply: Option<PendingReply>,
}

/// Shared state between the decide thread and the replication sender.
#[derive(Debug)]
pub struct ReplHandle {
    /// Sender's current epoch (the decide thread keeps it updated; read
    /// for hellos and heartbeats).
    pub epoch: AtomicU64,
    /// Raised by the sender on every (re)connect or `repl-refused`; the
    /// decide thread answers with a `ReplItem` snapshot and clears it.
    pub need_snapshot: AtomicBool,
    /// Set when a peer at a newer epoch refused us: the daemon must
    /// stop acking and exit.
    pub fenced: AtomicBool,
    /// The epoch that fenced us (valid once `fenced` is set).
    pub fenced_by: AtomicU64,
    /// Whether a replication connection is currently established.
    pub connected: AtomicBool,
    /// Highest log position written to the peer socket.
    pub sent_seq: AtomicU64,
    /// Highest log position the standby has acknowledged.
    pub acked_seq: AtomicU64,
    /// Successful re-handshakes after the first connect.
    pub reconnects: AtomicU64,
    /// Replies released by the availability timeout before their frame
    /// was replicated (non-strict mode only).
    pub unreplicated_acks: AtomicU64,
}

impl Default for ReplHandle {
    fn default() -> Self {
        ReplHandle {
            epoch: AtomicU64::new(1),
            need_snapshot: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
            fenced_by: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            sent_seq: AtomicU64::new(0),
            acked_seq: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            unreplicated_acks: AtomicU64::new(0),
        }
    }
}

fn store_max(cell: &AtomicU64, v: u64) {
    cell.fetch_max(v, Ordering::AcqRel);
}

/// How the primary-side sender connects and trades off safety vs
/// availability.
#[derive(Debug, Clone)]
pub struct ReplSenderConfig {
    /// The standby's listen address (the sender dials it).
    pub peer: String,
    /// Hold client replies until the standby's ack covers their frame,
    /// with no availability escape hatch. The failover drill runs
    /// strict so "acked" always implies "applied on the standby".
    pub strict: bool,
    /// In non-strict mode, release a held reply after this long even if
    /// the standby is unreachable (availability over replication).
    pub availability_timeout: Duration,
}

const BACKOFF_MIN: Duration = Duration::from_millis(50);
const BACKOFF_MAX: Duration = Duration::from_secs(2);
const HEARTBEAT_EVERY: Duration = Duration::from_millis(200);
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(2);
const CLOSE_GRACE: Duration = Duration::from_secs(2);

struct Peer {
    stream: TcpStream,
    inbox: Vec<u8>,
}

struct OutItem {
    line: String,
    seq: u64,
    is_snapshot: bool,
    reply: Option<PendingReply>,
    queued: Instant,
}

enum Shake {
    Connected(Peer),
    Fenced { by: u64 },
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handshake(config: &ReplSenderConfig, handle: &ReplHandle) -> Result<Shake, ServeError> {
    let addr = config
        .peer
        .to_socket_addrs()
        .map_err(|source| ServeError::Net {
            action: "resolve",
            addr: config.peer.clone(),
            source,
        })?
        .next()
        .ok_or_else(|| ServeError::Config(format!("peer '{}' resolves to nothing", config.peer)))?;
    let mut stream =
        TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT).map_err(|source| ServeError::Net {
            action: "connect",
            addr: config.peer.clone(),
            source,
        })?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    stream.set_write_timeout(Some(Duration::from_secs(1)))?;
    let hello = ReplMsg::Hello {
        epoch: handle.epoch.load(Ordering::Acquire),
        seq: handle.sent_seq.load(Ordering::Acquire),
    };
    let mut line = encode_repl(&hello);
    line.push('\n');
    stream.write_all(line.as_bytes())?;

    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut inbox: Vec<u8> = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if let Some(pos) = inbox.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = inbox.drain(..=pos).collect();
            let text = std::str::from_utf8(&line)
                .map_err(|_| perr("replication handshake reply is not UTF-8"))?;
            return match parse_repl(text.trim())? {
                ReplMsg::State { .. } => Ok(Shake::Connected(Peer { stream, inbox })),
                ReplMsg::Fenced { epoch, .. } => Ok(Shake::Fenced { by: epoch }),
                other => Err(perr(format!(
                    "unexpected replication handshake reply {other:?}"
                ))),
            };
        }
        if Instant::now() > deadline {
            return Err(perr("replication handshake timed out"));
        }
        match stream.read(&mut buf) {
            Ok(0) => return Err(perr("peer closed during replication handshake")),
            Ok(n) => inbox.extend_from_slice(&buf[..n]),
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
        if inbox.len() > MAX_LINE_BYTES {
            return Err(perr("oversized replication handshake reply"));
        }
    }
}

/// Drains whatever the standby has sent; returns true on a connection
/// error (EOF, I/O failure, garbage).
fn pump_incoming(peer: &mut Peer, handle: &ReplHandle, awaiting_snapshot: &mut bool) -> bool {
    let _ = peer.stream.set_read_timeout(Some(Duration::from_millis(1)));
    let mut buf = [0u8; 4096];
    loop {
        match peer.stream.read(&mut buf) {
            Ok(0) => return true,
            Ok(n) => {
                peer.inbox.extend_from_slice(&buf[..n]);
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if is_timeout(&e) => break,
            Err(_) => return true,
        }
        if peer.inbox.len() > MAX_LINE_BYTES {
            return true;
        }
    }
    while let Some(pos) = peer.inbox.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = peer.inbox.drain(..=pos).collect();
        let Ok(text) = std::str::from_utf8(&line) else {
            return true;
        };
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        match parse_repl(text) {
            Ok(ReplMsg::Ack { seq, .. }) => store_max(&handle.acked_seq, seq),
            Ok(ReplMsg::Refused { .. }) => {
                // The standby saw a gap: start over from a snapshot.
                handle.need_snapshot.store(true, Ordering::Release);
                *awaiting_snapshot = true;
            }
            Ok(ReplMsg::Fenced { epoch, .. }) => {
                handle.fenced_by.store(epoch, Ordering::Release);
                handle.fenced.store(true, Ordering::Release);
            }
            Ok(_) => {}
            Err(_) => return true,
        }
    }
    false
}

/// Runs the primary-side replication sender until the decide thread
/// drops its `ReplItem` channel (normal shutdown) or the node is
/// fenced.
///
/// Owns the connection to the standby: dial + handshake with
/// exponential backoff, snapshot-first catch-up, frame streaming with
/// withheld client replies (released on write in non-strict mode, on
/// the standby's covering ack in strict mode), heartbeats when idle,
/// and ack/refusal/fence processing. On channel close it makes a
/// bounded best effort to finish replicating, then releases (non-strict)
/// or drops (strict) any still-held replies — and never releases after
/// fencing.
pub fn run_repl_sender(
    config: &ReplSenderConfig,
    handle: &ReplHandle,
    rx: &mpsc::Receiver<ReplItem>,
    stop: &AtomicBool,
) {
    let mut outbox: VecDeque<OutItem> = VecDeque::new();
    // Strict mode: replies for frames already written, waiting for the
    // standby's ack to cover their sequence number. Kept in write order,
    // so sequence numbers are non-decreasing front to back.
    let mut held: VecDeque<(u64, PendingReply)> = VecDeque::new();
    let mut peer: Option<Peer> = None;
    let mut awaiting_snapshot = false;
    let mut backoff = BACKOFF_MIN;
    let mut next_attempt = Instant::now();
    let mut last_sent = Instant::now();
    let mut rx_open = true;
    let mut ever_connected = false;
    let mut close_deadline: Option<Instant> = None;

    loop {
        if handle.fenced.load(Ordering::Acquire) {
            // A newer epoch exists. Never ack again: held replies are
            // dropped, clients see the connection close and retry
            // against the promoted primary.
            return;
        }

        if rx_open {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(item) => {
                    let mut push = |item: ReplItem| {
                        outbox.push_back(OutItem {
                            line: item.line,
                            seq: item.seq,
                            is_snapshot: item.is_snapshot,
                            reply: item.reply,
                            queued: Instant::now(),
                        });
                    };
                    push(item);
                    while let Ok(more) = rx.try_recv() {
                        push(more);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    rx_open = false;
                    close_deadline = Some(Instant::now() + CLOSE_GRACE);
                }
            }
        }

        if peer.is_none() && Instant::now() >= next_attempt {
            match handshake(config, handle) {
                Ok(Shake::Connected(p)) => {
                    if ever_connected {
                        handle.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    ever_connected = true;
                    peer = Some(p);
                    handle.connected.store(true, Ordering::Release);
                    // Catch-up is always snapshot-first: ask the decide
                    // thread for a fresh full-state frame.
                    handle.need_snapshot.store(true, Ordering::Release);
                    awaiting_snapshot = true;
                    backoff = BACKOFF_MIN;
                }
                Ok(Shake::Fenced { by }) => {
                    handle.fenced_by.store(by, Ordering::Release);
                    handle.fenced.store(true, Ordering::Release);
                    continue;
                }
                Err(_) => {
                    next_attempt = Instant::now() + backoff;
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        }

        if !config.strict {
            // Availability over replication: a reply held longer than
            // the timeout goes out unreplicated.
            for item in outbox.iter_mut() {
                if item.reply.is_some() && item.queued.elapsed() >= config.availability_timeout {
                    if let Some(reply) = item.reply.take() {
                        reply.flush();
                        handle.unreplicated_acks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }

        let mut io_err = false;
        if let Some(p) = peer.as_mut() {
            while let Some(front) = outbox.front() {
                if awaiting_snapshot && !front.is_snapshot {
                    // The snapshot answering this catch-up may have been
                    // queued *behind* frames decided while the handshake
                    // raced — pull it forward or the queue deadlocks.
                    // The frames it covers still go out afterwards (the
                    // standby dup-skips them by seq) so their withheld
                    // replies are released as usual.
                    if let Some(pos) = outbox.iter().position(|item| item.is_snapshot) {
                        let snap = outbox.remove(pos).expect("position just found");
                        outbox.push_front(snap);
                        continue;
                    }
                    // No snapshot queued yet: hold until the decide
                    // thread produces one.
                    break;
                }
                let mut line = front.line.clone();
                line.push('\n');
                if p.stream.write_all(line.as_bytes()).is_err() {
                    io_err = true;
                    break;
                }
                let mut item = outbox.pop_front().expect("front() just succeeded");
                if item.is_snapshot {
                    awaiting_snapshot = false;
                }
                store_max(&handle.sent_seq, item.seq);
                if let Some(reply) = item.reply.take() {
                    if config.strict {
                        // Strict: the write is necessary but not
                        // sufficient — the reply waits for the
                        // standby's ack to cover this sequence.
                        held.push_back((item.seq, reply));
                    } else {
                        // The frame is on the standby socket — the
                        // client may learn the decision now.
                        reply.flush();
                    }
                }
                last_sent = Instant::now();
            }
            if !io_err && !awaiting_snapshot && last_sent.elapsed() >= HEARTBEAT_EVERY {
                let hb = ReplMsg::Heartbeat {
                    epoch: handle.epoch.load(Ordering::Acquire),
                    seq: handle.sent_seq.load(Ordering::Acquire),
                };
                let mut line = encode_repl(&hb);
                line.push('\n');
                if p.stream.write_all(line.as_bytes()).is_err() {
                    io_err = true;
                } else {
                    last_sent = Instant::now();
                }
            }
            if !io_err {
                io_err = pump_incoming(p, handle, &mut awaiting_snapshot);
            }
        }
        if config.strict && !held.is_empty() && !handle.fenced.load(Ordering::Acquire) {
            // Release every reply the standby has acknowledged (a
            // snapshot ack covers all frames it subsumes). After a
            // disconnect the held replies simply wait: reconnect is
            // snapshot-first, and that snapshot's ack covers them.
            let acked = handle.acked_seq.load(Ordering::Acquire);
            while held.front().is_some_and(|(seq, _)| *seq <= acked) {
                let (_, reply) = held.pop_front().expect("front() just matched");
                reply.flush();
            }
        }
        if io_err {
            peer = None;
            handle.connected.store(false, Ordering::Release);
            next_attempt = Instant::now() + backoff;
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }

        // `stop` is only raised after the decide thread has exited, so
        // either way no more items are coming: finish up within grace.
        if stop.load(Ordering::Acquire) && close_deadline.is_none() {
            close_deadline = Some(Instant::now() + CLOSE_GRACE);
        }
        if !rx_open || stop.load(Ordering::Acquire) {
            let grace_over = close_deadline.is_some_and(|d| Instant::now() >= d);
            if (outbox.is_empty() && held.is_empty()) || grace_over {
                if handle.fenced.load(Ordering::Acquire) {
                    // Fencing raced the farewell: never ack.
                    return;
                }
                if !config.strict {
                    // Bounded farewell: release whatever is still held
                    // so no client hangs on a daemon that is exiting
                    // anyway. Strict mode instead drops the replies —
                    // the client sees the connection close and retries
                    // (idempotent resubmit) against whoever is primary.
                    for item in outbox.drain(..) {
                        if let Some(reply) = item.reply {
                            reply.flush();
                        }
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repl_frames_round_trip() {
        let frames = [
            ReplMsg::Hello { epoch: 1, seq: 42 },
            ReplMsg::State { epoch: 2, seq: 40 },
            ReplMsg::Snapshot {
                epoch: 1,
                seq: 42,
                data: "{\"type\":\"snapshot\",\"v\":2}".to_string(),
            },
            ReplMsg::Frame {
                epoch: 1,
                seq: 43,
                submit: "{\"type\":\"submit\",\"v\":2,\"id\":7}".to_string(),
                decision: "{\"type\":\"decision\",\"request\":7}".to_string(),
            },
            ReplMsg::Advance {
                epoch: 1,
                seq: 44,
                slot: 3,
            },
            ReplMsg::Heartbeat { epoch: 1, seq: 44 },
            ReplMsg::Ack { epoch: 1, seq: 43 },
            ReplMsg::Refused {
                epoch: 1,
                expected: 44,
                got: 46,
            },
            ReplMsg::Fenced {
                epoch: 2,
                stale_epoch: 1,
            },
        ];
        for frame in frames {
            let line = encode_repl(&frame);
            assert!(is_repl_line(&line), "{line}");
            assert_eq!(parse_repl(&line).unwrap(), frame, "{line}");
        }
    }

    #[test]
    fn embedded_payloads_survive_escaping() {
        let frame = ReplMsg::Frame {
            epoch: 1,
            seq: 9,
            submit: "{\"quotes\":\"\\\"nested\\\"\",\"newline\":\"a\\nb\"}".to_string(),
            decision: "{\"backslash\":\"c:\\\\path\"}".to_string(),
        };
        let line = encode_repl(&frame);
        assert!(!line.contains('\n'), "escaped payloads must stay one line");
        assert_eq!(parse_repl(&line).unwrap(), frame);
    }

    #[test]
    fn parse_rejects_bad_frames() {
        assert!(parse_repl("{\"type\":\"repl-nope\",\"v\":2,\"epoch\":1}").is_err());
        assert!(parse_repl("{\"type\":\"repl-hello\",\"v\":1,\"epoch\":1,\"seq\":0}").is_err());
        assert!(parse_repl("{\"type\":\"repl-hello\",\"v\":2,\"seq\":0}").is_err());
        assert!(parse_repl("{\"type\":\"repl-frame\",\"v\":2,\"epoch\":1,\"seq\":1}").is_err());
        assert!(parse_repl("not json").is_err());
        assert!(!is_repl_line("{\"type\":\"submit\",\"v\":2}"));
    }
}
