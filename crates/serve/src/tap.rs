//! A shared in-process sink the daemon reads decision events back from.
//!
//! The schedulers report *why* they admitted or rejected (reason,
//! placement sites, dual cost) only through their [`TraceSink`]. The
//! daemon needs that detail in every response line, so it constructs the
//! scheduler with a clone of a [`DecisionTap`] and pops the event right
//! after each `decide()` call. `Rc` keeps it single-threaded by
//! construction — the tap lives entirely on the decide thread.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mec_obs::{TraceEvent, TraceSink};

/// A cloneable single-threaded FIFO of trace events.
#[derive(Debug, Clone, Default)]
pub struct DecisionTap {
    events: Rc<RefCell<VecDeque<TraceEvent>>>,
}

impl DecisionTap {
    /// Creates an empty tap.
    pub fn new() -> Self {
        DecisionTap::default()
    }

    /// Removes and returns the oldest recorded event.
    pub fn pop(&self) -> Option<TraceEvent> {
        self.events.borrow_mut().pop_front()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no event is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl TraceSink for DecisionTap {
    fn record(&mut self, event: TraceEvent) {
        self.events.borrow_mut().push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_obs::{DecisionEvent, Outcome, RejectReason};

    fn event(request: usize) -> TraceEvent {
        TraceEvent::Decision(DecisionEvent {
            request,
            algorithm: "test".into(),
            scheme: "on-site".into(),
            slot: 0,
            payment: 1.0,
            outcome: Outcome::Reject {
                reason: RejectReason::PaymentTest,
                dual_cost: None,
                margin: None,
            },
        })
    }

    #[test]
    fn clones_share_the_queue_in_fifo_order() {
        let tap = DecisionTap::new();
        let mut writer = tap.clone();
        writer.record(event(0));
        writer.record(event(1));
        assert_eq!(tap.len(), 2);
        assert!(matches!(
            tap.pop(),
            Some(TraceEvent::Decision(DecisionEvent { request: 0, .. }))
        ));
        assert!(matches!(
            tap.pop(),
            Some(TraceEvent::Decision(DecisionEvent { request: 1, .. }))
        ));
        assert!(tap.is_empty());
        assert!(tap.pop().is_none());
    }
}
