//! Monotonic fencing epochs for active-standby replication.
//!
//! An epoch is a generation number of primaryship. Every replication
//! frame and every snapshot carries the epoch of the primary that
//! produced it; a node refuses anything from an epoch older than its
//! own. Promotion bumps the epoch (`next()`), so after a failover the
//! deposed primary's frames — and, transitively, its ability to ack
//! admissions — are fenced off: the promoted node answers `repl-fenced`
//! and the stale primary must exit (see DESIGN.md §13).
//!
//! Epochs only ever grow. There is no consensus here — a single
//! standby is promoted by an operator (or a heartbeat timeout), which
//! is the standard primary/backup model, not a quorum protocol.

use std::fmt;

/// A monotonic primaryship generation number.
///
/// `Epoch::INITIAL` (1) is the epoch of a freshly started primary;
/// `0` never appears on the wire so it can serve as "unknown" in
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

/// What a fencing check decided about an incoming frame's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceCheck {
    /// The frame's epoch is current (or newer — the peer knows more
    /// recent history than we do and we must adopt its epoch).
    Accept,
    /// The frame's epoch predates ours: the sender was deposed and must
    /// not be applied or acknowledged.
    Stale,
}

impl Epoch {
    /// The epoch of a primary that never failed over.
    pub const INITIAL: Epoch = Epoch(1);

    /// The epoch a promotion opens.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Fencing decision for a frame stamped `frame_epoch` arriving at a
    /// node currently at `self`.
    pub fn check(self, frame_epoch: Epoch) -> FenceCheck {
        if frame_epoch < self {
            FenceCheck::Stale
        } else {
            FenceCheck::Accept
        }
    }

    /// Adopts the larger of the two epochs (a follower tracks the
    /// highest epoch it has ever seen).
    #[must_use]
    pub fn merge(self, other: Epoch) -> Epoch {
        self.max(other)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_monotonic_and_ordered() {
        let e = Epoch::INITIAL;
        assert_eq!(e, Epoch(1));
        assert!(e.next() > e);
        assert_eq!(e.next().next(), Epoch(3));
        assert_eq!(e.merge(Epoch(5)), Epoch(5));
        assert_eq!(Epoch(5).merge(e), Epoch(5));
    }

    #[test]
    fn fencing_refuses_only_older_epochs() {
        let current = Epoch(3);
        assert_eq!(current.check(Epoch(2)), FenceCheck::Stale);
        assert_eq!(current.check(Epoch(1)), FenceCheck::Stale);
        assert_eq!(current.check(Epoch(3)), FenceCheck::Accept);
        // A *newer* epoch is accepted: the peer has seen a promotion we
        // have not, and the receiver adopts it via merge().
        assert_eq!(current.check(Epoch(4)), FenceCheck::Accept);
    }

    #[test]
    fn displays_as_a_bare_number() {
        assert_eq!(Epoch(7).to_string(), "7");
    }
}
