//! The admission daemon: accept loop, worker pool, and the single decide
//! thread.
//!
//! Threading model (see DESIGN.md §12):
//!
//! ```text
//! accept thread ──► BoundedQueue<TcpStream> ──► worker pool (parse lines)
//!                                                    │ try_push (overload on full)
//!                                                    ▼
//!                                        BoundedQueue<WorkItem> (ingress)
//!                                                    │ pop (FIFO)
//!                                                    ▼
//!                                        decide thread (owns scheduler)
//! ```
//!
//! Only the decide thread — the thread that calls [`serve`] — touches the
//! scheduler, dual prices and ledger, so the hot path is exactly the
//! batch engine's `decide()` with no locking. Workers block on socket
//! reads with a short timeout so every thread observes shutdown promptly.

use std::collections::VecDeque;
use std::io::{self, BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mec_obs::{DecisionEvent, JsonlSink, MetricsRegistry, MetricsSink, TraceEvent, TraceSink};
use mec_sim::obs::EngineMetrics;
use mec_topology::{CloudletId, Reliability};
use mec_workload::{Horizon, Request, RequestId, VnfTypeId};
use vnfrel::OnlineScheduler;

use crate::epoch::{Epoch, FenceCheck};
use crate::error::ServeError;
use crate::metrics::ServeMetricIds;
use crate::pool::{BoundedQueue, PopTimeout};
use crate::protocol::{
    encode_client, encode_server, parse_client, parse_server, ClientMsg, ControlAck, ControlAction,
    OverloadReject, ServeStats, ServerMsg, SubmitRequest, MAX_LINE_BYTES,
};
use crate::replica::{
    encode_repl, is_repl_line, parse_repl, run_repl_sender, PendingReply, ReplHandle, ReplItem,
    ReplMsg, ReplSenderConfig,
};
use crate::snapshot::Snapshot;
use crate::tap::DecisionTap;

/// How long a promoting standby waits for the replication connection to
/// drain naturally (EOF from a dead primary) before force-closing it —
/// the split-brain guard for promotions against a still-live primary.
const PROMOTE_DRAIN_GRACE: Duration = Duration::from_millis(500);

/// How the daemon listens, queues, ticks and persists.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:7070"` (port 0 picks a free
    /// port; the bound address is in the [`ServeReport`]).
    pub addr: String,
    /// Ingress queue bound; submits beyond it get typed overload
    /// rejections.
    pub queue_capacity: usize,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Snapshot file; `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Load the snapshot (if the file exists) before serving.
    pub resume: bool,
    /// Advance the virtual slot clock every `tick` of wall time; `None`
    /// advances only on explicit `advance-slot` control messages.
    pub tick: Option<Duration>,
    /// Opaque scenario fingerprint stored in snapshots and validated on
    /// resume.
    pub fingerprint: String,
    /// Tee every decision event to this JSONL trace file.
    pub trace_path: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers that trigger drain-then-snapshot
    /// (process-global; leave off in tests).
    pub install_signal_handlers: bool,
    /// Run as a passive standby: refuse submits with `not-primary`,
    /// apply replication frames from a primary, and wait for promotion.
    pub standby: bool,
    /// Stream the decision log to a standby at this address (primary
    /// role). Mutually exclusive with `standby`.
    pub replicate_to: Option<String>,
    /// Never release a client reply before the standby has acknowledged
    /// its frame — no availability escape hatch. Only meaningful with
    /// `replicate_to`.
    pub repl_strict: bool,
    /// Auto-promote a standby that has seen a primary but heard nothing
    /// from it for this long; `None` promotes only on an explicit
    /// `promote` control message.
    pub auto_promote_after: Option<Duration>,
    /// How many recent decisions to remember for idempotent resubmits
    /// (dedupe by request id after a client reconnects).
    pub dedupe_window: usize,
}

impl ServeConfig {
    /// A config with conservative defaults on `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            queue_capacity: 256,
            workers: 4,
            snapshot_path: None,
            resume: false,
            tick: None,
            fingerprint: String::new(),
            trace_path: None,
            install_signal_handlers: false,
            standby: false,
            replicate_to: None,
            repl_strict: false,
            auto_promote_after: None,
            dedupe_window: 1024,
        }
    }
}

/// Whether a node currently accepts submits or follows a primary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Decides submits and (optionally) streams its log to a standby.
    Primary,
    /// Applies the primary's log and refuses submits until promoted.
    Standby,
}

impl Role {
    /// Stable wire name, as carried in control acks.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Standby => "standby",
        }
    }
}

/// What a completed (cleanly shut down) daemon reports.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The address actually bound.
    pub local_addr: SocketAddr,
    /// Final counters.
    pub stats: ServeStats,
    /// Final virtual slot.
    pub slot: usize,
    /// Dense id the next submission must carry.
    pub next_id: usize,
    /// Whether a final snapshot was written.
    pub snapshot_written: bool,
    /// Fencing epoch at exit.
    pub epoch: u64,
    /// Role at exit (a standby that was promoted reports `Primary`).
    pub role: Role,
}

enum WorkItem {
    Submit {
        msg: SubmitRequest,
        conn: Arc<Mutex<TcpStream>>,
        enqueued: Instant,
    },
    Control {
        action: ControlAction,
        conn: Option<Arc<Mutex<TcpStream>>>,
    },
    Repl {
        msg: ReplMsg,
        conn: Arc<Mutex<TcpStream>>,
    },
    // The connection that carried replication frames closed; FIFO
    // ordering guarantees every frame it delivered is already ahead of
    // this marker, which is what lets promotion drain before flipping.
    ReplEof {
        conn: Arc<Mutex<TcpStream>>,
    },
}

// One write per line: two small writes would trip Nagle + delayed-ACK
// (~40 ms per round trip) on peers without TCP_NODELAY.
fn write_line(conn: &Arc<Mutex<TcpStream>>, mut line: String) -> io::Result<()> {
    line.push('\n');
    let mut s = conn.lock().unwrap();
    s.write_all(line.as_bytes())
}

#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::Release);
    }

    extern "C" {
        // Raw libc `signal(2)`; the handler only touches an atomic, which
        // is async-signal-safe.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub(super) fn requested() -> bool {
        REQUESTED.load(Ordering::Acquire)
    }
}

#[cfg(not(unix))]
mod signal {
    pub(super) fn install() {}
    pub(super) fn requested() -> bool {
        false
    }
}

/// Runs the daemon until a `shutdown` control message or a termination
/// signal, then drains the ingress queue, writes a final snapshot and
/// returns.
///
/// The scheduler must have been constructed with `tap.clone()` as its
/// trace sink — the daemon reads the full decision event (reject reason,
/// placement sites, dual cost) back out of the tap after every
/// `decide()` call. `on_bound` (if given) receives the bound address
/// once the listener is up, which is how tests and the CLI learn the
/// port when binding to port 0.
///
/// # Errors
///
/// [`ServeError`] on bind failure, snapshot problems during
/// resume/persist, or a scheduler without the daemon's tap.
pub fn serve(
    scheduler: &mut dyn OnlineScheduler,
    tap: &DecisionTap,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
    config: &ServeConfig,
    on_bound: Option<mpsc::Sender<SocketAddr>>,
) -> Result<ServeReport, ServeError> {
    if config.standby && config.replicate_to.is_some() {
        return Err(ServeError::Config(
            "a standby cannot also replicate onward (chained replication is not supported)"
                .to_string(),
        ));
    }
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Net {
        action: "bind",
        addr: config.addr.clone(),
        source,
    })?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (repl, repl_rx) = match &config.replicate_to {
        Some(_) => {
            let (tx, rx) = mpsc::channel();
            (
                Some(ReplLink {
                    tx: Some(tx),
                    handle: Arc::new(ReplHandle::default()),
                }),
                Some(rx),
            )
        }
        None => (None, None),
    };

    let mut driver = Driver {
        scheduler,
        tap,
        registry,
        ids,
        engine: EngineMetrics::new(registry, ids.engine.clone()),
        decisions: MetricsSink::new(registry, ids.decisions),
        trace: match &config.trace_path {
            Some(path) => {
                let file = std::fs::File::create(path)?;
                Some(JsonlSink::new(BufWriter::new(file)))
            }
            None => None,
        },
        config,
        horizon: Horizon::new(1),
        stats: ServeStats::default(),
        next_id: 0,
        slot: 0,
        pending_shutdown: None,
        epoch: Epoch::INITIAL,
        role: if config.standby {
            Role::Standby
        } else {
            Role::Primary
        },
        seq: 0,
        repl,
        recent: VecDeque::new(),
        promoting: None,
        promote_deadline: None,
        repl_conn: None,
        last_heard: None,
        seen_hello: false,
    };
    driver.horizon = driver.scheduler.ledger().horizon();

    if config.resume {
        let path = config
            .snapshot_path
            .as_deref()
            .ok_or_else(|| ServeError::Config("resume requires a snapshot path".to_string()))?;
        if path.exists() {
            let snap = Snapshot::load(path)?;
            snap.validate(driver.scheduler.name(), &config.fingerprint)?;
            driver.scheduler.import_state(&snap.state)?;
            driver.stats = snap.stats;
            driver.next_id = snap.next_id;
            driver.slot = snap.slot;
            driver.epoch = Epoch(snap.epoch);
            driver.seq = snap.seq;
            driver.recent = decode_recent(&snap.recent)?;
        }
    }
    registry.set_gauge(ids.slot, driver.slot as f64);
    registry.set_gauge(ids.epoch, driver.epoch.0 as f64);
    registry.set_gauge(
        ids.is_primary,
        if driver.role == Role::Primary {
            1.0
        } else {
            0.0
        },
    );

    if config.install_signal_handlers {
        signal::install();
    }
    if let Some(tx) = on_bound {
        let _ = tx.send(local_addr);
    }

    let stop = AtomicBool::new(false);
    let conns: BoundedQueue<TcpStream> = BoundedQueue::new(config.workers.max(1) * 2);
    let ingress: BoundedQueue<WorkItem> = BoundedQueue::new(config.queue_capacity);

    std::thread::scope(|scope| {
        scope.spawn(|| accept_loop(&listener, &conns, &stop));
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(&conns, &ingress, &stop, registry, ids));
        }
        if let Some(tick) = config.tick {
            let (ingress, stop) = (&ingress, &stop);
            scope.spawn(move || ticker_loop(tick, ingress, stop));
        }
        if let Some(rx) = repl_rx {
            let sender_cfg = ReplSenderConfig {
                peer: config
                    .replicate_to
                    .clone()
                    .expect("repl_rx exists only with replicate_to"),
                strict: config.repl_strict,
                availability_timeout: Duration::from_secs(1),
            };
            let handle = driver
                .repl
                .as_ref()
                .map(|link| Arc::clone(&link.handle))
                .expect("repl_rx exists only with a replication link");
            let stop = &stop;
            scope.spawn(move || run_repl_sender(&sender_cfg, &handle, &rx, stop));
        }

        let result = driver.run(&ingress, &stop);
        stop.store(true, Ordering::Release);
        conns.close();
        ingress.close();
        result
    })?;

    let snapshot_written = driver.finish()?;
    Ok(ServeReport {
        local_addr,
        stats: driver.stats,
        slot: driver.slot,
        next_id: driver.next_id,
        snapshot_written,
        epoch: driver.epoch.0,
        role: driver.role,
    })
}

// The epoch stamped on a replication frame (every variant carries one).
fn repl_epoch(msg: &ReplMsg) -> u64 {
    match msg {
        ReplMsg::Hello { epoch, .. }
        | ReplMsg::State { epoch, .. }
        | ReplMsg::Snapshot { epoch, .. }
        | ReplMsg::Frame { epoch, .. }
        | ReplMsg::Advance { epoch, .. }
        | ReplMsg::Heartbeat { epoch, .. }
        | ReplMsg::Ack { epoch, .. }
        | ReplMsg::Refused { epoch, .. }
        | ReplMsg::Fenced { epoch, .. } => *epoch,
    }
}

/// Rebuilds the idempotent-resubmit ring from a snapshot's stored
/// decision lines.
fn decode_recent(lines: &[String]) -> Result<VecDeque<DecisionEvent>, ServeError> {
    lines
        .iter()
        .map(|line| match parse_server(line)? {
            ServerMsg::Decision(event) => Ok(event),
            other => Err(ServeError::Snapshot(format!(
                "snapshot 'recent' entry is not a decision line: {other:?}"
            ))),
        })
        .collect()
}

fn accept_loop(listener: &TcpListener, conns: &BoundedQueue<TcpStream>, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // push blocks while all workers are busy; Err means the
                // daemon is shutting down and the connection is dropped.
                if conns.push(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(
    conns: &BoundedQueue<TcpStream>,
    ingress: &BoundedQueue<WorkItem>,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) {
    while let Some(stream) = conns.pop() {
        registry.inc(ids.connections);
        let _ = handle_conn(stream, ingress, stop, registry, ids);
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_conn(
    stream: TcpStream,
    ingress: &BoundedQueue<WorkItem>,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut first = true;
    let mut is_repl = false;
    let result = loop {
        if stop.load(Ordering::Acquire) {
            break Ok(());
        }
        // On a read timeout any partial line stays in `line` and the next
        // read_line call appends the rest — slow peers never tear lines.
        match reader.read_line(&mut line) {
            Ok(0) => break Ok(()),
            Ok(_) => {
                if !line.ends_with('\n') {
                    // read_line returned without a newline and without
                    // EOF-as-zero: the peer closed (or was killed)
                    // mid-line. The fragment is a torn frame — reply
                    // with a typed error (best effort; the peer is
                    // likely gone) and never let it near the parser.
                    registry.inc(ids.protocol_errors);
                    let reply = ServerMsg::Error(format!(
                        "torn frame: connection closed mid-line after {} bytes",
                        line.len()
                    ));
                    let _ = write_line(&writer, encode_server(&reply));
                    break Ok(());
                }
            }
            Err(e) if is_timeout(&e) => {
                if line.len() > MAX_LINE_BYTES {
                    break oversized(&writer, line.len(), registry, ids);
                }
                continue;
            }
            Err(e) => break Err(e),
        }
        if line.len() > MAX_LINE_BYTES {
            break oversized(&writer, line.len(), registry, ids);
        }
        if first && line.starts_with("GET ") {
            return serve_http(&line, reader, &writer, registry);
        }
        first = false;
        is_repl |= handle_line(line.trim(), ingress, &writer, registry, ids);
        line.clear();
    };
    if is_repl {
        // Tell the decide thread the replication stream ended. FIFO
        // ordering puts this marker behind every frame the connection
        // delivered, so a pending promotion drains before flipping.
        let _ = ingress.push(WorkItem::ReplEof {
            conn: Arc::clone(&writer),
        });
    }
    result
}

// An oversized line cannot be resynchronized (the frame boundary is
// lost), so the connection is dropped after a typed error.
fn oversized(
    writer: &Arc<Mutex<TcpStream>>,
    len: usize,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) -> io::Result<()> {
    registry.inc(ids.protocol_errors);
    let reply = ServerMsg::Error(format!(
        "oversized frame: {len} bytes exceeds the {MAX_LINE_BYTES} byte line limit"
    ));
    let _ = write_line(writer, encode_server(&reply));
    Ok(())
}

// Returns true when the line was a replication frame (the caller then
// owes the decide thread a ReplEof marker when the connection ends).
fn handle_line(
    line: &str,
    ingress: &BoundedQueue<WorkItem>,
    writer: &Arc<Mutex<TcpStream>>,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) -> bool {
    if line.is_empty() {
        return false;
    }
    if is_repl_line(line) {
        match parse_repl(line) {
            Ok(msg) => {
                let item = WorkItem::Repl {
                    msg,
                    conn: Arc::clone(writer),
                };
                // Replication frames are never dropped by backpressure;
                // block like controls do.
                if ingress.push(item).is_err() {
                    let reply = ServerMsg::Error("daemon is shutting down".to_string());
                    let _ = write_line(writer, encode_server(&reply));
                }
                return true;
            }
            Err(e) => {
                registry.inc(ids.protocol_errors);
                let _ = write_line(writer, encode_server(&ServerMsg::Error(e.to_string())));
                return false;
            }
        }
    }
    match parse_client(line) {
        Ok(ClientMsg::Submit(msg)) => {
            registry.inc(ids.submitted);
            let id = msg.id;
            let item = WorkItem::Submit {
                msg,
                conn: Arc::clone(writer),
                enqueued: Instant::now(),
            };
            if ingress.try_push(item).is_err() {
                registry.inc(ids.overloads);
                let reply = ServerMsg::Overload(OverloadReject {
                    id,
                    queue_depth: ingress.len(),
                    limit: ingress.capacity(),
                });
                let _ = write_line(writer, encode_server(&reply));
            }
            registry.set_gauge(ids.queue_depth, ingress.len() as f64);
        }
        Ok(ClientMsg::Control(action)) => {
            let item = WorkItem::Control {
                action,
                conn: Some(Arc::clone(writer)),
            };
            // Controls must not be dropped by backpressure; block until
            // there is room (Err only when the daemon is already gone).
            if ingress.push(item).is_err() {
                let reply = ServerMsg::Error("daemon is shutting down".to_string());
                let _ = write_line(writer, encode_server(&reply));
            }
        }
        Err(e) => {
            registry.inc(ids.protocol_errors);
            let _ = write_line(writer, encode_server(&ServerMsg::Error(e.to_string())));
        }
    }
    false
}

fn serve_http(
    request_line: &str,
    mut reader: BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => break,
            Err(e) => return Err(e),
        }
    }
    let (status, body) = if path == "/metrics" {
        ("200 OK", registry.to_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut w = writer.lock().unwrap();
    w.write_all(response.as_bytes())
}

fn ticker_loop(tick: Duration, ingress: &BoundedQueue<WorkItem>, stop: &AtomicBool) {
    let step = Duration::from_millis(25).min(tick);
    loop {
        let mut waited = Duration::ZERO;
        while waited < tick {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(step);
            waited += step;
        }
        let item = WorkItem::Control {
            action: ControlAction::AdvanceSlot,
            conn: None,
        };
        if ingress.push(item).is_err() {
            return;
        }
    }
}

// The decide thread's half of the replication sender: the item channel
// and the shared flags.
struct ReplLink {
    tx: Option<mpsc::Sender<ReplItem>>,
    handle: Arc<ReplHandle>,
}

/// The decide thread's state: the only place scheduler state mutates.
struct Driver<'a> {
    scheduler: &'a mut dyn OnlineScheduler,
    tap: &'a DecisionTap,
    registry: &'a MetricsRegistry,
    ids: &'a ServeMetricIds,
    engine: EngineMetrics<'a>,
    decisions: MetricsSink<'a>,
    trace: Option<JsonlSink<BufWriter<std::fs::File>>>,
    config: &'a ServeConfig,
    horizon: Horizon,
    stats: ServeStats,
    next_id: usize,
    slot: usize,
    pending_shutdown: Option<Option<Arc<Mutex<TcpStream>>>>,
    epoch: Epoch,
    role: Role,
    // Replication log position: one entry per decision or slot advance.
    seq: u64,
    // Primary side: the sender thread link (None when not replicating).
    repl: Option<ReplLink>,
    // Recent decisions, oldest first, for idempotent resubmits.
    recent: VecDeque<DecisionEvent>,
    // A promotion in progress: Some(ack connection) until the
    // replication channel drains (ReplEof) or the drain grace expires.
    promoting: Option<Option<Arc<Mutex<TcpStream>>>>,
    promote_deadline: Option<Instant>,
    // Standby side: the connection currently carrying frames.
    repl_conn: Option<Arc<Mutex<TcpStream>>>,
    last_heard: Option<Instant>,
    seen_hello: bool,
}

impl Driver<'_> {
    fn run(
        &mut self,
        ingress: &BoundedQueue<WorkItem>,
        stop: &AtomicBool,
    ) -> Result<(), ServeError> {
        let result = self.run_inner(ingress, stop);
        // Disconnect the sender thread's channel so it drains its
        // outbox and exits (it is joined by the caller's thread scope).
        if let Some(link) = &mut self.repl {
            link.tx = None;
        }
        result
    }

    fn run_inner(
        &mut self,
        ingress: &BoundedQueue<WorkItem>,
        stop: &AtomicBool,
    ) -> Result<(), ServeError> {
        loop {
            if signal::requested() {
                stop.store(true, Ordering::Release);
            }
            if stop.load(Ordering::Acquire) || self.pending_shutdown.is_some() {
                break;
            }
            self.repl_tick()?;
            match ingress.pop_timeout(Duration::from_millis(50)) {
                PopTimeout::Item(item) => self.handle(item)?,
                PopTimeout::TimedOut => {}
                PopTimeout::Closed => break,
            }
        }
        // Drain: decide everything already queued, in order.
        while let Some(item) = ingress.try_pop() {
            self.handle(item)?;
        }
        // One last look at the sender's flags so a snapshot request
        // raised during the drain is answered before the channel drops.
        self.repl_tick()?;
        Ok(())
    }

    // Per-iteration replication housekeeping: fencing, snapshot
    // requests, lag gauges, auto-promotion, and the promote drain
    // deadline.
    fn repl_tick(&mut self) -> Result<(), ServeError> {
        if let Some(link) = &self.repl {
            link.handle.epoch.store(self.epoch.0, Ordering::Release);
            if link.handle.fenced.load(Ordering::Acquire) {
                let by = link.handle.fenced_by.load(Ordering::Acquire);
                // A standby at a newer epoch exists: this node must
                // never ack another decision. The error skips the
                // final snapshot and maps to exit code 7.
                return Err(ServeError::Fenced {
                    epoch: self.epoch.0,
                    by,
                });
            }
            if link.handle.need_snapshot.swap(false, Ordering::AcqRel) {
                let frame = ReplMsg::Snapshot {
                    epoch: self.epoch.0,
                    seq: self.seq,
                    data: self.snapshot_value().encode(),
                };
                let item = ReplItem {
                    line: encode_repl(&frame),
                    seq: self.seq,
                    is_snapshot: true,
                    reply: None,
                };
                if let Some(tx) = &link.tx {
                    let _ = tx.send(item);
                }
                self.registry.inc(self.ids.repl_snapshots);
            }
            let sent = link.handle.sent_seq.load(Ordering::Acquire);
            let acked = link.handle.acked_seq.load(Ordering::Acquire);
            self.registry.set_gauge(self.ids.repl_sent_seq, sent as f64);
            self.registry
                .set_gauge(self.ids.repl_acked_seq, acked as f64);
            self.registry
                .set_gauge(self.ids.repl_lag, sent.saturating_sub(acked) as f64);
            self.registry.set_gauge(
                self.ids.repl_reconnects,
                link.handle.reconnects.load(Ordering::Relaxed) as f64,
            );
            self.registry.set_gauge(
                self.ids.unreplicated_acks,
                link.handle.unreplicated_acks.load(Ordering::Relaxed) as f64,
            );
        }
        if self.role == Role::Standby {
            if self.promoting.is_none() {
                if let (Some(after), Some(heard)) =
                    (self.config.auto_promote_after, self.last_heard)
                {
                    if self.seen_hello && heard.elapsed() >= after {
                        self.begin_promotion(None);
                    }
                }
            }
            if let Some(deadline) = self.promote_deadline {
                if Instant::now() >= deadline {
                    // The primary did not EOF within the grace window —
                    // it is probably still alive (split brain). Force
                    // the connection closed; its worker delivers the
                    // ReplEof that completes the promotion.
                    self.promote_deadline = None;
                    if let Some(rc) = &self.repl_conn {
                        if let Ok(s) = rc.lock() {
                            let _ = s.shutdown(Shutdown::Both);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn handle(&mut self, item: WorkItem) -> Result<(), ServeError> {
        match item {
            WorkItem::Submit {
                msg,
                conn,
                enqueued,
            } => self.handle_submit(msg, &conn, enqueued),
            WorkItem::Control { action, conn } => self.handle_control(action, conn),
            WorkItem::Repl { msg, conn } => self.handle_repl(msg, &conn),
            WorkItem::ReplEof { conn } => {
                let current = self
                    .repl_conn
                    .as_ref()
                    .is_some_and(|rc| Arc::ptr_eq(rc, &conn));
                if current {
                    self.repl_conn = None;
                    // Keep the loss-detection clock running: a dead
                    // primary's EOF is when auto-promotion starts
                    // counting, not when it stops.
                    self.last_heard = Some(Instant::now());
                    if self.promoting.is_some() {
                        self.complete_promotion();
                    }
                }
                Ok(())
            }
        }
    }

    fn handle_submit(
        &mut self,
        msg: SubmitRequest,
        conn: &Arc<Mutex<TcpStream>>,
        enqueued: Instant,
    ) -> Result<(), ServeError> {
        if self.role == Role::Standby {
            self.registry.inc(self.ids.not_primary);
            let _ = write_line(
                conn,
                encode_server(&ServerMsg::NotPrimary {
                    epoch: self.epoch.0,
                    id: msg.id,
                }),
            );
            return Ok(());
        }
        if msg.id != self.next_id {
            // A reconnecting client may resubmit a request whose reply it
            // never saw: answer it from the recent-decision ring instead
            // of re-deciding (idempotent resubmit).
            if msg.id < self.next_id {
                if let Some(event) = self.recent.iter().find(|e| e.request == msg.id) {
                    self.registry.inc(self.ids.dedupe_hits);
                    let _ = write_line(conn, encode_server(&ServerMsg::Decision(event.clone())));
                    return Ok(());
                }
            }
            self.reply_error(
                conn,
                format!(
                    "out-of-order id {} (the daemon expects dense ids; next is {})",
                    msg.id, self.next_id
                ),
            );
            return Ok(());
        }
        let request = match self.build_request(&msg) {
            Ok(r) => r,
            Err(text) => {
                self.reply_error(conn, text);
                return Ok(());
            }
        };
        let t0 = Instant::now();
        let decision = self.scheduler.decide(&request);
        self.engine.observe_decide(t0.elapsed().as_secs_f64());
        let event = match self.tap.pop() {
            Some(TraceEvent::Decision(ev)) => ev,
            _ => {
                return Err(ServeError::Config(
                    "scheduler was not constructed with the daemon's DecisionTap sink".to_string(),
                ))
            }
        };
        self.record_event(event.clone());
        self.stats.decided += 1;
        if decision.is_admit() {
            self.stats.admitted += 1;
            self.stats.revenue += request.payment();
        } else {
            self.stats.rejected += 1;
        }
        let reply = encode_server(&ServerMsg::Decision(event.clone()));
        self.recent_push(event);
        self.next_id += 1;
        match self.repl.as_ref().and_then(|link| link.tx.clone()) {
            Some(tx) => {
                // Semi-synchronous replication: the reply travels to the
                // sender thread, which releases it only after the frame
                // reached the standby — in strict mode once the
                // standby's ack covers this sequence (the decision is
                // *applied* over there), in non-strict mode once the
                // frame is written to the standby socket (or, past the
                // availability timeout, unreplicated and counted in
                // `unreplicated_acks`).
                self.seq += 1;
                let frame = ReplMsg::Frame {
                    epoch: self.epoch.0,
                    seq: self.seq,
                    submit: encode_client(&ClientMsg::Submit(msg)),
                    decision: reply.clone(),
                };
                let item = ReplItem {
                    line: encode_repl(&frame),
                    seq: self.seq,
                    is_snapshot: false,
                    reply: Some(PendingReply {
                        conn: Arc::clone(conn),
                        line: reply,
                    }),
                };
                // A closed channel means the sender exited (fenced or
                // shutting down): the reply is deliberately dropped, so
                // nothing unreplicated is ever acked.
                let _ = tx.send(item);
            }
            None => {
                let _ = write_line(conn, reply);
            }
        }
        self.registry
            .observe(self.ids.admission_latency, enqueued.elapsed().as_secs_f64());
        Ok(())
    }

    // Records a decision on the metrics sink and the trace file.
    fn record_event(&mut self, event: DecisionEvent) {
        self.decisions.record(TraceEvent::Decision(event.clone()));
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::Decision(event));
        }
    }

    // Trace-only events (promotion, fencing, catch-up).
    fn record_trace(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    fn recent_push(&mut self, event: DecisionEvent) {
        if self.config.dedupe_window == 0 {
            return;
        }
        while self.recent.len() >= self.config.dedupe_window {
            self.recent.pop_front();
        }
        self.recent.push_back(event);
    }

    fn build_request(&self, msg: &SubmitRequest) -> Result<Request, String> {
        let reliability =
            Reliability::new(msg.reliability).map_err(|e| format!("invalid reliability: {e}"))?;
        Request::new(
            RequestId(msg.id),
            VnfTypeId(msg.vnf),
            reliability,
            msg.arrival,
            msg.duration,
            msg.payment,
            self.horizon,
        )
        .map_err(|e| format!("invalid request: {e}"))
    }

    fn handle_control(
        &mut self,
        action: ControlAction,
        conn: Option<Arc<Mutex<TcpStream>>>,
    ) -> Result<(), ServeError> {
        match action {
            ControlAction::AdvanceSlot => {
                if self.role == Role::Standby {
                    // The slot clock is replicated state: only the
                    // primary advances it, via `repl-advance` frames.
                    if let Some(c) = conn.as_ref() {
                        self.reply_error(
                            c,
                            "standby: the slot clock advances via replication".to_string(),
                        );
                    }
                    return Ok(());
                }
                self.slot += 1;
                self.registry.set_gauge(self.ids.slot, self.slot as f64);
                if let Some(tx) = self.repl.as_ref().and_then(|link| link.tx.clone()) {
                    self.seq += 1;
                    let frame = ReplMsg::Advance {
                        epoch: self.epoch.0,
                        seq: self.seq,
                        slot: self.slot,
                    };
                    let _ = tx.send(ReplItem {
                        line: encode_repl(&frame),
                        seq: self.seq,
                        is_snapshot: false,
                        reply: None,
                    });
                }
                self.ack(conn.as_ref(), action);
            }
            ControlAction::Promote => {
                if self.role == Role::Primary {
                    // Idempotent: promoting a primary is a no-op ack
                    // (the ack carries epoch + role, so the caller can
                    // tell nothing changed).
                    self.ack(conn.as_ref(), action);
                } else if self.promoting.is_some() {
                    if let Some(c) = conn.as_ref() {
                        self.reply_error(c, "promotion already in progress".to_string());
                    }
                } else {
                    self.begin_promotion(conn);
                }
            }
            ControlAction::Stats => self.ack(conn.as_ref(), action),
            ControlAction::Snapshot => match self.write_snapshot() {
                Ok(_) => self.ack(conn.as_ref(), action),
                Err(e) => {
                    if let Some(c) = conn.as_ref() {
                        self.reply_error(c, format!("snapshot failed: {e}"));
                    }
                }
            },
            ControlAction::Shutdown => {
                // Ack comes from finish() after the drain + final
                // snapshot, so the client's ack means state is durable.
                self.pending_shutdown = Some(conn);
            }
        }
        Ok(())
    }

    fn reply_error(&self, conn: &Arc<Mutex<TcpStream>>, text: String) {
        self.registry.inc(self.ids.protocol_errors);
        let _ = write_line(conn, encode_server(&ServerMsg::Error(text)));
    }

    fn ack(&self, conn: Option<&Arc<Mutex<TcpStream>>>, action: ControlAction) {
        if let Some(c) = conn {
            let msg = ServerMsg::Ack(ControlAck {
                action,
                slot: self.slot,
                stats: self.stats,
                epoch: self.epoch.0,
                role: self.role.as_str().to_string(),
            });
            let _ = write_line(c, encode_server(&msg));
        }
    }

    // The full durable/replicable state of this node, as one value:
    // written to disk by `write_snapshot` and shipped over the wire for
    // follower catch-up.
    fn snapshot_value(&self) -> Snapshot {
        Snapshot {
            algorithm: self.scheduler.name().to_string(),
            config: self.config.fingerprint.clone(),
            next_id: self.next_id,
            slot: self.slot,
            stats: self.stats,
            state: self.scheduler.export_state(),
            epoch: self.epoch.0,
            seq: self.seq,
            recent: self
                .recent
                .iter()
                .map(|e| encode_server(&ServerMsg::Decision(e.clone())))
                .collect(),
        }
    }

    fn write_snapshot(&self) -> Result<bool, ServeError> {
        let Some(path) = &self.config.snapshot_path else {
            return Ok(false);
        };
        self.snapshot_value().save(path)?;
        Ok(true)
    }

    // ---- Standby / replication receive path -------------------------

    fn handle_repl(
        &mut self,
        msg: ReplMsg,
        conn: &Arc<Mutex<TcpStream>>,
    ) -> Result<(), ServeError> {
        let frame_epoch = repl_epoch(&msg);
        if self.epoch.check(Epoch(frame_epoch)) == FenceCheck::Stale {
            // A deposed primary is still streaming: refuse, and tell it
            // so it exits (code 7) instead of acking admissions.
            self.registry.inc(self.ids.fenced_peers);
            self.record_trace(TraceEvent::Fenced {
                epoch: self.epoch.0,
                stale_epoch: frame_epoch,
            });
            let _ = write_line(
                conn,
                encode_repl(&ReplMsg::Fenced {
                    epoch: self.epoch.0,
                    stale_epoch: frame_epoch,
                }),
            );
            return Ok(());
        }
        if self.role == Role::Primary {
            // An equal-or-newer-epoch peer streaming at a primary is a
            // topology error (two primaries configured at each other):
            // never apply, answer with a plain error.
            self.registry.inc(self.ids.protocol_errors);
            let _ = write_line(
                conn,
                encode_server(&ServerMsg::Error(
                    "not a standby: replication frames refused".to_string(),
                )),
            );
            return Ok(());
        }
        if frame_epoch > self.epoch.0 {
            self.epoch = self.epoch.merge(Epoch(frame_epoch));
            self.registry.set_gauge(self.ids.epoch, self.epoch.0 as f64);
        }
        self.last_heard = Some(Instant::now());
        match msg {
            ReplMsg::Hello { .. } => {
                self.repl_conn = Some(Arc::clone(conn));
                self.seen_hello = true;
                let _ = write_line(
                    conn,
                    encode_repl(&ReplMsg::State {
                        epoch: self.epoch.0,
                        seq: self.seq,
                    }),
                );
            }
            ReplMsg::Snapshot { epoch, seq, data } => {
                let snap = Snapshot::decode(&data)?;
                snap.validate(self.scheduler.name(), &self.config.fingerprint)?;
                self.scheduler.import_state(&snap.state)?;
                self.stats = snap.stats;
                self.next_id = snap.next_id;
                self.slot = snap.slot;
                self.registry.set_gauge(self.ids.slot, self.slot as f64);
                self.recent = decode_recent(&snap.recent)?;
                self.seq = seq;
                self.registry.inc(self.ids.repl_snapshots);
                self.record_trace(TraceEvent::ReplCatchup { epoch, seq });
                self.repl_ack(conn);
            }
            ReplMsg::Frame {
                seq,
                submit,
                decision,
                ..
            } => {
                if seq <= self.seq {
                    // Duplicate (e.g. covered by the snapshot that just
                    // caught us up): acknowledge, don't re-apply.
                    self.repl_ack(conn);
                } else if seq != self.seq + 1 {
                    self.registry.inc(self.ids.repl_refusals);
                    let _ = write_line(
                        conn,
                        encode_repl(&ReplMsg::Refused {
                            epoch: self.epoch.0,
                            expected: self.seq + 1,
                            got: seq,
                        }),
                    );
                } else {
                    self.apply_frame(&submit, &decision)?;
                    self.seq = seq;
                    self.registry.inc(self.ids.repl_applied);
                    self.repl_ack(conn);
                }
            }
            ReplMsg::Advance { seq, slot, .. } => {
                if seq <= self.seq {
                    self.repl_ack(conn);
                } else if seq != self.seq + 1 {
                    self.registry.inc(self.ids.repl_refusals);
                    let _ = write_line(
                        conn,
                        encode_repl(&ReplMsg::Refused {
                            epoch: self.epoch.0,
                            expected: self.seq + 1,
                            got: seq,
                        }),
                    );
                } else {
                    self.slot = slot;
                    self.registry.set_gauge(self.ids.slot, self.slot as f64);
                    self.seq = seq;
                    self.registry.inc(self.ids.repl_applied);
                    self.repl_ack(conn);
                }
            }
            ReplMsg::Heartbeat { .. } => self.repl_ack(conn),
            // Standby→primary messages have no business arriving on the
            // daemon's ingress; count and ignore.
            ReplMsg::State { .. }
            | ReplMsg::Ack { .. }
            | ReplMsg::Refused { .. }
            | ReplMsg::Fenced { .. } => {
                self.registry.inc(self.ids.protocol_errors);
            }
        }
        Ok(())
    }

    // Re-decides a replicated submit locally and insists the outcome is
    // byte-identical to the primary's. Any divergence is fatal: a
    // follower with different state must not be promoted.
    fn apply_frame(&mut self, submit: &str, decision: &str) -> Result<(), ServeError> {
        let msg = match parse_client(submit)? {
            ClientMsg::Submit(m) => m,
            ClientMsg::Control(_) => {
                return Err(ServeError::Protocol(
                    "replication frame payload is not a submit line".to_string(),
                ))
            }
        };
        if msg.id != self.next_id {
            return Err(ServeError::Protocol(format!(
                "replication divergence: frame carries submit id {} but this follower expects {}",
                msg.id, self.next_id
            )));
        }
        let request = self.build_request(&msg).map_err(|text| {
            ServeError::Protocol(format!(
                "replication divergence: the primary admitted a request this follower rejects: {text}"
            ))
        })?;
        let t0 = Instant::now();
        let d = self.scheduler.decide(&request);
        self.engine.observe_decide(t0.elapsed().as_secs_f64());
        let event = match self.tap.pop() {
            Some(TraceEvent::Decision(ev)) => ev,
            _ => {
                return Err(ServeError::Config(
                    "scheduler was not constructed with the daemon's DecisionTap sink".to_string(),
                ))
            }
        };
        let local = encode_server(&ServerMsg::Decision(event.clone()));
        if local != decision {
            return Err(ServeError::Protocol(format!(
                "replication divergence on request {}: the follower's decision differs from the \
                 primary's\n  primary:  {decision}\n  follower: {local}",
                msg.id
            )));
        }
        self.record_event(event.clone());
        self.stats.decided += 1;
        if d.is_admit() {
            self.stats.admitted += 1;
            self.stats.revenue += request.payment();
        } else {
            self.stats.rejected += 1;
        }
        self.recent_push(event);
        self.next_id += 1;
        Ok(())
    }

    fn repl_ack(&self, conn: &Arc<Mutex<TcpStream>>) {
        let _ = write_line(
            conn,
            encode_repl(&ReplMsg::Ack {
                epoch: self.epoch.0,
                seq: self.seq,
            }),
        );
    }

    // Starts a promotion: the role flips only after the replication
    // connection drains (its ReplEof marker arrives behind every frame
    // it delivered), so no already-received decision is lost.
    fn begin_promotion(&mut self, conn: Option<Arc<Mutex<TcpStream>>>) {
        if self.repl_conn.is_some() {
            self.promoting = Some(conn);
            self.promote_deadline = Some(Instant::now() + PROMOTE_DRAIN_GRACE);
        } else {
            self.promoting = Some(conn);
            self.complete_promotion();
        }
    }

    fn complete_promotion(&mut self) {
        let conn = self.promoting.take().flatten();
        self.promote_deadline = None;
        self.epoch = self.epoch.next();
        self.role = Role::Primary;
        self.registry.set_gauge(self.ids.epoch, self.epoch.0 as f64);
        self.registry.set_gauge(self.ids.is_primary, 1.0);
        self.record_trace(TraceEvent::Promotion {
            epoch: self.epoch.0,
            seq: self.seq,
        });
        self.ack(conn.as_ref(), ControlAction::Promote);
    }

    /// Final snapshot, utilization gauges, trace flush and (if a client
    /// asked for the shutdown) the shutdown ack.
    fn finish(&mut self) -> Result<bool, ServeError> {
        let written = self.write_snapshot()?;
        let ledger = self.scheduler.ledger();
        let slots = ledger.horizon().len();
        let grid = ledger.used_grid();
        for j in 0..ledger.cloudlet_count() {
            let capacity = ledger.capacity(CloudletId(j));
            let used: f64 = grid[j * slots..(j + 1) * slots].iter().sum();
            let mean = if capacity > 0.0 {
                used / (capacity * slots as f64)
            } else {
                0.0
            };
            self.engine.set_utilization(j, mean);
        }
        if let Some(trace) = self.trace.take() {
            trace.finish()?;
        }
        if let Some(conn) = self.pending_shutdown.take().flatten() {
            self.ack(Some(&conn), ControlAction::Shutdown);
        }
        Ok(written)
    }
}
