//! The admission daemon: accept loop, worker pool, and the single decide
//! thread.
//!
//! Threading model (see DESIGN.md §12):
//!
//! ```text
//! accept thread ──► BoundedQueue<TcpStream> ──► worker pool (parse lines)
//!                                                    │ try_push (overload on full)
//!                                                    ▼
//!                                        BoundedQueue<WorkItem> (ingress)
//!                                                    │ pop (FIFO)
//!                                                    ▼
//!                                        decide thread (owns scheduler)
//! ```
//!
//! Only the decide thread — the thread that calls [`serve`] — touches the
//! scheduler, dual prices and ledger, so the hot path is exactly the
//! batch engine's `decide()` with no locking. Workers block on socket
//! reads with a short timeout so every thread observes shutdown promptly.

use std::io::{self, BufRead as _, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use mec_obs::{JsonlSink, MetricsRegistry, MetricsSink, TraceEvent, TraceSink};
use mec_sim::obs::EngineMetrics;
use mec_topology::{CloudletId, Reliability};
use mec_workload::{Horizon, Request, RequestId, VnfTypeId};
use vnfrel::OnlineScheduler;

use crate::error::ServeError;
use crate::metrics::ServeMetricIds;
use crate::pool::{BoundedQueue, PopTimeout};
use crate::protocol::{
    encode_server, parse_client, ClientMsg, ControlAck, ControlAction, OverloadReject, ServeStats,
    ServerMsg, SubmitRequest,
};
use crate::snapshot::Snapshot;
use crate::tap::DecisionTap;

/// How the daemon listens, queues, ticks and persists.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `"127.0.0.1:7070"` (port 0 picks a free
    /// port; the bound address is in the [`ServeReport`]).
    pub addr: String,
    /// Ingress queue bound; submits beyond it get typed overload
    /// rejections.
    pub queue_capacity: usize,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Snapshot file; `None` disables persistence.
    pub snapshot_path: Option<PathBuf>,
    /// Load the snapshot (if the file exists) before serving.
    pub resume: bool,
    /// Advance the virtual slot clock every `tick` of wall time; `None`
    /// advances only on explicit `advance-slot` control messages.
    pub tick: Option<Duration>,
    /// Opaque scenario fingerprint stored in snapshots and validated on
    /// resume.
    pub fingerprint: String,
    /// Tee every decision event to this JSONL trace file.
    pub trace_path: Option<PathBuf>,
    /// Install SIGINT/SIGTERM handlers that trigger drain-then-snapshot
    /// (process-global; leave off in tests).
    pub install_signal_handlers: bool,
}

impl ServeConfig {
    /// A config with conservative defaults on `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        ServeConfig {
            addr: addr.into(),
            queue_capacity: 256,
            workers: 4,
            snapshot_path: None,
            resume: false,
            tick: None,
            fingerprint: String::new(),
            trace_path: None,
            install_signal_handlers: false,
        }
    }
}

/// What a completed (cleanly shut down) daemon reports.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The address actually bound.
    pub local_addr: SocketAddr,
    /// Final counters.
    pub stats: ServeStats,
    /// Final virtual slot.
    pub slot: usize,
    /// Dense id the next submission must carry.
    pub next_id: usize,
    /// Whether a final snapshot was written.
    pub snapshot_written: bool,
}

enum WorkItem {
    Submit {
        msg: SubmitRequest,
        conn: Arc<Mutex<TcpStream>>,
        enqueued: Instant,
    },
    Control {
        action: ControlAction,
        conn: Option<Arc<Mutex<TcpStream>>>,
    },
}

// One write per line: two small writes would trip Nagle + delayed-ACK
// (~40 ms per round trip) on peers without TCP_NODELAY.
fn write_line(conn: &Arc<Mutex<TcpStream>>, mut line: String) -> io::Result<()> {
    line.push('\n');
    let mut s = conn.lock().unwrap();
    s.write_all(line.as_bytes())
}

#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::Release);
    }

    extern "C" {
        // Raw libc `signal(2)`; the handler only touches an atomic, which
        // is async-signal-safe.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub(super) fn requested() -> bool {
        REQUESTED.load(Ordering::Acquire)
    }
}

#[cfg(not(unix))]
mod signal {
    pub(super) fn install() {}
    pub(super) fn requested() -> bool {
        false
    }
}

/// Runs the daemon until a `shutdown` control message or a termination
/// signal, then drains the ingress queue, writes a final snapshot and
/// returns.
///
/// The scheduler must have been constructed with `tap.clone()` as its
/// trace sink — the daemon reads the full decision event (reject reason,
/// placement sites, dual cost) back out of the tap after every
/// `decide()` call. `on_bound` (if given) receives the bound address
/// once the listener is up, which is how tests and the CLI learn the
/// port when binding to port 0.
///
/// # Errors
///
/// [`ServeError`] on bind failure, snapshot problems during
/// resume/persist, or a scheduler without the daemon's tap.
pub fn serve(
    scheduler: &mut dyn OnlineScheduler,
    tap: &DecisionTap,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
    config: &ServeConfig,
    on_bound: Option<mpsc::Sender<SocketAddr>>,
) -> Result<ServeReport, ServeError> {
    let listener = TcpListener::bind(&config.addr).map_err(|source| ServeError::Net {
        action: "bind",
        addr: config.addr.clone(),
        source,
    })?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let mut driver = Driver {
        scheduler,
        tap,
        registry,
        ids,
        engine: EngineMetrics::new(registry, ids.engine.clone()),
        decisions: MetricsSink::new(registry, ids.decisions),
        trace: match &config.trace_path {
            Some(path) => {
                let file = std::fs::File::create(path)?;
                Some(JsonlSink::new(BufWriter::new(file)))
            }
            None => None,
        },
        config,
        horizon: Horizon::new(1),
        stats: ServeStats::default(),
        next_id: 0,
        slot: 0,
        pending_shutdown: None,
    };
    driver.horizon = driver.scheduler.ledger().horizon();

    if config.resume {
        let path = config
            .snapshot_path
            .as_deref()
            .ok_or_else(|| ServeError::Config("resume requires a snapshot path".to_string()))?;
        if path.exists() {
            let snap = Snapshot::load(path)?;
            snap.validate(driver.scheduler.name(), &config.fingerprint)?;
            driver.scheduler.import_state(&snap.state)?;
            driver.stats = snap.stats;
            driver.next_id = snap.next_id;
            driver.slot = snap.slot;
        }
    }
    registry.set_gauge(ids.slot, driver.slot as f64);

    if config.install_signal_handlers {
        signal::install();
    }
    if let Some(tx) = on_bound {
        let _ = tx.send(local_addr);
    }

    let stop = AtomicBool::new(false);
    let conns: BoundedQueue<TcpStream> = BoundedQueue::new(config.workers.max(1) * 2);
    let ingress: BoundedQueue<WorkItem> = BoundedQueue::new(config.queue_capacity);

    std::thread::scope(|scope| {
        scope.spawn(|| accept_loop(&listener, &conns, &stop));
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| worker_loop(&conns, &ingress, &stop, registry, ids));
        }
        if let Some(tick) = config.tick {
            let (ingress, stop) = (&ingress, &stop);
            scope.spawn(move || ticker_loop(tick, ingress, stop));
        }

        let result = driver.run(&ingress, &stop);
        stop.store(true, Ordering::Release);
        conns.close();
        ingress.close();
        result
    })?;

    let snapshot_written = driver.finish()?;
    Ok(ServeReport {
        local_addr,
        stats: driver.stats,
        slot: driver.slot,
        next_id: driver.next_id,
        snapshot_written,
    })
}

fn accept_loop(listener: &TcpListener, conns: &BoundedQueue<TcpStream>, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // push blocks while all workers are busy; Err means the
                // daemon is shutting down and the connection is dropped.
                if conns.push(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn worker_loop(
    conns: &BoundedQueue<TcpStream>,
    ingress: &BoundedQueue<WorkItem>,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) {
    while let Some(stream) = conns.pop() {
        registry.inc(ids.connections);
        let _ = handle_conn(stream, ingress, stop, registry, ids);
        if stop.load(Ordering::Acquire) {
            return;
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn handle_conn(
    stream: TcpStream,
    ingress: &BoundedQueue<WorkItem>,
    stop: &AtomicBool,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut first = true;
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        // On a read timeout any partial line stays in `line` and the next
        // read_line call appends the rest — lines are never torn.
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => continue,
            Err(e) => return Err(e),
        }
        if first && line.starts_with("GET ") {
            return serve_http(&line, reader, &writer, registry);
        }
        first = false;
        handle_line(line.trim(), ingress, &writer, registry, ids);
        line.clear();
    }
}

fn handle_line(
    line: &str,
    ingress: &BoundedQueue<WorkItem>,
    writer: &Arc<Mutex<TcpStream>>,
    registry: &MetricsRegistry,
    ids: &ServeMetricIds,
) {
    if line.is_empty() {
        return;
    }
    match parse_client(line) {
        Ok(ClientMsg::Submit(msg)) => {
            registry.inc(ids.submitted);
            let id = msg.id;
            let item = WorkItem::Submit {
                msg,
                conn: Arc::clone(writer),
                enqueued: Instant::now(),
            };
            if ingress.try_push(item).is_err() {
                registry.inc(ids.overloads);
                let reply = ServerMsg::Overload(OverloadReject {
                    id,
                    queue_depth: ingress.len(),
                    limit: ingress.capacity(),
                });
                let _ = write_line(writer, encode_server(&reply));
            }
            registry.set_gauge(ids.queue_depth, ingress.len() as f64);
        }
        Ok(ClientMsg::Control(action)) => {
            let item = WorkItem::Control {
                action,
                conn: Some(Arc::clone(writer)),
            };
            // Controls must not be dropped by backpressure; block until
            // there is room (Err only when the daemon is already gone).
            if ingress.push(item).is_err() {
                let reply = ServerMsg::Error("daemon is shutting down".to_string());
                let _ = write_line(writer, encode_server(&reply));
            }
        }
        Err(e) => {
            registry.inc(ids.protocol_errors);
            let _ = write_line(writer, encode_server(&ServerMsg::Error(e.to_string())));
        }
    }
}

fn serve_http(
    request_line: &str,
    mut reader: BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
    registry: &MetricsRegistry,
) -> io::Result<()> {
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => break,
            Err(e) => return Err(e),
        }
    }
    let (status, body) = if path == "/metrics" {
        ("200 OK", registry.to_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut w = writer.lock().unwrap();
    w.write_all(response.as_bytes())
}

fn ticker_loop(tick: Duration, ingress: &BoundedQueue<WorkItem>, stop: &AtomicBool) {
    let step = Duration::from_millis(25).min(tick);
    loop {
        let mut waited = Duration::ZERO;
        while waited < tick {
            if stop.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(step);
            waited += step;
        }
        let item = WorkItem::Control {
            action: ControlAction::AdvanceSlot,
            conn: None,
        };
        if ingress.push(item).is_err() {
            return;
        }
    }
}

/// The decide thread's state: the only place scheduler state mutates.
struct Driver<'a> {
    scheduler: &'a mut dyn OnlineScheduler,
    tap: &'a DecisionTap,
    registry: &'a MetricsRegistry,
    ids: &'a ServeMetricIds,
    engine: EngineMetrics<'a>,
    decisions: MetricsSink<'a>,
    trace: Option<JsonlSink<BufWriter<std::fs::File>>>,
    config: &'a ServeConfig,
    horizon: Horizon,
    stats: ServeStats,
    next_id: usize,
    slot: usize,
    pending_shutdown: Option<Option<Arc<Mutex<TcpStream>>>>,
}

impl Driver<'_> {
    fn run(
        &mut self,
        ingress: &BoundedQueue<WorkItem>,
        stop: &AtomicBool,
    ) -> Result<(), ServeError> {
        loop {
            if signal::requested() {
                stop.store(true, Ordering::Release);
            }
            if stop.load(Ordering::Acquire) || self.pending_shutdown.is_some() {
                break;
            }
            match ingress.pop_timeout(Duration::from_millis(50)) {
                PopTimeout::Item(item) => self.handle(item)?,
                PopTimeout::TimedOut => {}
                PopTimeout::Closed => break,
            }
        }
        // Drain: decide everything already queued, in order.
        while let Some(item) = ingress.try_pop() {
            self.handle(item)?;
        }
        Ok(())
    }

    fn handle(&mut self, item: WorkItem) -> Result<(), ServeError> {
        match item {
            WorkItem::Submit {
                msg,
                conn,
                enqueued,
            } => self.handle_submit(msg, &conn, enqueued),
            WorkItem::Control { action, conn } => self.handle_control(action, conn),
        }
    }

    fn handle_submit(
        &mut self,
        msg: SubmitRequest,
        conn: &Arc<Mutex<TcpStream>>,
        enqueued: Instant,
    ) -> Result<(), ServeError> {
        if msg.id != self.next_id {
            self.reply_error(
                conn,
                format!(
                    "out-of-order id {} (the daemon expects dense ids; next is {})",
                    msg.id, self.next_id
                ),
            );
            return Ok(());
        }
        let request = match self.build_request(&msg) {
            Ok(r) => r,
            Err(text) => {
                self.reply_error(conn, text);
                return Ok(());
            }
        };
        let t0 = Instant::now();
        let decision = self.scheduler.decide(&request);
        self.engine.observe_decide(t0.elapsed().as_secs_f64());
        let event = match self.tap.pop() {
            Some(TraceEvent::Decision(ev)) => ev,
            _ => {
                return Err(ServeError::Config(
                    "scheduler was not constructed with the daemon's DecisionTap sink".to_string(),
                ))
            }
        };
        self.decisions.record(TraceEvent::Decision(event.clone()));
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::Decision(event.clone()));
        }
        self.stats.decided += 1;
        if decision.is_admit() {
            self.stats.admitted += 1;
            self.stats.revenue += request.payment();
        } else {
            self.stats.rejected += 1;
        }
        self.next_id += 1;
        let _ = write_line(conn, encode_server(&ServerMsg::Decision(event)));
        self.registry
            .observe(self.ids.admission_latency, enqueued.elapsed().as_secs_f64());
        Ok(())
    }

    fn build_request(&self, msg: &SubmitRequest) -> Result<Request, String> {
        let reliability =
            Reliability::new(msg.reliability).map_err(|e| format!("invalid reliability: {e}"))?;
        Request::new(
            RequestId(msg.id),
            VnfTypeId(msg.vnf),
            reliability,
            msg.arrival,
            msg.duration,
            msg.payment,
            self.horizon,
        )
        .map_err(|e| format!("invalid request: {e}"))
    }

    fn handle_control(
        &mut self,
        action: ControlAction,
        conn: Option<Arc<Mutex<TcpStream>>>,
    ) -> Result<(), ServeError> {
        match action {
            ControlAction::AdvanceSlot => {
                self.slot += 1;
                self.registry.set_gauge(self.ids.slot, self.slot as f64);
                self.ack(conn.as_ref(), action);
            }
            ControlAction::Stats => self.ack(conn.as_ref(), action),
            ControlAction::Snapshot => match self.write_snapshot() {
                Ok(_) => self.ack(conn.as_ref(), action),
                Err(e) => {
                    if let Some(c) = conn.as_ref() {
                        self.reply_error(c, format!("snapshot failed: {e}"));
                    }
                }
            },
            ControlAction::Shutdown => {
                // Ack comes from finish() after the drain + final
                // snapshot, so the client's ack means state is durable.
                self.pending_shutdown = Some(conn);
            }
        }
        Ok(())
    }

    fn reply_error(&self, conn: &Arc<Mutex<TcpStream>>, text: String) {
        self.registry.inc(self.ids.protocol_errors);
        let _ = write_line(conn, encode_server(&ServerMsg::Error(text)));
    }

    fn ack(&self, conn: Option<&Arc<Mutex<TcpStream>>>, action: ControlAction) {
        if let Some(c) = conn {
            let msg = ServerMsg::Ack(ControlAck {
                action,
                slot: self.slot,
                stats: self.stats,
            });
            let _ = write_line(c, encode_server(&msg));
        }
    }

    fn write_snapshot(&self) -> Result<bool, ServeError> {
        let Some(path) = &self.config.snapshot_path else {
            return Ok(false);
        };
        Snapshot {
            algorithm: self.scheduler.name().to_string(),
            config: self.config.fingerprint.clone(),
            next_id: self.next_id,
            slot: self.slot,
            stats: self.stats,
            state: self.scheduler.export_state(),
        }
        .save(path)?;
        Ok(true)
    }

    /// Final snapshot, utilization gauges, trace flush and (if a client
    /// asked for the shutdown) the shutdown ack.
    fn finish(&mut self) -> Result<bool, ServeError> {
        let written = self.write_snapshot()?;
        let ledger = self.scheduler.ledger();
        let slots = ledger.horizon().len();
        let grid = ledger.used_grid();
        for j in 0..ledger.cloudlet_count() {
            let capacity = ledger.capacity(CloudletId(j));
            let used: f64 = grid[j * slots..(j + 1) * slots].iter().sum();
            let mean = if capacity > 0.0 {
                used / (capacity * slots as f64)
            } else {
                0.0
            };
            self.engine.set_utilization(j, mean);
        }
        if let Some(trace) = self.trace.take() {
            trace.finish()?;
        }
        if let Some(conn) = self.pending_shutdown.take().flatten() {
            self.ack(Some(&conn), ControlAction::Shutdown);
        }
        Ok(written)
    }
}
