use std::fmt;
use std::io;
use std::path::PathBuf;

use vnfrel::VnfrelError;

/// Errors surfaced by the serving daemon, snapshot store and load
/// generator.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or connecting the TCP socket failed.
    Net {
        /// What was being attempted (`"bind"`, `"connect"`, …).
        action: &'static str,
        /// The address involved.
        addr: String,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// A socket or file I/O operation failed mid-session.
    Io(io::Error),
    /// A wire message could not be parsed or violated the protocol.
    Protocol(String),
    /// A snapshot file is corrupt or does not match this configuration.
    Snapshot(String),
    /// Reading or writing the snapshot file failed.
    SnapshotIo {
        /// The snapshot path involved.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// The daemon was configured inconsistently (e.g. a scheduler built
    /// without the daemon's decision tap).
    Config(String),
    /// Restoring scheduler state from a snapshot failed.
    State(VnfrelError),
    /// This node was fenced: a peer at a newer epoch exists (a standby
    /// was promoted), so this node must stop acking decisions and exit.
    Fenced {
        /// This node's (stale) epoch.
        epoch: u64,
        /// The newer epoch that fenced it.
        by: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Net {
                action,
                addr,
                source,
            } => write!(f, "cannot {action} {addr}: {source}"),
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::SnapshotIo { path, source } => {
                write!(f, "snapshot i/o error at {}: {source}", path.display())
            }
            ServeError::Config(msg) => write!(f, "serve configuration error: {msg}"),
            ServeError::State(e) => write!(f, "state restore failed: {e}"),
            ServeError::Fenced { epoch, by } => write!(
                f,
                "fenced: this node's epoch {epoch} was superseded by epoch {by}; \
                 a standby was promoted and this node must not ack further decisions"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Net { source, .. } | ServeError::SnapshotIo { source, .. } => Some(source),
            ServeError::Io(e) => Some(e),
            ServeError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<VnfrelError> for ServeError {
    fn from(e: VnfrelError) -> Self {
        ServeError::State(e)
    }
}
