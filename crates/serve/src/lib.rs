//! `mec-serve`: a long-running online admission daemon for the vnfrel
//! schedulers, plus the closed-loop load generator that drives it.
//!
//! The batch engine (`mec-sim`) replays a whole trace in one call; this
//! crate runs the *same* schedulers against live traffic. Clients submit
//! requests over line-delimited JSON on TCP ([`protocol`]); a bounded
//! ingress queue feeds a single decide thread that owns the scheduler,
//! dual prices and capacity ledger ([`daemon`]); decisions stream back
//! with full reject reasons and placement sites. The daemon persists its
//! state crash-consistently ([`snapshot`]) so a killed process resumes
//! and continues the decision stream byte for byte, exposes Prometheus
//! metrics over `GET /metrics`, and drains cleanly on SIGINT/SIGTERM or
//! a `shutdown` control message.
//!
//! Everything is `std`-only: `std::net` sockets, `Mutex`/`Condvar`
//! bounded queues ([`pool`]), scoped threads. See DESIGN.md §12 for the
//! architecture and EXPERIMENTS.md for the throughput methodology.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod daemon;
pub mod epoch;
mod error;
pub mod loadgen;
pub mod pool;
pub mod protocol;
pub mod replica;
pub mod snapshot;
mod tap;

pub mod metrics;

pub use daemon::{serve, Role, ServeConfig, ServeReport};
pub use epoch::{Epoch, FenceCheck};
pub use error::ServeError;
pub use loadgen::{run_loadgen, LatencySummary, LoadgenConfig, LoadgenReport};
pub use metrics::ServeMetricIds;
pub use protocol::{
    encode_client, encode_server, parse_client, parse_server, ClientMsg, ControlAck, ControlAction,
    OverloadReject, ServeStats, ServerMsg, SubmitRequest, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
pub use replica::{encode_repl, parse_repl, ReplMsg};
pub use snapshot::{Snapshot, SNAPSHOT_VERSION};
pub use tap::DecisionTap;
