//! Property-based tests for the correlated-failure machinery.
//!
//! * Overlapping and back-to-back domain outages must never
//!   double-release capacity: the runtime auditor's ledger-balance and
//!   non-negativity invariants stay clean for every sampled trace.
//! * SchemeMatching recovery replays are deterministic regardless of the
//!   thread count used to fan the experiment out.

use mec_sim::{
    parallel, CascadeConfig, DegradationConfig, FailureConfig, FailureProcess, RecoveryPolicy,
    Simulation,
};
use mec_topology::{CloudletId, FailureDomainSet, NetworkBuilder, Reliability};
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::onsite::OnsiteGreedy;
use vnfrel::{OnlineScheduler, ProblemInstance};

const HORIZON: usize = 16;

/// A 4-cloudlet chain with two overlapping failure domains sharing
/// cloudlets 1 and 2 (an SRLG-style layout), plus a sampled workload.
fn scenario(seed: u64, mttf: f64, mttr: f64) -> (ProblemInstance, Vec<Request>, FailureProcess) {
    let mut b = NetworkBuilder::new();
    let mut prev = None;
    for i in 0..4 {
        let ap = b.add_ap(format!("ap{i}"));
        if let Some(p) = prev {
            b.add_link(p, ap, 1.0).unwrap();
        }
        prev = Some(ap);
        b.add_cloudlet(ap, 12, Reliability::new(0.999 - 1e-4 * i as f64).unwrap())
            .unwrap();
    }
    let inst = ProblemInstance::new(
        b.build().unwrap(),
        VnfCatalog::standard(),
        Horizon::new(HORIZON),
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let requests = RequestGenerator::new(inst.horizon())
        .generate(40, inst.catalog(), &mut rng)
        .unwrap();
    let groups = vec![
        vec![CloudletId(0), CloudletId(1), CloudletId(2)],
        vec![CloudletId(1), CloudletId(2), CloudletId(3)],
    ];
    let domains = FailureDomainSet::from_groups(inst.network(), &groups, mttf, mttr).unwrap();
    let cascade = CascadeConfig {
        utilization_threshold: 0.5,
        hazard: 0.5,
        outage_slots: 2,
    };
    let mut frng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(0x5eed));
    let trace = FailureProcess::generate_with_domains(
        inst.network(),
        &FailureConfig {
            cloudlet_mttf: 8.0,
            cloudlet_mttr: 2.0,
            instance_kill_rate: 0.05,
        },
        &domains,
        Some(cascade),
        inst.horizon(),
        &mut frng,
    )
    .unwrap();
    (inst, requests, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Overlapping domains crash and repair in arbitrary interleavings
    /// (including back-to-back outages of domains sharing members);
    /// capacity must never be released twice: the run succeeds and the
    /// auditor reports zero ledger violations.
    #[test]
    fn overlapping_domain_outages_never_double_release(
        seed in 0u64..300,
        mttf in 2.0f64..6.0,
        mttr in 1.0f64..3.0,
    ) {
        let (inst, requests, trace) = scenario(seed, mttf, mttr);
        let sim = Simulation::new(&inst, &requests).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim
            .run_degraded(
                &mut g,
                &trace,
                RecoveryPolicy::SchemeMatching,
                &DegradationConfig::default(),
            )
            .unwrap();
        let audit = report.audit.as_ref().expect("auditing on by default");
        prop_assert!(audit.is_clean(), "audit violations: {audit}");
        prop_assert_eq!(audit.slots_checked, HORIZON);
        // The scheduler's own books come back non-negative everywhere.
        for j in 0..4 {
            for t in 0..HORIZON {
                prop_assert!(g.ledger().used(CloudletId(j), t) >= -1e-9);
            }
        }
        // SLA accounting stays coherent under arbitrary overlap.
        for rec in &report.sla.records {
            prop_assert!(rec.recoveries <= rec.recovery_attempts);
            prop_assert!(rec.refund() <= rec.payment + 1e-9);
        }
    }

    /// The same seeded replay fanned out with `parallel_map` returns
    /// bit-identical reports for every thread count, and matches the
    /// inline run: SchemeMatching recovery is schedule- and
    /// thread-independent.
    #[test]
    fn scheme_matching_recovery_is_thread_count_independent(seed in 0u64..150) {
        let (inst, requests, trace) = scenario(seed, 4.0, 2.0);
        let sim = Simulation::new(&inst, &requests).unwrap();
        let run = || {
            let mut g = OnsiteGreedy::new(&inst);
            sim.run_degraded(
                &mut g,
                &trace,
                RecoveryPolicy::SchemeMatching,
                &DegradationConfig::default(),
            )
            .unwrap()
        };
        let baseline = run();
        let replicas: Vec<usize> = (0..6).collect();
        for threads in [1usize, 2, 4, 7] {
            let reports = parallel::parallel_map(&replicas, threads, |_| run());
            for r in &reports {
                prop_assert_eq!(r, &baseline, "divergence at threads={}", threads);
            }
        }
    }
}
