//! Dynamic fault injection: a seeded, schedule-independent stream of
//! per-slot outage events.
//!
//! Unlike [`crate::failure`], which samples *static* up/down states to
//! validate admission-time guarantees, this module generates failures
//! that unfold *during* a run, forcing the driver to react: cloudlets
//! crash and are repaired following a discrete-time MTTF/MTTR Markov
//! chain, and individual VNF instances die at a per-slot hazard rate.
//!
//! The stream is generated from the topology and a seed only — it never
//! looks at a schedule — so the *same* events can be replayed against
//! different schedulers, schemes, and recovery policies, which is what
//! makes policy comparisons on "the same outage trace" meaningful.

use mec_topology::Network;
use mec_workload::{Horizon, TimeSlot};
use rand::Rng;

use crate::SimError;

/// Parameters of the failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// Mean time to failure of a cloudlet, in slots. Each up cloudlet
    /// crashes in a slot with probability `1/cloudlet_mttf`.
    pub cloudlet_mttf: f64,
    /// Mean time to repair, in slots. Each down cloudlet comes back in a
    /// slot with probability `1/cloudlet_mttr`.
    pub cloudlet_mttr: f64,
    /// Per-slot probability that some single VNF instance on an up
    /// cloudlet dies (software crash, not a cloudlet outage).
    pub instance_kill_rate: f64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            cloudlet_mttf: 50.0,
            cloudlet_mttr: 3.0,
            instance_kill_rate: 0.05,
        }
    }
}

impl FailureConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when a mean time is below one slot
    /// or the kill rate is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.cloudlet_mttf.is_finite() || self.cloudlet_mttf < 1.0 {
            return Err(SimError::Mismatch("cloudlet MTTF must be ≥ 1 slot"));
        }
        if !self.cloudlet_mttr.is_finite() || self.cloudlet_mttr < 1.0 {
            return Err(SimError::Mismatch("cloudlet MTTR must be ≥ 1 slot"));
        }
        if !self.instance_kill_rate.is_finite() || !(0.0..=1.0).contains(&self.instance_kill_rate) {
            return Err(SimError::Mismatch("instance kill rate must be in [0, 1]"));
        }
        Ok(())
    }

    fn p_fail(&self) -> f64 {
        (1.0 / self.cloudlet_mttf).clamp(0.0, 1.0)
    }

    fn p_repair(&self) -> f64 {
        (1.0 / self.cloudlet_mttr).clamp(0.0, 1.0)
    }
}

/// One outage event, pinned to a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureEvent {
    /// A cloudlet crashes: every VNF instance hosted there dies and its
    /// remaining capacity commitments are void.
    CloudletDown {
        /// The slot the crash takes effect.
        slot: TimeSlot,
        /// Index of the crashed cloudlet.
        cloudlet: usize,
    },
    /// A crashed cloudlet finishes repair and accepts placements again
    /// (instances killed by the crash do **not** come back).
    CloudletUp {
        /// The slot the repair completes.
        slot: TimeSlot,
        /// Index of the repaired cloudlet.
        cloudlet: usize,
    },
    /// A single VNF instance on an (up) cloudlet dies.
    ///
    /// The event is generated without looking at any schedule, so it
    /// cannot name a victim instance directly; instead it carries a
    /// uniform `selector` that the driver resolves against the instances
    /// actually hosted there at application time (`selector % live`).
    /// Replays with different schedules stay comparable: same slots, same
    /// cloudlets, same selectors.
    InstanceKill {
        /// The slot the instance dies.
        slot: TimeSlot,
        /// Index of the hosting cloudlet.
        cloudlet: usize,
        /// Uniform draw resolved against live instances at apply time.
        selector: u64,
    },
}

impl FailureEvent {
    /// The slot this event takes effect.
    pub fn slot(&self) -> TimeSlot {
        match *self {
            FailureEvent::CloudletDown { slot, .. }
            | FailureEvent::CloudletUp { slot, .. }
            | FailureEvent::InstanceKill { slot, .. } => slot,
        }
    }

    /// The cloudlet this event touches.
    pub fn cloudlet(&self) -> usize {
        match *self {
            FailureEvent::CloudletDown { cloudlet, .. }
            | FailureEvent::CloudletUp { cloudlet, .. }
            | FailureEvent::InstanceKill { cloudlet, .. } => cloudlet,
        }
    }
}

/// A fully materialized, deterministic event stream over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProcess {
    by_slot: Vec<Vec<FailureEvent>>,
    config: FailureConfig,
}

impl FailureProcess {
    /// Samples the event stream for `network` over `horizon`.
    ///
    /// All cloudlets start up. Per slot, in cloudlet-id order: an up
    /// cloudlet crashes with probability `1/MTTF`; a down cloudlet is
    /// repaired with probability `1/MTTR`; a cloudlet that is up after
    /// its transition additionally draws an instance kill with
    /// probability `instance_kill_rate`. The draw order is fixed, so a
    /// given `(network, config, rng seed)` always yields the identical
    /// stream — independent of any schedule it is later applied to.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid config parameters.
    pub fn generate<R: Rng + ?Sized>(
        network: &Network,
        config: &FailureConfig,
        horizon: Horizon,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let m = network.cloudlets().count();
        let p_fail = config.p_fail();
        let p_repair = config.p_repair();
        let mut up = vec![true; m];
        let mut by_slot: Vec<Vec<FailureEvent>> = vec![Vec::new(); horizon.len()];
        for (t, events) in by_slot.iter_mut().enumerate() {
            for (j, state) in up.iter_mut().enumerate() {
                if *state {
                    if rng.gen_bool(p_fail) {
                        *state = false;
                        events.push(FailureEvent::CloudletDown {
                            slot: t,
                            cloudlet: j,
                        });
                    }
                } else if rng.gen_bool(p_repair) {
                    *state = true;
                    events.push(FailureEvent::CloudletUp {
                        slot: t,
                        cloudlet: j,
                    });
                }
                if *state && rng.gen_bool(config.instance_kill_rate) {
                    events.push(FailureEvent::InstanceKill {
                        slot: t,
                        cloudlet: j,
                        selector: rng.gen::<u64>(),
                    });
                }
            }
        }
        Ok(FailureProcess {
            by_slot,
            config: *config,
        })
    }

    /// Builds a process from an explicit event list — a recorded trace
    /// or a handcrafted scenario. Events are bucketed by slot; relative
    /// order within a slot is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid config parameters or
    /// an event pinned past the horizon.
    pub fn from_events<I>(
        horizon: Horizon,
        events: I,
        config: FailureConfig,
    ) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = FailureEvent>,
    {
        config.validate()?;
        let mut by_slot: Vec<Vec<FailureEvent>> = vec![Vec::new(); horizon.len()];
        for e in events {
            let Some(bucket) = by_slot.get_mut(e.slot()) else {
                return Err(SimError::Mismatch("failure event pinned past the horizon"));
            };
            bucket.push(e);
        }
        Ok(FailureProcess { by_slot, config })
    }

    /// Events taking effect in `slot` (empty past the horizon).
    pub fn events_at(&self, slot: TimeSlot) -> &[FailureEvent] {
        self.by_slot.get(slot).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of slots covered.
    pub fn horizon_len(&self) -> usize {
        self.by_slot.len()
    }

    /// Total number of events over the horizon.
    pub fn total_events(&self) -> usize {
        self.by_slot.iter().map(Vec::len).sum()
    }

    /// The config the stream was generated from.
    pub fn config(&self) -> &FailureConfig {
        &self.config
    }

    /// All events in slot order, flattened — handy for digests in
    /// determinism tests.
    pub fn iter(&self) -> impl Iterator<Item = &FailureEvent> + '_ {
        self.by_slot.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn network(cloudlets: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for i in 0..cloudlets {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 20, Reliability::new(0.99).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn same_seed_same_stream() {
        let net = network(4);
        let cfg = FailureConfig::default();
        let h = Horizon::new(40);
        let a = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        let b = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let c = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        assert!(a != c || a.total_events() == 0);
    }

    #[test]
    fn down_and_up_alternate_per_cloudlet() {
        let net = network(3);
        let cfg = FailureConfig {
            cloudlet_mttf: 4.0,
            cloudlet_mttr: 2.0,
            instance_kill_rate: 0.0,
        };
        let p = FailureProcess::generate(
            &net,
            &cfg,
            Horizon::new(200),
            &mut ChaCha8Rng::seed_from_u64(1),
        )
        .unwrap();
        // Per cloudlet, the Down/Up subsequence must strictly alternate
        // starting with Down.
        for j in 0..3 {
            let mut expect_down = true;
            for e in p.iter().filter(|e| e.cloudlet() == j) {
                match e {
                    FailureEvent::CloudletDown { .. } => {
                        assert!(expect_down, "two Downs without an Up at cloudlet {j}");
                        expect_down = false;
                    }
                    FailureEvent::CloudletUp { .. } => {
                        assert!(!expect_down, "Up without a preceding Down at cloudlet {j}");
                        expect_down = true;
                    }
                    FailureEvent::InstanceKill { .. } => unreachable!("kill rate is 0"),
                }
            }
        }
        assert!(p.total_events() > 0, "MTTF 4 over 200 slots must crash");
    }

    #[test]
    fn kills_only_on_up_cloudlets() {
        let net = network(2);
        let cfg = FailureConfig {
            cloudlet_mttf: 3.0,
            cloudlet_mttr: 5.0,
            instance_kill_rate: 0.5,
        };
        let p = FailureProcess::generate(
            &net,
            &cfg,
            Horizon::new(100),
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        // Track state while replaying: a kill may only appear while the
        // cloudlet is up (after this slot's transition).
        let mut up = [true; 2];
        for t in 0..p.horizon_len() {
            for e in p.events_at(t) {
                match e {
                    FailureEvent::CloudletDown { cloudlet, .. } => up[*cloudlet] = false,
                    FailureEvent::CloudletUp { cloudlet, .. } => up[*cloudlet] = true,
                    FailureEvent::InstanceKill { cloudlet, .. } => {
                        assert!(up[*cloudlet], "kill on a down cloudlet at slot {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let net = network(1);
        let h = Horizon::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for cfg in [
            FailureConfig {
                cloudlet_mttf: 0.5,
                ..FailureConfig::default()
            },
            FailureConfig {
                cloudlet_mttr: 0.0,
                ..FailureConfig::default()
            },
            FailureConfig {
                instance_kill_rate: 1.5,
                ..FailureConfig::default()
            },
            FailureConfig {
                instance_kill_rate: f64::NAN,
                ..FailureConfig::default()
            },
        ] {
            assert!(FailureProcess::generate(&net, &cfg, h, &mut rng).is_err());
        }
    }

    #[test]
    fn events_past_horizon_are_empty() {
        let net = network(1);
        let p = FailureProcess::generate(
            &net,
            &FailureConfig::default(),
            Horizon::new(5),
            &mut ChaCha8Rng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(p.horizon_len(), 5);
        assert!(p.events_at(99).is_empty());
        assert!((p.config().cloudlet_mttf - 50.0).abs() < 1e-12);
    }
}
