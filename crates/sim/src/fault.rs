//! Dynamic fault injection: a seeded, schedule-independent stream of
//! per-slot outage events.
//!
//! Unlike [`crate::failure`], which samples *static* up/down states to
//! validate admission-time guarantees, this module generates failures
//! that unfold *during* a run, forcing the driver to react: cloudlets
//! crash and are repaired following a discrete-time MTTF/MTTR Markov
//! chain, and individual VNF instances die at a per-slot hazard rate.
//!
//! The stream is generated from the topology and a seed only — it never
//! looks at a schedule — so the *same* events can be replayed against
//! different schedulers, schemes, and recovery policies, which is what
//! makes policy comparisons on "the same outage trace" meaningful.

use mec_topology::{FailureDomainSet, Network};
use mec_workload::{Horizon, TimeSlot};
use rand::Rng;

use crate::SimError;

/// Parameters of the cascade overlay: when a failure domain dies, each
/// surviving cloudlet whose post-outage utilization exceeds
/// `utilization_threshold` suffers a secondary ("cascading") outage with
/// probability `hazard`, lasting `outage_slots` slots.
///
/// The uniform draws deciding whether a cascade fires are sampled at
/// generation time — one per `(slot, cloudlet)`, schedule-independent —
/// so replays against different schedulers compare identical randomness;
/// only *whether* a draw fires depends on the replayed utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Utilization fraction above which a surviving cloudlet is at risk.
    pub utilization_threshold: f64,
    /// Per-trigger probability that an at-risk cloudlet cascades.
    pub hazard: f64,
    /// Slots a cascading outage lasts before the cloudlet returns.
    pub outage_slots: usize,
}

impl Default for CascadeConfig {
    fn default() -> Self {
        CascadeConfig {
            utilization_threshold: 0.85,
            hazard: 0.3,
            outage_slots: 2,
        }
    }
}

impl CascadeConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when the threshold or hazard leaves
    /// `[0, 1]` or the outage duration is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.utilization_threshold.is_finite()
            || !(0.0..=1.0).contains(&self.utilization_threshold)
        {
            return Err(SimError::Mismatch(
                "cascade utilization threshold must be in [0, 1]",
            ));
        }
        if !self.hazard.is_finite() || !(0.0..=1.0).contains(&self.hazard) {
            return Err(SimError::Mismatch("cascade hazard must be in [0, 1]"));
        }
        if self.outage_slots == 0 {
            return Err(SimError::Mismatch(
                "cascade outage must last at least one slot",
            ));
        }
        Ok(())
    }
}

/// A domain-level outage transition, pinned to a slot.
///
/// Domain events are carried *alongside* the per-cloudlet
/// [`FailureEvent`] stream: when a domain crashes, the process also
/// emits net [`FailureEvent::CloudletDown`] transitions for every member
/// that was up, so replay drivers that only understand cloudlet events
/// stay correct; the domain markers add the grouping for tracing and
/// degraded-mode tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainEvent {
    /// The whole domain crashes: every member cloudlet goes down
    /// atomically in this slot.
    Down {
        /// The slot the outage takes effect.
        slot: TimeSlot,
        /// Index of the domain (into the generating
        /// [`FailureDomainSet`]).
        domain: usize,
    },
    /// The domain finishes repair; members come back unless still held
    /// down by the independent process or another domain.
    Up {
        /// The slot the repair completes.
        slot: TimeSlot,
        /// Index of the repaired domain.
        domain: usize,
    },
}

impl DomainEvent {
    /// The slot this event takes effect.
    pub fn slot(&self) -> TimeSlot {
        match *self {
            DomainEvent::Down { slot, .. } | DomainEvent::Up { slot, .. } => slot,
        }
    }

    /// The domain this event touches.
    pub fn domain(&self) -> usize {
        match *self {
            DomainEvent::Down { domain, .. } | DomainEvent::Up { domain, .. } => domain,
        }
    }
}

/// Parameters of the failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureConfig {
    /// Mean time to failure of a cloudlet, in slots. Each up cloudlet
    /// crashes in a slot with probability `1/cloudlet_mttf`.
    pub cloudlet_mttf: f64,
    /// Mean time to repair, in slots. Each down cloudlet comes back in a
    /// slot with probability `1/cloudlet_mttr`.
    pub cloudlet_mttr: f64,
    /// Per-slot probability that some single VNF instance on an up
    /// cloudlet dies (software crash, not a cloudlet outage).
    pub instance_kill_rate: f64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            cloudlet_mttf: 50.0,
            cloudlet_mttr: 3.0,
            instance_kill_rate: 0.05,
        }
    }
}

impl FailureConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when a mean time is below one slot
    /// or the kill rate is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.cloudlet_mttf.is_finite() || self.cloudlet_mttf < 1.0 {
            return Err(SimError::Mismatch("cloudlet MTTF must be ≥ 1 slot"));
        }
        if !self.cloudlet_mttr.is_finite() || self.cloudlet_mttr < 1.0 {
            return Err(SimError::Mismatch("cloudlet MTTR must be ≥ 1 slot"));
        }
        if !self.instance_kill_rate.is_finite() || !(0.0..=1.0).contains(&self.instance_kill_rate) {
            return Err(SimError::Mismatch("instance kill rate must be in [0, 1]"));
        }
        Ok(())
    }

    fn p_fail(&self) -> f64 {
        (1.0 / self.cloudlet_mttf).clamp(0.0, 1.0)
    }

    fn p_repair(&self) -> f64 {
        (1.0 / self.cloudlet_mttr).clamp(0.0, 1.0)
    }
}

/// One outage event, pinned to a slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureEvent {
    /// A cloudlet crashes: every VNF instance hosted there dies and its
    /// remaining capacity commitments are void.
    CloudletDown {
        /// The slot the crash takes effect.
        slot: TimeSlot,
        /// Index of the crashed cloudlet.
        cloudlet: usize,
    },
    /// A crashed cloudlet finishes repair and accepts placements again
    /// (instances killed by the crash do **not** come back).
    CloudletUp {
        /// The slot the repair completes.
        slot: TimeSlot,
        /// Index of the repaired cloudlet.
        cloudlet: usize,
    },
    /// A single VNF instance on an (up) cloudlet dies.
    ///
    /// The event is generated without looking at any schedule, so it
    /// cannot name a victim instance directly; instead it carries a
    /// uniform `selector` that the driver resolves against the instances
    /// actually hosted there at application time (`selector % live`).
    /// Replays with different schedules stay comparable: same slots, same
    /// cloudlets, same selectors.
    InstanceKill {
        /// The slot the instance dies.
        slot: TimeSlot,
        /// Index of the hosting cloudlet.
        cloudlet: usize,
        /// Uniform draw resolved against live instances at apply time.
        selector: u64,
    },
}

impl FailureEvent {
    /// The slot this event takes effect.
    pub fn slot(&self) -> TimeSlot {
        match *self {
            FailureEvent::CloudletDown { slot, .. }
            | FailureEvent::CloudletUp { slot, .. }
            | FailureEvent::InstanceKill { slot, .. } => slot,
        }
    }

    /// The cloudlet this event touches.
    pub fn cloudlet(&self) -> usize {
        match *self {
            FailureEvent::CloudletDown { cloudlet, .. }
            | FailureEvent::CloudletUp { cloudlet, .. }
            | FailureEvent::InstanceKill { cloudlet, .. } => cloudlet,
        }
    }
}

/// A fully materialized, deterministic event stream over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureProcess {
    by_slot: Vec<Vec<FailureEvent>>,
    config: FailureConfig,
    /// Domain-level transitions per slot; empty when the stream was
    /// generated without domains.
    domains_by_slot: Vec<Vec<DomainEvent>>,
    /// Member cloudlet indices per domain id.
    domain_members: Vec<Vec<usize>>,
    /// Cascade overlay parameters, when enabled.
    cascade: Option<CascadeConfig>,
    /// Pre-drawn cascade uniforms, row-major `slot * m + cloudlet`;
    /// empty when cascades are disabled.
    cascade_draws: Vec<f64>,
    /// Cloudlet count the cascade draws were generated for.
    cascade_width: usize,
}

impl FailureProcess {
    /// Samples the event stream for `network` over `horizon`.
    ///
    /// All cloudlets start up. Per slot, in cloudlet-id order: an up
    /// cloudlet crashes with probability `1/MTTF`; a down cloudlet is
    /// repaired with probability `1/MTTR`; a cloudlet that is up after
    /// its transition additionally draws an instance kill with
    /// probability `instance_kill_rate`. The draw order is fixed, so a
    /// given `(network, config, rng seed)` always yields the identical
    /// stream — independent of any schedule it is later applied to.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid config parameters.
    pub fn generate<R: Rng + ?Sized>(
        network: &Network,
        config: &FailureConfig,
        horizon: Horizon,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        config.validate()?;
        let m = network.cloudlets().count();
        let p_fail = config.p_fail();
        let p_repair = config.p_repair();
        let mut up = vec![true; m];
        let mut by_slot: Vec<Vec<FailureEvent>> = vec![Vec::new(); horizon.len()];
        for (t, events) in by_slot.iter_mut().enumerate() {
            for (j, state) in up.iter_mut().enumerate() {
                if *state {
                    if rng.gen_bool(p_fail) {
                        *state = false;
                        events.push(FailureEvent::CloudletDown {
                            slot: t,
                            cloudlet: j,
                        });
                    }
                } else if rng.gen_bool(p_repair) {
                    *state = true;
                    events.push(FailureEvent::CloudletUp {
                        slot: t,
                        cloudlet: j,
                    });
                }
                if *state && rng.gen_bool(config.instance_kill_rate) {
                    events.push(FailureEvent::InstanceKill {
                        slot: t,
                        cloudlet: j,
                        selector: rng.gen::<u64>(),
                    });
                }
            }
        }
        Ok(FailureProcess {
            by_slot,
            config: *config,
            domains_by_slot: vec![Vec::new(); horizon.len()],
            domain_members: Vec::new(),
            cascade: None,
            cascade_draws: Vec::new(),
            cascade_width: 0,
        })
    }

    /// Samples a stream with *correlated* domain outages (and optionally
    /// a cascade overlay) on top of the independent per-cloudlet process.
    ///
    /// The draw order per slot is fixed: first every cloudlet in id
    /// order (state transition, then kill draw — identical to
    /// [`FailureProcess::generate`]), then every domain in id order (an
    /// up domain crashes with probability `1/mttf(d)`, a down one
    /// repairs with probability `1/mttr(d)`), then — when `cascade` is
    /// set — one uniform per cloudlet in id order, stored for the replay
    /// driver. A cloudlet is *effectively* down while its independent
    /// state is down **or** any containing domain is down; the emitted
    /// [`FailureEvent::CloudletDown`]/[`FailureEvent::CloudletUp`] events
    /// are the net effective transitions, so per-cloudlet replay drivers
    /// need no domain awareness. Instance kills are suppressed on
    /// effectively-down cloudlets.
    ///
    /// Like [`FailureProcess::generate`], the stream depends only on
    /// `(network, configs, domains, seed)` — never on a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid config parameters or a
    /// domain member outside the network.
    pub fn generate_with_domains<R: Rng + ?Sized>(
        network: &Network,
        config: &FailureConfig,
        domains: &FailureDomainSet,
        cascade: Option<CascadeConfig>,
        horizon: Horizon,
        rng: &mut R,
    ) -> Result<Self, SimError> {
        config.validate()?;
        if let Some(c) = &cascade {
            c.validate()?;
        }
        let m = network.cloudlets().count();
        let domain_members: Vec<Vec<usize>> = domains
            .domains()
            .iter()
            .map(|d| d.members().iter().map(|c| c.index()).collect())
            .collect();
        if domain_members.iter().flatten().any(|&j| j >= m) {
            return Err(SimError::Mismatch(
                "failure domain references unknown cloudlet",
            ));
        }
        let p_fail = config.p_fail();
        let p_repair = config.p_repair();
        let mut ind_up = vec![true; m];
        let mut dom_up = vec![true; domain_members.len()];
        let mut eff_up = vec![true; m];
        let mut by_slot: Vec<Vec<FailureEvent>> = vec![Vec::new(); horizon.len()];
        let mut domains_by_slot: Vec<Vec<DomainEvent>> = vec![Vec::new(); horizon.len()];
        let mut cascade_draws: Vec<f64> = Vec::new();
        for t in 0..horizon.len() {
            // 1. Independent per-cloudlet transitions + kill draws, in
            //    the exact order of `generate`. Kills are buffered until
            //    effective states are known.
            let mut kills: Vec<(usize, u64)> = Vec::new();
            for (j, state) in ind_up.iter_mut().enumerate() {
                if *state {
                    if rng.gen_bool(p_fail) {
                        *state = false;
                    }
                } else if rng.gen_bool(p_repair) {
                    *state = true;
                }
                if *state && rng.gen_bool(config.instance_kill_rate) {
                    kills.push((j, rng.gen::<u64>()));
                }
            }
            // 2. Domain transitions, in domain-id order.
            for (d, state) in dom_up.iter_mut().enumerate() {
                let dom = &domains.domains()[d];
                if *state {
                    if rng.gen_bool((1.0 / dom.mttf()).clamp(0.0, 1.0)) {
                        *state = false;
                        domains_by_slot[t].push(DomainEvent::Down { slot: t, domain: d });
                    }
                } else if rng.gen_bool((1.0 / dom.mttr()).clamp(0.0, 1.0)) {
                    *state = true;
                    domains_by_slot[t].push(DomainEvent::Up { slot: t, domain: d });
                }
            }
            // 3. Cascade uniforms — always one per cloudlet so the draw
            //    count never depends on what happened above.
            if cascade.is_some() {
                for _ in 0..m {
                    cascade_draws.push(rng.gen::<f64>());
                }
            }
            // 4. Emit net effective transitions, then surviving kills.
            for j in 0..m {
                let held_down = domain_members
                    .iter()
                    .zip(&dom_up)
                    .any(|(members, &up)| !up && members.contains(&j));
                let now_up = ind_up[j] && !held_down;
                if now_up != eff_up[j] {
                    by_slot[t].push(if now_up {
                        FailureEvent::CloudletUp {
                            slot: t,
                            cloudlet: j,
                        }
                    } else {
                        FailureEvent::CloudletDown {
                            slot: t,
                            cloudlet: j,
                        }
                    });
                    eff_up[j] = now_up;
                }
            }
            for (j, selector) in kills {
                if eff_up[j] {
                    by_slot[t].push(FailureEvent::InstanceKill {
                        slot: t,
                        cloudlet: j,
                        selector,
                    });
                }
            }
        }
        Ok(FailureProcess {
            by_slot,
            config: *config,
            domains_by_slot,
            domain_members,
            cascade,
            cascade_draws,
            cascade_width: if cascade.is_some() { m } else { 0 },
        })
    }
    /// or a handcrafted scenario. Events are bucketed by slot; relative
    /// order within a slot is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid config parameters or
    /// an event pinned past the horizon.
    pub fn from_events<I>(
        horizon: Horizon,
        events: I,
        config: FailureConfig,
    ) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = FailureEvent>,
    {
        config.validate()?;
        let mut by_slot: Vec<Vec<FailureEvent>> = vec![Vec::new(); horizon.len()];
        for e in events {
            let Some(bucket) = by_slot.get_mut(e.slot()) else {
                return Err(SimError::Mismatch("failure event pinned past the horizon"));
            };
            bucket.push(e);
        }
        let slots = by_slot.len();
        Ok(FailureProcess {
            by_slot,
            config,
            domains_by_slot: vec![Vec::new(); slots],
            domain_members: Vec::new(),
            cascade: None,
            cascade_draws: Vec::new(),
            cascade_width: 0,
        })
    }

    /// Adds handcrafted domain-level events (and the member lists they
    /// refer to) to a process built with
    /// [`FailureProcess::from_events`] — for scenario tests that need
    /// domain markers without sampling. Matching net cloudlet events are
    /// **not** synthesized; the caller supplies those explicitly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for an event pinned past the
    /// horizon or referencing a domain outside `members`.
    pub fn with_domain_events<I>(
        mut self,
        members: Vec<Vec<usize>>,
        events: I,
    ) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = DomainEvent>,
    {
        for e in events {
            if e.domain() >= members.len() {
                return Err(SimError::Mismatch("domain event references unknown domain"));
            }
            let Some(bucket) = self.domains_by_slot.get_mut(e.slot()) else {
                return Err(SimError::Mismatch("domain event pinned past the horizon"));
            };
            bucket.push(e);
        }
        self.domain_members = members;
        Ok(self)
    }

    /// Attaches a cascade overlay with handcrafted uniforms to a process
    /// built with [`FailureProcess::from_events`] — for scenario tests
    /// that need deterministic secondary failures. `draws` is row-major
    /// `slot * width + cloudlet`; coordinates past the supplied vector
    /// read back as `1.0` (never below any hazard).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] for invalid cascade parameters or
    /// a zero `width`.
    pub fn with_cascade(
        mut self,
        cascade: CascadeConfig,
        width: usize,
        draws: Vec<f64>,
    ) -> Result<Self, SimError> {
        cascade.validate()?;
        if width == 0 {
            return Err(SimError::Mismatch("cascade width must be positive"));
        }
        self.cascade = Some(cascade);
        self.cascade_width = width;
        self.cascade_draws = draws;
        Ok(self)
    }

    /// Events taking effect in `slot` (empty past the horizon).
    pub fn events_at(&self, slot: TimeSlot) -> &[FailureEvent] {
        self.by_slot.get(slot).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of slots covered.
    pub fn horizon_len(&self) -> usize {
        self.by_slot.len()
    }

    /// Total number of events over the horizon.
    pub fn total_events(&self) -> usize {
        self.by_slot.iter().map(Vec::len).sum()
    }

    /// The config the stream was generated from.
    pub fn config(&self) -> &FailureConfig {
        &self.config
    }

    /// All events in slot order, flattened — handy for digests in
    /// determinism tests.
    pub fn iter(&self) -> impl Iterator<Item = &FailureEvent> + '_ {
        self.by_slot.iter().flatten()
    }

    /// Domain-level transitions taking effect in `slot` (always empty
    /// for streams generated without domains).
    pub fn domain_events_at(&self, slot: TimeSlot) -> &[DomainEvent] {
        self.domains_by_slot
            .get(slot)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of failure domains the stream was generated over.
    pub fn domain_count(&self) -> usize {
        self.domain_members.len()
    }

    /// Member cloudlet indices of domain `d` (empty for unknown ids).
    pub fn domain_members(&self, d: usize) -> &[usize] {
        self.domain_members.get(d).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The cascade overlay parameters, when the stream carries one.
    pub fn cascade(&self) -> Option<&CascadeConfig> {
        self.cascade.as_ref()
    }

    /// The pre-drawn cascade uniform for `(slot, cloudlet)`.
    ///
    /// Returns `1.0` (never below any hazard) when cascades are disabled
    /// or the coordinates are out of range, so replay drivers can probe
    /// unconditionally.
    pub fn cascade_draw(&self, slot: TimeSlot, cloudlet: usize) -> f64 {
        if self.cascade_width == 0 || cloudlet >= self.cascade_width {
            return 1.0;
        }
        self.cascade_draws
            .get(slot * self.cascade_width + cloudlet)
            .copied()
            .unwrap_or(1.0)
    }

    /// Total domain-level events over the horizon.
    pub fn total_domain_events(&self) -> usize {
        self.domains_by_slot.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{CloudletId, NetworkBuilder, Reliability};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn network(cloudlets: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for i in 0..cloudlets {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 20, Reliability::new(0.99).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn same_seed_same_stream() {
        let net = network(4);
        let cfg = FailureConfig::default();
        let h = Horizon::new(40);
        let a = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        let b = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let c = FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        assert!(a != c || a.total_events() == 0);
    }

    #[test]
    fn down_and_up_alternate_per_cloudlet() {
        let net = network(3);
        let cfg = FailureConfig {
            cloudlet_mttf: 4.0,
            cloudlet_mttr: 2.0,
            instance_kill_rate: 0.0,
        };
        let p = FailureProcess::generate(
            &net,
            &cfg,
            Horizon::new(200),
            &mut ChaCha8Rng::seed_from_u64(1),
        )
        .unwrap();
        // Per cloudlet, the Down/Up subsequence must strictly alternate
        // starting with Down.
        for j in 0..3 {
            let mut expect_down = true;
            for e in p.iter().filter(|e| e.cloudlet() == j) {
                match e {
                    FailureEvent::CloudletDown { .. } => {
                        assert!(expect_down, "two Downs without an Up at cloudlet {j}");
                        expect_down = false;
                    }
                    FailureEvent::CloudletUp { .. } => {
                        assert!(!expect_down, "Up without a preceding Down at cloudlet {j}");
                        expect_down = true;
                    }
                    FailureEvent::InstanceKill { .. } => unreachable!("kill rate is 0"),
                }
            }
        }
        assert!(p.total_events() > 0, "MTTF 4 over 200 slots must crash");
    }

    #[test]
    fn kills_only_on_up_cloudlets() {
        let net = network(2);
        let cfg = FailureConfig {
            cloudlet_mttf: 3.0,
            cloudlet_mttr: 5.0,
            instance_kill_rate: 0.5,
        };
        let p = FailureProcess::generate(
            &net,
            &cfg,
            Horizon::new(100),
            &mut ChaCha8Rng::seed_from_u64(9),
        )
        .unwrap();
        // Track state while replaying: a kill may only appear while the
        // cloudlet is up (after this slot's transition).
        let mut up = [true; 2];
        for t in 0..p.horizon_len() {
            for e in p.events_at(t) {
                match e {
                    FailureEvent::CloudletDown { cloudlet, .. } => up[*cloudlet] = false,
                    FailureEvent::CloudletUp { cloudlet, .. } => up[*cloudlet] = true,
                    FailureEvent::InstanceKill { cloudlet, .. } => {
                        assert!(up[*cloudlet], "kill on a down cloudlet at slot {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let net = network(1);
        let h = Horizon::new(4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for cfg in [
            FailureConfig {
                cloudlet_mttf: 0.5,
                ..FailureConfig::default()
            },
            FailureConfig {
                cloudlet_mttr: 0.0,
                ..FailureConfig::default()
            },
            FailureConfig {
                instance_kill_rate: 1.5,
                ..FailureConfig::default()
            },
            FailureConfig {
                instance_kill_rate: f64::NAN,
                ..FailureConfig::default()
            },
        ] {
            assert!(FailureProcess::generate(&net, &cfg, h, &mut rng).is_err());
        }
    }

    #[test]
    fn domain_outages_take_members_down_atomically() {
        let net = network(4);
        let domains = mec_topology::FailureDomainSet::from_groups(
            &net,
            &[vec![CloudletId(0), CloudletId(1)], vec![CloudletId(3)]],
            5.0,
            2.0,
        )
        .unwrap();
        let cfg = FailureConfig {
            cloudlet_mttf: 1e9, // effectively no independent outages
            cloudlet_mttr: 1.0,
            instance_kill_rate: 0.0,
        };
        let p = FailureProcess::generate_with_domains(
            &net,
            &cfg,
            &domains,
            None,
            Horizon::new(120),
            &mut ChaCha8Rng::seed_from_u64(5),
        )
        .unwrap();
        assert!(p.total_domain_events() > 0, "MTTF 5 over 120 slots");
        assert_eq!(p.domain_count(), 2);
        assert_eq!(p.domain_members(0), &[0, 1]);
        // Replay: after each slot, every member of a down domain must be
        // effectively down, and cloudlet 2 (no domain) must stay up.
        let mut up = [true; 4];
        let mut dom_up = [true; 2];
        for t in 0..p.horizon_len() {
            for e in p.events_at(t) {
                match e {
                    FailureEvent::CloudletDown { cloudlet, .. } => up[*cloudlet] = false,
                    FailureEvent::CloudletUp { cloudlet, .. } => up[*cloudlet] = true,
                    FailureEvent::InstanceKill { .. } => unreachable!("kill rate is 0"),
                }
            }
            for e in p.domain_events_at(t) {
                match e {
                    DomainEvent::Down { domain, .. } => dom_up[*domain] = false,
                    DomainEvent::Up { domain, .. } => dom_up[*domain] = true,
                }
            }
            for (d, &du) in dom_up.iter().enumerate() {
                if !du {
                    for &j in p.domain_members(d) {
                        assert!(!up[j], "slot {t}: domain {d} down but member {j} up");
                    }
                }
            }
            assert!(up[2], "slot {t}: domain-free cloudlet went down");
        }
    }

    #[test]
    fn domain_generation_is_seed_deterministic() {
        let net = network(3);
        let domains = mec_topology::FailureDomainSet::zones(&net, 2, 8.0, 2.0).unwrap();
        let cfg = FailureConfig::default();
        let h = Horizon::new(60);
        let cascade = Some(CascadeConfig::default());
        let a = FailureProcess::generate_with_domains(
            &net,
            &cfg,
            &domains,
            cascade,
            h,
            &mut ChaCha8Rng::seed_from_u64(11),
        )
        .unwrap();
        let b = FailureProcess::generate_with_domains(
            &net,
            &cfg,
            &domains,
            cascade,
            h,
            &mut ChaCha8Rng::seed_from_u64(11),
        )
        .unwrap();
        assert_eq!(a, b);
        // Cascade draws cover every (slot, cloudlet) cell and look uniform.
        for t in 0..60 {
            for j in 0..3 {
                let d = a.cascade_draw(t, j);
                assert!((0.0..1.0).contains(&d));
            }
        }
        // Out of range or disabled → 1.0 (never fires).
        assert_eq!(a.cascade_draw(0, 99), 1.0);
        let plain =
            FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(11)).unwrap();
        assert_eq!(plain.cascade_draw(0, 0), 1.0);
        assert!(plain.cascade().is_none());
        assert_eq!(plain.domain_count(), 0);
    }

    #[test]
    fn empty_domain_set_matches_independent_event_multiset() {
        let net = network(3);
        let cfg = FailureConfig {
            cloudlet_mttf: 4.0,
            cloudlet_mttr: 2.0,
            instance_kill_rate: 0.2,
        };
        let h = Horizon::new(80);
        let plain =
            FailureProcess::generate(&net, &cfg, h, &mut ChaCha8Rng::seed_from_u64(21)).unwrap();
        let domained = FailureProcess::generate_with_domains(
            &net,
            &cfg,
            &mec_topology::FailureDomainSet::empty(),
            None,
            h,
            &mut ChaCha8Rng::seed_from_u64(21),
        )
        .unwrap();
        // Same draws, same states — the per-slot event multisets agree
        // (ordering within a slot differs by construction).
        for t in 0..h.len() {
            let mut a: Vec<FailureEvent> = plain.events_at(t).to_vec();
            let mut b: Vec<FailureEvent> = domained.events_at(t).to_vec();
            let key = |e: &FailureEvent| match *e {
                FailureEvent::CloudletDown { cloudlet, .. } => (cloudlet, 0, 0),
                FailureEvent::CloudletUp { cloudlet, .. } => (cloudlet, 1, 0),
                FailureEvent::InstanceKill {
                    cloudlet, selector, ..
                } => (cloudlet, 2, selector),
            };
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(a, b, "slot {t}");
        }
    }

    #[test]
    fn invalid_cascade_and_domain_refs_are_rejected() {
        let net = network(2);
        let h = Horizon::new(4);
        let cfg = FailureConfig::default();
        let domains = mec_topology::FailureDomainSet::empty();
        for cascade in [
            CascadeConfig {
                utilization_threshold: 1.5,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                hazard: -0.1,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                outage_slots: 0,
                ..CascadeConfig::default()
            },
        ] {
            assert!(FailureProcess::generate_with_domains(
                &net,
                &cfg,
                &domains,
                Some(cascade),
                h,
                &mut ChaCha8Rng::seed_from_u64(0),
            )
            .is_err());
        }
        // Domain set built against a *larger* network is rejected here.
        let big = network(5);
        let wide =
            mec_topology::FailureDomainSet::from_groups(&big, &[vec![CloudletId(4)]], 5.0, 2.0)
                .unwrap();
        assert!(FailureProcess::generate_with_domains(
            &net,
            &cfg,
            &wide,
            None,
            h,
            &mut ChaCha8Rng::seed_from_u64(0),
        )
        .is_err());
    }

    #[test]
    fn handcrafted_domain_events_validate() {
        let net = network(2);
        let h = Horizon::new(6);
        let base = FailureProcess::from_events(h, [], FailureConfig::default()).unwrap();
        let p = base
            .clone()
            .with_domain_events(
                vec![vec![0, 1]],
                [
                    DomainEvent::Down { slot: 1, domain: 0 },
                    DomainEvent::Up { slot: 3, domain: 0 },
                ],
            )
            .unwrap();
        assert_eq!(p.domain_events_at(1).len(), 1);
        assert_eq!(p.domain_events_at(1)[0].domain(), 0);
        assert_eq!(p.domain_events_at(3)[0].slot(), 3);
        assert_eq!(p.total_domain_events(), 2);
        assert!(base
            .clone()
            .with_domain_events(vec![], [DomainEvent::Down { slot: 0, domain: 0 }])
            .is_err());
        assert!(base
            .with_domain_events(vec![vec![0]], [DomainEvent::Down { slot: 9, domain: 0 }])
            .is_err());
        let _ = net;
    }

    #[test]
    fn events_past_horizon_are_empty() {
        let net = network(1);
        let p = FailureProcess::generate(
            &net,
            &FailureConfig::default(),
            Horizon::new(5),
            &mut ChaCha8Rng::seed_from_u64(2),
        )
        .unwrap();
        assert_eq!(p.horizon_len(), 5);
        assert!(p.events_at(99).is_empty());
        assert!((p.config().cloudlet_mttf - 50.0).abs() < 1e-12);
    }
}
