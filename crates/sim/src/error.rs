use std::error::Error;
use std::fmt;

use vnfrel::VnfrelError;

/// Errors produced by the simulation engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A scheduling-library error (bad instance, bad request stream, …).
    Vnfrel(VnfrelError),
    /// Inputs disagree with each other (schedule vs requests, …).
    Mismatch(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Vnfrel(e) => write!(f, "scheduling error: {e}"),
            SimError::Mismatch(what) => write!(f, "input mismatch: {what}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Vnfrel(e) => Some(e),
            SimError::Mismatch(_) => None,
        }
    }
}

impl From<VnfrelError> for SimError {
    fn from(e: VnfrelError) -> Self {
        SimError::Vnfrel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::Mismatch("x");
        assert!(e.to_string().contains("mismatch"));
        assert!(e.source().is_none());
        let e = SimError::from(VnfrelError::InvalidInstance("y"));
        assert!(e.source().is_some());
    }
}
