//! Parameter-sweep harness used by the figure-regeneration binaries.
//!
//! A sweep evaluates several algorithms over a sequence of x-values
//! (number of requests, payment ratio `H`, reliability ratio `K`, …),
//! averaging revenue over a few seeded repetitions, and renders the series
//! as an aligned text table — the textual equivalent of the paper's
//! figures.

use std::fmt;

/// One algorithm's value at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Algorithm name (column).
    pub algorithm: String,
    /// Mean revenue (or other metric) across repetitions.
    pub value: f64,
}

/// A full sweep: one row per x-value, one column per algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepTable {
    /// Name of the x-axis (e.g. `"requests"`, `"H"`, `"K"`).
    pub x_label: String,
    /// Metric name (e.g. `"revenue"`).
    pub y_label: String,
    /// Column order (algorithm names).
    pub columns: Vec<String>,
    /// Rows: (x value, one entry per column).
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl SweepTable {
    /// Creates an empty table with the given axes and columns.
    pub fn new(
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        SweepTable {
            x_label: x_label.into(),
            y_label: y_label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column count.
    pub fn push_row(&mut self, x: f64, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity must match columns"
        );
        self.rows.push((x, values));
    }

    /// Value of `column` at row index `row`.
    pub fn value(&self, row: usize, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|n| n == column)?;
        self.rows.get(row).map(|(_, vals)| vals[c])
    }

    /// Ratio `a / b` at the final row — used for "algorithm X outperforms
    /// greedy by N% at the largest size" style claims.
    pub fn final_ratio(&self, a: &str, b: &str) -> Option<f64> {
        let last = self.rows.len().checked_sub(1)?;
        let va = self.value(last, a)?;
        let vb = self.value(last, b)?;
        (vb != 0.0).then(|| va / vb)
    }

    /// Renders a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |", self.x_label));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("| {x} |"));
            for v in vals {
                out.push_str(&format!(" {v:.1} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for SweepTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} vs {}", self.y_label, self.x_label)?;
        write!(f, "{:>10}", self.x_label)?;
        for c in &self.columns {
            write!(f, " {c:>22}")?;
        }
        writeln!(f)?;
        for (x, vals) in &self.rows {
            write!(f, "{x:>10}")?;
            for v in vals {
                write!(f, " {v:>22.2}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Averages `f` over `seeds`, producing one number.
pub fn mean_over_seeds<F>(seeds: &[u64], mut f: F) -> f64
where
    F: FnMut(u64) -> f64,
{
    if seeds.is_empty() {
        return 0.0;
    }
    seeds.iter().map(|&s| f(s)).sum::<f64>() / seeds.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SweepTable {
        let mut t = SweepTable::new("requests", "revenue", vec!["alg1".into(), "greedy".into()]);
        t.push_row(100.0, vec![50.0, 40.0]);
        t.push_row(200.0, vec![90.0, 60.0]);
        t
    }

    #[test]
    fn lookup_and_ratio() {
        let t = table();
        assert_eq!(t.value(0, "alg1"), Some(50.0));
        assert_eq!(t.value(1, "greedy"), Some(60.0));
        assert_eq!(t.value(1, "nope"), None);
        assert!((t.final_ratio("alg1", "greedy").unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn renders_markdown_and_text() {
        let t = table();
        let md = t.to_markdown();
        assert!(md.contains("| requests | alg1 | greedy |"));
        assert!(md.contains("| 100 | 50.0 | 40.0 |"));
        let txt = t.to_string();
        assert!(txt.contains("revenue vs requests"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = table();
        t.push_row(300.0, vec![1.0]);
    }

    #[test]
    fn mean_over_seeds_averages() {
        let m = mean_over_seeds(&[1, 2, 3], |s| s as f64);
        assert!((m - 2.0).abs() < 1e-12);
        assert_eq!(mean_over_seeds(&[], |_| 1.0), 0.0);
    }
}
