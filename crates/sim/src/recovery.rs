//! Online recovery policies: re-placement of requests whose placement
//! was destroyed by dynamic faults.
//!
//! When [`Simulation::run_with_failures`](crate::Simulation::run_with_failures)
//! detects that a request's surviving placement no longer meets its
//! requirement `R_i`, the dead capacity has already been
//! [released](vnfrel::CapacityLedger::release); the request is then
//! handed to a [`RecoveryPolicy`] that may try to re-place it on the
//! surviving cloudlets for the *remaining* slots of its window, charging
//! the scheduler's ledger like a fresh admission.

use mec_topology::{CloudletId, Reliability};
use mec_workload::{Request, TimeSlot};
use vnfrel::reliability::{offsite_ln_coefficient, onsite_instances};
use vnfrel::{CapacityLedger, Placement, ProblemInstance, Scheme};

/// What to do with a request whose placement died mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// No recovery: the request stays down for the rest of its window.
    /// The baseline every other policy is compared against.
    #[default]
    None,
    /// Re-admit with an on-site placement (all replicas in one surviving
    /// cloudlet, Eq. 3 replica count).
    OnSite,
    /// Re-admit with an off-site placement (one instance per cloudlet
    /// across surviving cloudlets, Eq. 10 availability).
    OffSite,
    /// Re-admit using the same scheme the running scheduler uses.
    SchemeMatching,
}

impl RecoveryPolicy {
    /// The backup scheme recovery placements use, `None` when recovery
    /// is disabled.
    pub fn scheme_for(self, scheduler_scheme: Scheme) -> Option<Scheme> {
        match self {
            RecoveryPolicy::None => None,
            RecoveryPolicy::OnSite => Some(Scheme::OnSite),
            RecoveryPolicy::OffSite => Some(Scheme::OffSite),
            RecoveryPolicy::SchemeMatching => Some(scheduler_scheme),
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::None => "none",
            RecoveryPolicy::OnSite => "re-admit-on-site",
            RecoveryPolicy::OffSite => "re-admit-off-site",
            RecoveryPolicy::SchemeMatching => "scheme-matching",
        })
    }
}

/// Attempts a recovery placement for `request` on the cloudlets marked
/// up, covering slots `from_slot..=end`, meeting the full requirement
/// `R_i`. On success the placement is charged to `ledger` and returned.
pub(crate) fn try_replace(
    instance: &ProblemInstance,
    ledger: &mut CapacityLedger,
    request: &Request,
    from_slot: TimeSlot,
    up: &[bool],
    scheme: Scheme,
) -> Option<Placement> {
    let vnf = instance.catalog().get(request.vnf())?;
    let compute = vnf.compute() as f64;
    let window = from_slot..=request.end_slot();
    match scheme {
        Scheme::OnSite => {
            // Cheapest surviving cloudlet (fewest consumed units); ties
            // break toward the lowest id for determinism.
            let mut best: Option<(CloudletId, u32, f64)> = None;
            for cloudlet in instance.network().cloudlets() {
                if !up[cloudlet.id().index()] {
                    continue;
                }
                let Some(n) = onsite_instances(
                    vnf.reliability(),
                    cloudlet.reliability(),
                    request.reliability_requirement(),
                ) else {
                    continue;
                };
                let weight = f64::from(n) * compute;
                if !ledger.fits(cloudlet.id(), window.clone(), weight) {
                    continue;
                }
                if best.is_none_or(|(_, _, w)| weight < w) {
                    best = Some((cloudlet.id(), n, weight));
                }
            }
            let (cid, n, weight) = best?;
            ledger.charge(cid, window, weight);
            Some(Placement::OnSite {
                cloudlet: cid,
                instances: n,
            })
        }
        Scheme::OffSite => {
            // Most reliable surviving cloudlets first, accumulated in
            // log-space until R_i is met (the greedy order Algorithm 2's
            // pricing also prefers); ties break toward the lowest id.
            let mut candidates: Vec<(Reliability, CloudletId)> = instance
                .network()
                .cloudlets()
                .filter(|c| up[c.id().index()])
                .filter(|c| ledger.fits(c.id(), window.clone(), compute))
                .map(|c| (c.reliability(), c.id()))
                .collect();
            candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.index().cmp(&b.1.index())));
            let ln_target = request.reliability_requirement().failure().ln();
            let mut selected = Vec::new();
            let mut ln_sum = 0.0;
            for (rel, cid) in candidates {
                ln_sum += offsite_ln_coefficient(vnf.reliability(), rel);
                selected.push(cid);
                if ln_sum <= ln_target + 1e-12 {
                    break;
                }
            }
            if ln_sum > ln_target + 1e-12 || selected.is_empty() {
                return None;
            }
            for &cid in &selected {
                ledger.charge(cid, window.clone(), compute);
            }
            Some(Placement::OffSite {
                cloudlets: selected,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::NetworkBuilder;
    use mec_workload::{Horizon, RequestId, VnfCatalog, VnfTypeId};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for (i, r) in [0.999, 0.995, 0.99].iter().enumerate() {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 20, Reliability::new(*r).unwrap())
                .unwrap();
        }
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(8)).unwrap()
    }

    fn request() -> Request {
        Request::new(
            RequestId(0),
            VnfTypeId(1),
            Reliability::new(0.9).unwrap(),
            0,
            6,
            5.0,
            Horizon::new(8),
        )
        .unwrap()
    }

    #[test]
    fn policy_scheme_resolution() {
        assert_eq!(RecoveryPolicy::None.scheme_for(Scheme::OnSite), None);
        assert_eq!(
            RecoveryPolicy::OnSite.scheme_for(Scheme::OffSite),
            Some(Scheme::OnSite)
        );
        assert_eq!(
            RecoveryPolicy::OffSite.scheme_for(Scheme::OnSite),
            Some(Scheme::OffSite)
        );
        assert_eq!(
            RecoveryPolicy::SchemeMatching.scheme_for(Scheme::OffSite),
            Some(Scheme::OffSite)
        );
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::None);
        assert_eq!(
            RecoveryPolicy::SchemeMatching.to_string(),
            "scheme-matching"
        );
    }

    #[test]
    fn onsite_replace_skips_down_cloudlets_and_charges() {
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        let r = request();
        // Cloudlet 0 (most reliable, cheapest) is down: placement must
        // land elsewhere.
        let up = [false, true, true];
        let p = try_replace(&inst, &mut ledger, &r, 2, &up, Scheme::OnSite).unwrap();
        let Placement::OnSite { cloudlet, .. } = &p else {
            panic!("expected on-site placement");
        };
        assert_ne!(cloudlet.index(), 0);
        // Only the remaining window (2..=5) was charged.
        assert_eq!(ledger.used(*cloudlet, 0), 0.0);
        assert!(ledger.used(*cloudlet, 2) > 0.0);
        assert!(ledger.used(*cloudlet, 5) > 0.0);
        assert_eq!(ledger.used(*cloudlet, 6), 0.0);
    }

    #[test]
    fn offsite_replace_meets_requirement_on_survivors() {
        use vnfrel::reliability::offsite_meets_requirement;
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        let r = request();
        let up = [true, false, true];
        let p = try_replace(&inst, &mut ledger, &r, 1, &up, Scheme::OffSite).unwrap();
        let Placement::OffSite { cloudlets } = &p else {
            panic!("expected off-site placement");
        };
        assert!(cloudlets.iter().all(|c| c.index() != 1));
        let vnf = inst.catalog().get(r.vnf()).unwrap();
        let rels = cloudlets
            .iter()
            .map(|&c| inst.network().cloudlet(c).unwrap().reliability());
        assert!(offsite_meets_requirement(
            vnf.reliability(),
            rels,
            r.reliability_requirement()
        ));
    }

    #[test]
    fn replace_fails_when_everything_is_down() {
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        let r = request();
        let up = [false, false, false];
        assert!(try_replace(&inst, &mut ledger, &r, 0, &up, Scheme::OnSite).is_none());
        assert!(try_replace(&inst, &mut ledger, &r, 0, &up, Scheme::OffSite).is_none());
        // Failed attempts must not charge anything.
        for j in 0..3 {
            for t in 0..8 {
                assert_eq!(ledger.used(CloudletId(j), t), 0.0);
            }
        }
    }

    #[test]
    fn replace_fails_without_capacity() {
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        // Saturate every cloudlet over the whole horizon.
        for c in inst.network().cloudlets() {
            let cap = ledger.capacity(c.id());
            ledger.charge(c.id(), 0..8, cap);
        }
        let r = request();
        let up = [true, true, true];
        assert!(try_replace(&inst, &mut ledger, &r, 0, &up, Scheme::OnSite).is_none());
        assert!(try_replace(&inst, &mut ledger, &r, 0, &up, Scheme::OffSite).is_none());
    }
}
