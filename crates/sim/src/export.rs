//! Plain-text/CSV export of simulation artifacts, for plotting outside
//! Rust (gnuplot, matplotlib, spreadsheets).
//!
//! Each table has two forms: a streaming `write_*` function that renders
//! straight into any [`io::Write`] and propagates the first IO error
//! (no silently truncated tables on a full disk), and a `*_csv`
//! convenience wrapper returning a `String` for callers that want the
//! whole table in memory. The CLI uses the streaming forms so a failed
//! export surfaces as an error naming the target path instead of a
//! half-written file.

use std::io::{self, Write};

use crate::engine::{FaultRunReport, RunReport};
use crate::experiment::SweepTable;

/// Streams the per-slot timeline as CSV (`slot,arrivals,admitted,active`).
///
/// # Errors
///
/// Returns the first IO error from `out`; the table may be partially
/// written at that point, so callers should treat the target as invalid.
pub fn write_timeline_csv<W: Write>(out: &mut W, report: &RunReport) -> io::Result<()> {
    writeln!(out, "slot,arrivals,admitted,active")?;
    for (t, s) in report.timeline.iter().enumerate() {
        writeln!(out, "{t},{},{},{}", s.arrivals, s.admitted, s.active)?;
    }
    Ok(())
}

/// Renders the per-slot timeline as CSV (`slot,arrivals,admitted,active`).
pub fn timeline_csv(report: &RunReport) -> String {
    into_string(|buf| write_timeline_csv(buf, report))
}

/// Streams a fault-aware run's per-slot timeline as CSV
/// (`slot,arrivals,admitted,active,events,newly_failed,recovered,violated,evicted`).
///
/// # Errors
///
/// Returns the first IO error from `out`.
pub fn write_fault_timeline_csv<W: Write>(out: &mut W, report: &FaultRunReport) -> io::Result<()> {
    writeln!(
        out,
        "slot,arrivals,admitted,active,events,newly_failed,recovered,violated,evicted"
    )?;
    for (t, s) in report.timeline.iter().enumerate() {
        writeln!(
            out,
            "{t},{},{},{},{},{},{},{},{}",
            s.arrivals,
            s.admitted,
            s.active,
            s.events,
            s.newly_failed,
            s.recovered,
            s.violated,
            s.evicted
        )?;
    }
    Ok(())
}

/// Renders a fault-aware run's per-slot timeline as CSV
/// (`slot,arrivals,admitted,active,events,newly_failed,recovered,violated,evicted`).
pub fn fault_timeline_csv(report: &FaultRunReport) -> String {
    into_string(|buf| write_fault_timeline_csv(buf, report))
}

/// Streams the SLA ledger as CSV, one row per admitted request
/// (`request,payment,duration,downtime_slots,failures,recovery_attempts,recoveries,repair_latency_slots,unrecovered,evicted,refund,retained`).
///
/// # Errors
///
/// Returns the first IO error from `out`.
pub fn write_sla_csv<W: Write>(out: &mut W, report: &FaultRunReport) -> io::Result<()> {
    writeln!(
        out,
        "request,payment,duration,downtime_slots,failures,recovery_attempts,recoveries,\
         repair_latency_slots,unrecovered,evicted,refund,retained"
    )?;
    for r in &report.sla.records {
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            r.request.index(),
            r.payment,
            r.duration,
            r.downtime_slots,
            r.failures,
            r.recovery_attempts,
            r.recoveries,
            r.repair_latency_slots,
            r.unrecovered,
            r.evicted,
            r.refund(),
            r.retained()
        )?;
    }
    Ok(())
}

/// Renders the SLA ledger as CSV, one row per admitted request.
pub fn sla_csv(report: &FaultRunReport) -> String {
    into_string(|buf| write_sla_csv(buf, report))
}

/// Streams a sweep table as CSV with the x-label as the first column.
///
/// # Errors
///
/// Returns the first IO error from `out`.
pub fn write_sweep_csv<W: Write>(out: &mut W, table: &SweepTable) -> io::Result<()> {
    out.write_all(table.x_label.as_bytes())?;
    for c in &table.columns {
        out.write_all(b",")?;
        // Quote column names containing commas to keep the CSV parseable.
        if c.contains(',') {
            write!(out, "\"{}\"", c.replace('"', "\"\""))?;
        } else {
            out.write_all(c.as_bytes())?;
        }
    }
    out.write_all(b"\n")?;
    for (x, vals) in &table.rows {
        write!(out, "{x}")?;
        for v in vals {
            write!(out, ",{v}")?;
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Renders a sweep table as CSV with the x-label as the first column.
pub fn sweep_csv(table: &SweepTable) -> String {
    into_string(|buf| write_sweep_csv(buf, table))
}

/// Runs a streaming renderer into an in-memory buffer. Writes to a
/// `Vec<u8>` cannot fail and everything written is UTF-8.
fn into_string(render: impl FnOnce(&mut Vec<u8>) -> io::Result<()>) -> String {
    let mut buf = Vec::new();
    render(&mut buf).expect("in-memory CSV rendering cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::OnsiteGreedy;
    use vnfrel::ProblemInstance;

    #[test]
    fn timeline_csv_has_one_row_per_slot() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        b.add_cloudlet(a, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        let inst =
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(6))
                .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(10, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim.run(&mut g).unwrap();
        let csv = timeline_csv(&report);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 7); // header + 6 slots
        assert_eq!(lines[0], "slot,arrivals,admitted,active");
        // Arrivals across rows sum to the request count.
        let total: usize = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn fault_csvs_cover_every_slot_and_admitted_request() {
        use crate::fault::{FailureConfig, FailureEvent, FailureProcess};
        use crate::recovery::RecoveryPolicy;

        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let a2 = b.add_ap("a2");
        b.add_link(a, a2, 1.0).unwrap();
        b.add_cloudlet(a, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        b.add_cloudlet(a2, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        let inst =
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(6))
                .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(12, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let trace = FailureProcess::from_events(
            inst.horizon(),
            [FailureEvent::CloudletDown {
                slot: 2,
                cloudlet: 0,
            }],
            FailureConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
            .unwrap();

        let timeline = fault_timeline_csv(&report);
        let lines: Vec<&str> = timeline.trim_end().lines().collect();
        assert_eq!(lines.len(), 7); // header + 6 slots
        assert_eq!(
            lines[0],
            "slot,arrivals,admitted,active,events,newly_failed,recovered,violated,evicted"
        );
        // The injected event shows up in slot 2's events column.
        assert_eq!(lines[3].split(',').nth(4).unwrap(), "1");

        let sla = sla_csv(&report);
        let rows: Vec<&str> = sla.trim_end().lines().collect();
        assert_eq!(rows.len() - 1, report.metrics.admitted);
        assert!(rows[0].starts_with("request,payment,duration,downtime_slots"));
        for row in &rows[1..] {
            assert_eq!(row.split(',').count(), 12);
        }
    }

    #[test]
    fn sweep_csv_quotes_commas() {
        let mut t = SweepTable::new("x", "y", vec!["plain".into(), "with,comma".into()]);
        t.push_row(1.0, vec![2.0, 3.0]);
        let csv = sweep_csv(&t);
        assert!(csv.starts_with("x,plain,\"with,comma\"\n"));
        assert!(csv.contains("1,2,3\n"));
    }

    #[test]
    fn streaming_writers_propagate_io_errors() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    Err(io::Error::other("disk full"))
                } else {
                    self.0 -= 1;
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut t = SweepTable::new("x", "y", vec!["a".into()]);
        t.push_row(1.0, vec![2.0]);
        // The header write succeeds, a later row write fails: the error
        // must reach the caller rather than vanish.
        assert!(write_sweep_csv(&mut FailAfter(1), &t).is_err());
        assert!(write_sweep_csv(&mut FailAfter(1000), &t).is_ok());
    }
}
