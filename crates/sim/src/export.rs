//! Plain-text/CSV export of simulation artifacts, for plotting outside
//! Rust (gnuplot, matplotlib, spreadsheets).

use crate::engine::{FaultRunReport, RunReport};
use crate::experiment::SweepTable;

/// Renders the per-slot timeline as CSV (`slot,arrivals,admitted,active`).
pub fn timeline_csv(report: &RunReport) -> String {
    let mut out = String::from("slot,arrivals,admitted,active\n");
    for (t, s) in report.timeline.iter().enumerate() {
        out.push_str(&format!("{t},{},{},{}\n", s.arrivals, s.admitted, s.active));
    }
    out
}

/// Renders a fault-aware run's per-slot timeline as CSV
/// (`slot,arrivals,admitted,active,events,newly_failed,recovered,violated`).
pub fn fault_timeline_csv(report: &FaultRunReport) -> String {
    let mut out =
        String::from("slot,arrivals,admitted,active,events,newly_failed,recovered,violated\n");
    for (t, s) in report.timeline.iter().enumerate() {
        out.push_str(&format!(
            "{t},{},{},{},{},{},{},{}\n",
            s.arrivals, s.admitted, s.active, s.events, s.newly_failed, s.recovered, s.violated
        ));
    }
    out
}

/// Renders the SLA ledger as CSV, one row per admitted request
/// (`request,payment,duration,downtime_slots,failures,recovery_attempts,recoveries,repair_latency_slots,unrecovered,refund,retained`).
pub fn sla_csv(report: &FaultRunReport) -> String {
    let mut out = String::from(
        "request,payment,duration,downtime_slots,failures,recovery_attempts,recoveries,\
         repair_latency_slots,unrecovered,refund,retained\n",
    );
    for r in &report.sla.records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            r.request.index(),
            r.payment,
            r.duration,
            r.downtime_slots,
            r.failures,
            r.recovery_attempts,
            r.recoveries,
            r.repair_latency_slots,
            r.unrecovered,
            r.refund(),
            r.retained()
        ));
    }
    out
}

/// Renders a sweep table as CSV with the x-label as the first column.
pub fn sweep_csv(table: &SweepTable) -> String {
    let mut out = String::new();
    out.push_str(&table.x_label);
    for c in &table.columns {
        out.push(',');
        // Quote column names containing commas to keep the CSV parseable.
        if c.contains(',') {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
    for (x, vals) in &table.rows {
        out.push_str(&format!("{x}"));
        for v in vals {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::OnsiteGreedy;
    use vnfrel::ProblemInstance;

    #[test]
    fn timeline_csv_has_one_row_per_slot() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        b.add_cloudlet(a, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        let inst =
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(6))
                .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(10, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim.run(&mut g).unwrap();
        let csv = timeline_csv(&report);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 7); // header + 6 slots
        assert_eq!(lines[0], "slot,arrivals,admitted,active");
        // Arrivals across rows sum to the request count.
        let total: usize = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn fault_csvs_cover_every_slot_and_admitted_request() {
        use crate::fault::{FailureConfig, FailureEvent, FailureProcess};
        use crate::recovery::RecoveryPolicy;

        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let a2 = b.add_ap("a2");
        b.add_link(a, a2, 1.0).unwrap();
        b.add_cloudlet(a, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        b.add_cloudlet(a2, 20, Reliability::new(0.99).unwrap())
            .unwrap();
        let inst =
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(6))
                .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(12, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let trace = FailureProcess::from_events(
            inst.horizon(),
            [FailureEvent::CloudletDown {
                slot: 2,
                cloudlet: 0,
            }],
            FailureConfig::default(),
        )
        .unwrap();
        let report = sim
            .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
            .unwrap();

        let timeline = fault_timeline_csv(&report);
        let lines: Vec<&str> = timeline.trim_end().lines().collect();
        assert_eq!(lines.len(), 7); // header + 6 slots
        assert_eq!(
            lines[0],
            "slot,arrivals,admitted,active,events,newly_failed,recovered,violated"
        );
        // The injected event shows up in slot 2's events column.
        assert_eq!(lines[3].split(',').nth(4).unwrap(), "1");

        let sla = sla_csv(&report);
        let rows: Vec<&str> = sla.trim_end().lines().collect();
        assert_eq!(rows.len() - 1, report.metrics.admitted);
        assert!(rows[0].starts_with("request,payment,duration,downtime_slots"));
        for row in &rows[1..] {
            assert_eq!(row.split(',').count(), 11);
        }
    }

    #[test]
    fn sweep_csv_quotes_commas() {
        let mut t = SweepTable::new("x", "y", vec!["plain".into(), "with,comma".into()]);
        t.push_row(1.0, vec![2.0, 3.0]);
        let csv = sweep_csv(&t);
        assert!(csv.starts_with("x,plain,\"with,comma\"\n"));
        assert!(csv.contains("1,2,3\n"));
    }
}
