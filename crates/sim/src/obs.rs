//! Engine-side observability: metric handles recorded during simulation
//! runs.
//!
//! Decision *events* come from the schedulers themselves (see
//! `mec_obs::TraceSink`); what the engine adds is timing and state no
//! single decision can see — decide() latency and end-of-run per-cloudlet
//! utilization. Registration is a two-phase handshake so the hot path
//! only ever touches `&MetricsRegistry` atomics:
//!
//! ```
//! # use mec_obs::MetricsRegistry;
//! # use mec_sim::obs::{EngineMetricIds, EngineMetrics};
//! let mut registry = MetricsRegistry::new();
//! let ids = EngineMetricIds::register(&mut registry, 3); // 3 cloudlets
//! let metrics = EngineMetrics::new(&registry, ids);
//! // pass `Some(&metrics)` to `Simulation::run_ordered_metered`
//! ```

use mec_obs::{MetricId, MetricsRegistry};

/// Latency buckets for `decide()` in seconds: 250 ns .. 100 µs. The
/// optimized schedulers sit near the bottom; anything in the top bucket
/// deserves a look.
pub const DECIDE_LATENCY_BUCKETS: [f64; 9] = [
    250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6, 50e-6, 100e-6,
];

/// Pre-registered engine series.
#[derive(Debug, Clone)]
pub struct EngineMetricIds {
    /// `vnfrel_decide_latency_seconds` histogram.
    pub decide_latency: MetricId,
    /// `vnfrel_cloudlet_utilization{cloudlet="j"}` gauge per cloudlet —
    /// mean fraction of capacity used across the horizon, set once at
    /// the end of a run.
    pub utilization: Vec<MetricId>,
}

impl EngineMetricIds {
    /// Registers the engine series for a topology with `cloudlet_count`
    /// cloudlets.
    pub fn register(reg: &mut MetricsRegistry, cloudlet_count: usize) -> Self {
        let decide_latency = reg.register_histogram(
            "vnfrel_decide_latency_seconds",
            "Wall-clock latency of one scheduler decide() call",
            &DECIDE_LATENCY_BUCKETS,
        );
        let utilization = (0..cloudlet_count)
            .map(|j| {
                reg.register_gauge(
                    &format!("vnfrel_cloudlet_utilization{{cloudlet=\"{j}\"}}"),
                    "Mean utilization of the cloudlet over the horizon",
                )
            })
            .collect();
        EngineMetricIds {
            decide_latency,
            utilization,
        }
    }
}

/// A registry handle the engine records into during a metered run.
#[derive(Debug)]
pub struct EngineMetrics<'r> {
    registry: &'r MetricsRegistry,
    ids: EngineMetricIds,
}

impl<'r> EngineMetrics<'r> {
    /// Binds pre-registered ids to their registry.
    pub fn new(registry: &'r MetricsRegistry, ids: EngineMetricIds) -> Self {
        EngineMetrics { registry, ids }
    }

    /// Records one decide() latency observation. Public so drivers
    /// other than the batch engine (the `mec-serve` daemon) can feed
    /// the same `vnfrel_decide_latency_seconds` series.
    pub fn observe_decide(&self, seconds: f64) {
        self.registry.observe(self.ids.decide_latency, seconds);
    }

    /// Sets the utilization gauge of one cloudlet (out-of-range ids are
    /// ignored). Public for the same reason as
    /// [`EngineMetrics::observe_decide`].
    pub fn set_utilization(&self, cloudlet: usize, value: f64) {
        if let Some(&id) = self.ids.utilization.get(cloudlet) {
            self.registry.set_gauge(id, value);
        }
    }

    /// Number of cloudlet utilization gauges registered.
    pub fn cloudlet_count(&self) -> usize {
        self.ids.utilization.len()
    }
}

/// Series recorded by the metered Monte-Carlo injector
/// ([`crate::failure::inject_failures_parallel_metered`]).
#[derive(Debug, Clone, Copy)]
pub struct InjectionMetricIds {
    /// `vnfrel_injection_trials_total`: trials sampled.
    pub trials: MetricId,
    /// `vnfrel_injection_survivals_total`: request-trials in which the
    /// placement survived.
    pub survivals: MetricId,
}

impl InjectionMetricIds {
    /// Registers the injection series.
    pub fn register(reg: &mut MetricsRegistry) -> Self {
        InjectionMetricIds {
            trials: reg.register_counter(
                "vnfrel_injection_trials_total",
                "Monte-Carlo failure-injection trials sampled",
            ),
            survivals: reg.register_counter(
                "vnfrel_injection_survivals_total",
                "Request-trials in which the placement survived",
            ),
        }
    }
}
