//! Runtime invariant auditor for fault-aware runs.
//!
//! When enabled via [`DegradationConfig::audit`](crate::DegradationConfig),
//! the engine re-verifies after every slot that its books still balance:
//!
//! 1. **Ledger non-negativity** — no `(cloudlet, slot)` cell of the
//!    capacity ledger went negative (a double release would).
//! 2. **Charge/release balance** — for every future slot, the ledger's
//!    committed usage equals the sum of the surviving placements' demand,
//!    so every charge has exactly one owner and every teardown released
//!    exactly what was charged.
//! 3. **Availability** — every retained request's surviving placement
//!    still satisfies its requirement `R_i` given the currently-up
//!    cloudlets, and no site rests on a down cloudlet.
//! 4. **Trace consistency** — the engine's up/down view of the fleet
//!    matches an independent replay of the failure trace (plus the
//!    cascade outages the engine reported).
//!
//! Violations are collected as typed [`AuditViolation`]s and surfaced as
//! [`TraceEvent::AuditViolation`](mec_obs::TraceEvent) — the run keeps
//! going; the auditor observes, it never panics.

use std::fmt;

use mec_topology::CloudletId;
use mec_workload::TimeSlot;
use vnfrel::{CapacityLedger, ProblemInstance};

use crate::engine::surviving_availability;
use crate::fault::FailureEvent;

/// Absolute tolerance for ledger balance comparisons.
const BALANCE_TOL: f64 = 1e-6;
/// Tolerance for availability re-checks (matches the engine's own).
const AVAIL_TOL: f64 = 1e-9;

/// Which invariant an [`AuditViolation`] breached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditInvariant {
    /// A ledger cell went negative: capacity was released twice.
    LedgerNonNegative,
    /// A future ledger cell disagrees with the sum of surviving
    /// placements: a charge or release went missing.
    LedgerBalance,
    /// A retained placement no longer meets its requirement `R_i`.
    Availability,
    /// A retained placement keeps a site on a down cloudlet.
    SiteLiveness,
    /// The engine's up/down state diverged from an independent replay of
    /// the failure trace.
    TraceConsistency,
}

impl AuditInvariant {
    /// Stable wire name (used in trace events and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            AuditInvariant::LedgerNonNegative => "ledger-non-negative",
            AuditInvariant::LedgerBalance => "ledger-balance",
            AuditInvariant::Availability => "availability",
            AuditInvariant::SiteLiveness => "site-liveness",
            AuditInvariant::TraceConsistency => "trace-consistency",
        }
    }
}

impl fmt::Display for AuditInvariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Slot the violation was detected in.
    pub slot: TimeSlot,
    /// The breached invariant.
    pub invariant: AuditInvariant,
    /// Human-readable detail (cloudlet/request/cell involved).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}: {}: {}", self.slot, self.invariant, self.detail)
    }
}

/// Outcome of running the auditor over a whole fault-aware run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Slots the auditor examined.
    pub slots_checked: usize,
    /// Every violation observed, in detection order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True when no invariant was ever breached.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "audit: {} slots checked, clean", self.slots_checked)
        } else {
            write!(
                f,
                "audit: {} slots checked, {} violations (first: {})",
                self.slots_checked,
                self.violations.len(),
                self.violations[0]
            )
        }
    }
}

/// The engine's per-slot snapshot of one admitted request, as the
/// auditor sees it.
pub(crate) struct LiveView<'a> {
    /// Dense request id.
    pub(crate) request: usize,
    /// Last slot of the request's window.
    pub(crate) end_slot: TimeSlot,
    /// Requirement `R_i`.
    pub(crate) requirement: f64,
    /// Reliability of the request's VNF type.
    pub(crate) vnf_rel: mec_topology::Reliability,
    /// Computing units one instance consumes per slot.
    pub(crate) per_instance: f64,
    /// Surviving instances per hosting cloudlet index.
    pub(crate) sites: &'a [(usize, u32)],
    /// True while the placement is intact (not down, not evicted).
    pub(crate) healthy: bool,
}

/// Slot-stepped invariant checker; owned by the engine during a run.
pub(crate) struct Auditor {
    /// Independent replay of the base (non-cascade) trace.
    base_up: Vec<bool>,
    /// Cascade outages the engine reported: `Some(end)` while forced down.
    cascade_until: Vec<Option<TimeSlot>>,
    report: AuditReport,
}

impl Auditor {
    pub(crate) fn new(cloudlets: usize) -> Self {
        Auditor {
            base_up: vec![true; cloudlets],
            cascade_until: vec![None; cloudlets],
            report: AuditReport::default(),
        }
    }

    /// Expires cascade overlays whose outage window ended before `t`.
    pub(crate) fn begin_slot(&mut self, t: TimeSlot) {
        for c in &mut self.cascade_until {
            if matches!(c, Some(end) if *end <= t) {
                *c = None;
            }
        }
    }

    /// Replays this slot's trace events into the independent up/down view.
    pub(crate) fn apply_events(&mut self, events: &[FailureEvent]) {
        for e in events {
            match *e {
                FailureEvent::CloudletDown { cloudlet, .. } => self.base_up[cloudlet] = false,
                FailureEvent::CloudletUp { cloudlet, .. } => self.base_up[cloudlet] = true,
                FailureEvent::InstanceKill { .. } => {}
            }
        }
    }

    /// Records a cascade outage the engine decided to fire.
    pub(crate) fn note_cascade(&mut self, cloudlet: usize, until: TimeSlot) {
        self.cascade_until[cloudlet] = Some(until);
    }

    fn violate(&mut self, slot: TimeSlot, invariant: AuditInvariant, detail: String) {
        self.report.violations.push(AuditViolation {
            slot,
            invariant,
            detail,
        });
    }

    /// Runs every invariant check for slot `t`; returns the index into
    /// the violation list where this slot's findings start, so the
    /// engine can emit trace events for exactly the new ones.
    pub(crate) fn check_slot(
        &mut self,
        t: TimeSlot,
        instance: &ProblemInstance,
        ledger: &CapacityLedger,
        engine_up: &[bool],
        views: &[LiveView<'_>],
    ) -> usize {
        let first_new = self.report.violations.len();
        self.report.slots_checked += 1;
        let horizon = ledger.horizon().len();
        let m = ledger.cloudlet_count();

        // 1. Non-negativity over every cell (past cells included: a
        //    double release corrupts history too).
        for j in 0..m {
            for s in 0..horizon {
                let used = ledger.used(CloudletId(j), s);
                if used < -BALANCE_TOL {
                    self.violate(
                        t,
                        AuditInvariant::LedgerNonNegative,
                        format!("cloudlet {j} slot {s} used {used}"),
                    );
                }
            }
        }

        // 2. Balance: for s >= t, committed usage must equal the sum of
        //    surviving healthy placements covering s.
        let mut expected = vec![0.0_f64; m * (horizon - t)];
        for v in views {
            if !v.healthy {
                continue;
            }
            for &(j, n) in v.sites {
                for s in t..=v.end_slot.min(horizon - 1) {
                    expected[j * (horizon - t) + (s - t)] += f64::from(n) * v.per_instance;
                }
            }
        }
        for j in 0..m {
            for s in t..horizon {
                let used = ledger.used(CloudletId(j), s);
                let want = expected[j * (horizon - t) + (s - t)];
                if (used - want).abs() > BALANCE_TOL {
                    self.violate(
                        t,
                        AuditInvariant::LedgerBalance,
                        format!("cloudlet {j} slot {s} used {used} expected {want}"),
                    );
                }
            }
        }

        // 3. Availability and site liveness of every healthy placement.
        for v in views {
            if !v.healthy {
                continue;
            }
            for &(j, _) in v.sites {
                if !engine_up.get(j).copied().unwrap_or(false) {
                    self.violate(
                        t,
                        AuditInvariant::SiteLiveness,
                        format!("request {} keeps a site on down cloudlet {j}", v.request),
                    );
                }
            }
            let avail = surviving_availability(instance, v.vnf_rel, v.sites);
            if avail + AVAIL_TOL < v.requirement {
                self.violate(
                    t,
                    AuditInvariant::Availability,
                    format!(
                        "request {} availability {avail} below requirement {}",
                        v.request, v.requirement
                    ),
                );
            }
        }

        // 4. Engine state vs independent trace replay.
        for j in 0..m {
            let want = self.base_up[j] && self.cascade_until[j].is_none();
            let got = engine_up.get(j).copied().unwrap_or(false);
            if got != want {
                self.violate(
                    t,
                    AuditInvariant::TraceConsistency,
                    format!("cloudlet {j} engine says up={got}, trace replay says up={want}"),
                );
            }
        }

        first_new
    }

    pub(crate) fn violations_since(&self, from: usize) -> &[AuditViolation] {
        &self.report.violations[from..]
    }

    pub(crate) fn finish(self) -> AuditReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, VnfCatalog};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 30, Reliability::new(0.999).unwrap())
            .unwrap();
        b.add_cloudlet(c, 30, Reliability::new(0.995).unwrap())
            .unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(8)).unwrap()
    }

    fn view(sites: &[(usize, u32)], healthy: bool) -> LiveView<'_> {
        LiveView {
            request: 0,
            end_slot: 7,
            requirement: 0.9,
            vnf_rel: Reliability::new(0.98).unwrap(),
            per_instance: 2.0,
            sites,
            healthy,
        }
    }

    #[test]
    fn clean_books_stay_clean() {
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        ledger.charge(CloudletId(0), 0..8, 4.0);
        let sites = vec![(0usize, 2u32)];
        let views = vec![view(&sites, true)];
        let mut a = Auditor::new(2);
        a.begin_slot(0);
        let first = a.check_slot(0, &inst, &ledger, &[true, true], &views);
        assert!(a.violations_since(first).is_empty());
        let report = a.finish();
        assert!(report.is_clean());
        assert_eq!(report.slots_checked, 1);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn unbalanced_ledger_is_reported() {
        let inst = instance();
        let mut ledger = CapacityLedger::new(inst.network(), inst.horizon());
        // Charged but no live placement owns it.
        ledger.charge(CloudletId(1), 3..5, 2.0);
        let mut a = Auditor::new(2);
        a.begin_slot(0);
        a.check_slot(0, &inst, &ledger, &[true, true], &[]);
        let report = a.finish();
        assert!(!report.is_clean());
        assert!(report
            .violations
            .iter()
            .all(|v| v.invariant == AuditInvariant::LedgerBalance));
        assert_eq!(report.violations.len(), 2);
        assert!(report.to_string().contains("ledger-balance"));
    }

    #[test]
    fn availability_and_liveness_breaches_are_reported() {
        let inst = instance();
        let ledger = CapacityLedger::new(inst.network(), inst.horizon());
        // A "healthy" view with no surviving site: availability 0 < 0.9,
        // and a site pinned on a down cloudlet.
        let empty: Vec<(usize, u32)> = Vec::new();
        let on_down = vec![(1usize, 1u32)];
        let mut views = vec![view(&empty, true)];
        views.push(LiveView {
            per_instance: 0.0, // no charge, keeps the balance check quiet
            ..view(&on_down, true)
        });
        let mut a = Auditor::new(2);
        a.begin_slot(0);
        a.check_slot(0, &inst, &ledger, &[true, false], &views);
        let report = a.finish();
        let kinds: Vec<_> = report.violations.iter().map(|v| v.invariant).collect();
        assert!(kinds.contains(&AuditInvariant::Availability));
        assert!(kinds.contains(&AuditInvariant::SiteLiveness));
        // The trace-consistency replay (no events applied) disagrees with
        // engine_up[1] = false.
        assert!(kinds.contains(&AuditInvariant::TraceConsistency));
    }

    #[test]
    fn trace_replay_tracks_events_and_cascades() {
        let inst = instance();
        let ledger = CapacityLedger::new(inst.network(), inst.horizon());
        let mut a = Auditor::new(2);
        a.begin_slot(2);
        a.apply_events(&[FailureEvent::CloudletDown {
            slot: 2,
            cloudlet: 0,
        }]);
        a.note_cascade(1, 4);
        let first = a.check_slot(2, &inst, &ledger, &[false, false], &[]);
        assert!(a.violations_since(first).is_empty());
        // Cascade expires at slot 4; cloudlet 0 stays down.
        a.begin_slot(4);
        let first = a.check_slot(4, &inst, &ledger, &[false, true], &[]);
        assert!(a.violations_since(first).is_empty());
        assert!(a.finish().is_clean());
    }
}
