//! Side-by-side comparison of several schedulers on one scenario.

use std::fmt;

use mec_workload::Request;
use vnfrel::{OnlineScheduler, ProblemInstance};

use crate::engine::Simulation;
use crate::metrics::RunMetrics;
use crate::SimError;

/// Metrics for each scheduler, plus shared workload facts.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// One row per scheduler, in the order supplied.
    pub rows: Vec<RunMetrics>,
    /// Total payment of the stream (the revenue ceiling).
    pub total_payment: f64,
}

impl Comparison {
    /// The best-revenue row, if any scheduler ran.
    pub fn best(&self) -> Option<&RunMetrics> {
        self.rows
            .iter()
            .max_by(|a, b| a.revenue.partial_cmp(&b.revenue).expect("finite revenue"))
    }

    /// Revenue of `name` relative to the best scheduler (1.0 = best).
    pub fn relative(&self, name: &str) -> Option<f64> {
        let best = self.best()?.revenue;
        let row = self.rows.iter().find(|r| r.algorithm == name)?;
        (best > 0.0).then(|| row.revenue / best)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<26} {:>12} {:>10} {:>8} {:>10}",
            "algorithm", "revenue", "admitted", "util", "rev/best"
        )?;
        let best = self.best().map(|r| r.revenue).unwrap_or(0.0);
        for r in &self.rows {
            writeln!(
                f,
                "{:<26} {:>12.1} {:>10} {:>8.3} {:>10.3}",
                r.algorithm,
                r.revenue,
                r.admitted,
                r.mean_utilization,
                if best > 0.0 { r.revenue / best } else { 0.0 }
            )?;
        }
        write!(f, "stream total payment: {:.1}", self.total_payment)
    }
}

/// Runs every scheduler over the same request stream and tabulates the
/// results. Each scheduler must start fresh (they accumulate state).
///
/// # Errors
///
/// Propagates engine errors; every schedule must validate.
pub fn compare(
    instance: &ProblemInstance,
    requests: &[Request],
    schedulers: &mut [&mut dyn OnlineScheduler],
) -> Result<Comparison, SimError> {
    let sim = Simulation::new(instance, requests)?;
    let mut rows = Vec::with_capacity(schedulers.len());
    for s in schedulers.iter_mut() {
        let report = sim.run(*s)?;
        if !report.validation.is_feasible() {
            return Err(SimError::Mismatch(
                "a scheduler produced an infeasible schedule",
            ));
        }
        rows.push(report.metrics);
    }
    Ok(Comparison {
        rows,
        total_payment: requests.iter().map(|r| r.payment()).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};

    #[test]
    fn compares_two_schedulers() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        b.add_cloudlet(a, 10, Reliability::new(0.999).unwrap())
            .unwrap();
        let inst =
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12))
                .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reqs = RequestGenerator::new(inst.horizon())
            .payment_rate_band(1.0, 10.0)
            .unwrap()
            .generate(120, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg1 = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let mut greedy = OnsiteGreedy::new(&inst);
        let cmp = compare(&inst, &reqs, &mut [&mut alg1, &mut greedy]).unwrap();
        assert_eq!(cmp.rows.len(), 2);
        assert!(cmp.total_payment > 0.0);
        let best = cmp.best().unwrap().revenue;
        for r in &cmp.rows {
            assert!(r.revenue <= best + 1e-9);
            assert!(r.revenue <= cmp.total_payment + 1e-9);
        }
        assert_eq!(
            cmp.relative(&cmp.best().unwrap().algorithm.clone()),
            Some(1.0)
        );
        assert!(cmp.relative("nope").is_none());
        let table = cmp.to_string();
        assert!(table.contains("alg1-primal-dual"));
        assert!(table.contains("greedy-onsite"));
    }
}
