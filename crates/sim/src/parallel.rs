//! Deterministic scoped-thread fan-out for experiment harnesses.
//!
//! The figure sweeps and Monte-Carlo validators are embarrassingly
//! parallel over (sweep point, seed) or trial-chunk tasks. This module
//! provides one primitive, [`parallel_map`], built on
//! [`std::thread::scope`] (no external thread-pool dependency):
//!
//! * work-stealing by atomic index — threads pull the next unclaimed
//!   item, so uneven task costs do not serialize the tail;
//! * **deterministic ordered merge** — every result is tagged with its
//!   input index and the output is sorted back into input order, so the
//!   result vector is independent of thread scheduling;
//! * `threads <= 1` (or a single item) runs inline on the caller's
//!   thread with no synchronization at all, making the serial path the
//!   trivially-correct reference the determinism tests compare against.
//!
//! Determinism of the *values* (not just their order) is the task
//! closure's responsibility: closures must derive any randomness from
//! the item itself (e.g. per-task ChaCha seeding), never from shared
//! mutable state or thread identity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested worker count: `Some(n >= 1)` is taken verbatim,
/// `None` (or `Some(0)`) means [`std::thread::available_parallelism`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Applies `f` to every item on up to `threads` scoped worker threads
/// and returns the results **in input order**, regardless of which
/// thread computed what and when.
///
/// # Panics
///
/// Propagates a panic from any worker closure after all threads join.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let workers = threads.min(items.len());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                // Buffer locally; merge once per worker to keep the mutex
                // off the per-item path.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                collected.lock().expect("no poisoned worker").extend(local);
            });
        }
    });
    let mut tagged = collected.into_inner().expect("all workers joined");
    debug_assert_eq!(tagged.len(), items.len());
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(&items, threads, |&i| i * 3);
            let expect: Vec<usize> = items.iter().map(|&i| i * 3).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_serial_for_seeded_tasks() {
        use rand::{Rng, SeedableRng};
        let seeds: Vec<u64> = (0..16).collect();
        let task = |&seed: &u64| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            (0..100).map(|_| rng.gen_range(0u64..1000)).sum::<u64>()
        };
        let serial = parallel_map(&seeds, 1, task);
        let parallel = parallel_map(&seeds, 4, task);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[5u32], 4, |&x| x + 1), vec![6]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(&[1u32, 2, 3], 64, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
        assert!(resolve_threads(Some(0)) >= 1);
    }
}
