use std::time::Instant;

use mec_obs::{NoopSink, TraceEvent, TraceSink};
use mec_topology::{CloudletId, Reliability};
use mec_workload::{Request, TimeSlot};
use vnfrel::reliability::onsite_availability;
use vnfrel::{validate_schedule, OnlineScheduler, ProblemInstance, Schedule, ValidationReport};

use crate::audit::{AuditReport, Auditor, LiveView};
use crate::fault::{DomainEvent, FailureEvent, FailureProcess};
use crate::metrics::{FaultSlotStats, RunMetrics, SlaRecord, SlaReport, SlotStats};
use crate::obs::EngineMetrics;
use crate::recovery::{self, RecoveryPolicy};
use crate::SimError;

/// How requests arriving in the *same* slot are ordered before being
/// offered to the scheduler.
///
/// The paper's model is strictly one-by-one ([`IntraSlotOrder::Arrival`]).
/// A real hypervisor, however, sees a whole slot's batch at once and may
/// sort it — a mild, realistic form of lookahead that the ordering
/// ablation quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraSlotOrder {
    /// Arrival (id) order — the paper's online model.
    #[default]
    Arrival,
    /// Largest payment first.
    PaymentDescending,
    /// Largest payment per unit-slot of demand first (`pay/(c·d)`).
    DensityDescending,
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request decisions.
    pub schedule: Schedule,
    /// Aggregate statistics.
    pub metrics: RunMetrics,
    /// Independent feasibility check of the schedule.
    pub validation: ValidationReport,
    /// Per-slot arrival/admission/active counters.
    pub timeline: Vec<SlotStats>,
    /// Cumulative revenue after each slot's arrivals were processed —
    /// the online revenue trajectory.
    pub cumulative_revenue: Vec<f64>,
}

/// Knobs of the graceful-degradation layer
/// ([`Simulation::run_degraded`]).
///
/// The layer adds three mechanisms on top of a [`RecoveryPolicy`]:
///
/// * **Degraded-mode admission headroom** — while any failure domain is
///   down (or a cascade outage is active), fresh admissions that would
///   push a hosting cloudlet's committed load above
///   `(1 − headroom) · capacity` in any slot of their window are
///   overturned into rejections, keeping `headroom` of every cloudlet
///   free for recovery re-placements.
/// * **Revenue-aware load shedding** — when a re-placement attempt finds
///   no room, retained requests with *strictly lower* payment density
///   (`pay / (duration · demand)`) are evicted in ascending density
///   order until the re-placement fits or no cheaper victim remains.
///   Evicted requests accrue downtime (and thus SLA refunds) for the
///   rest of their window.
/// * **Bounded retry with exponential backoff** — each failure episode
///   allows at most `max_retries` re-placement attempts, spaced
///   `backoff_base · 2^(attempt−1)` slots apart, so a hopeless request
///   stops hammering the ledger.
///
/// With [`DegradationConfig::audit`] the engine additionally re-verifies
/// its books after every slot (see [`crate::audit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Fraction of every cloudlet's capacity reserved while degraded.
    pub headroom: f64,
    /// Re-placement attempts allowed per failure episode.
    pub max_retries: usize,
    /// Base retry spacing in slots; attempt `k` waits
    /// `backoff_base · 2^(k−1)` slots after failing.
    pub backoff_base: usize,
    /// Enables the revenue-aware load shedder.
    pub shed: bool,
    /// Runs the invariant auditor each slot, attaching an
    /// [`AuditReport`] to the run report.
    pub audit: bool,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            headroom: 0.1,
            max_retries: 4,
            backoff_base: 1,
            shed: true,
            audit: true,
        }
    }
}

impl DegradationConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when the headroom leaves `[0, 1)`
    /// or a retry knob is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.headroom.is_finite() || !(0.0..1.0).contains(&self.headroom) {
            return Err(SimError::Mismatch("degradation headroom must be in [0, 1)"));
        }
        if self.max_retries == 0 {
            return Err(SimError::Mismatch(
                "degradation must allow at least one retry",
            ));
        }
        if self.backoff_base == 0 {
            return Err(SimError::Mismatch(
                "degradation backoff base must be at least one slot",
            ));
        }
        Ok(())
    }
}

/// Counters of the graceful-degradation layer over one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationStats {
    /// Slots spent in degraded mode (a domain or cascade outage active).
    pub degraded_slots: usize,
    /// Admissions overturned by the degraded-mode headroom reserve.
    pub vetoed_admissions: usize,
    /// Requests evicted by the load shedder.
    pub evictions: usize,
    /// Secondary (cascade) outages that fired.
    pub cascades: usize,
    /// Failure episodes that exhausted their retry budget.
    pub retries_exhausted: usize,
}

/// Result of one fault-aware run ([`Simulation::run_with_failures`]).
///
/// There is no [`ValidationReport`] here: the static feasibility checker
/// assumes placements persist over their full window, which dynamic
/// faults deliberately break. Capacity consistency is instead maintained
/// online through [`CapacityLedger::release`](vnfrel::CapacityLedger::release).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunReport {
    /// Admission-time decisions (recovery never rewrites these).
    pub schedule: Schedule,
    /// Aggregate statistics of the admission run.
    pub metrics: RunMetrics,
    /// Per-request SLA accounting: downtime, repair latency, refunds.
    pub sla: SlaReport,
    /// Per-slot counters including fault/recovery activity.
    pub timeline: Vec<FaultSlotStats>,
    /// The recovery policy the run used.
    pub policy: RecoveryPolicy,
    /// Invariant-auditor findings, when auditing was enabled
    /// ([`DegradationConfig::audit`]).
    pub audit: Option<AuditReport>,
    /// Degradation-layer counters, when the run used
    /// [`Simulation::run_degraded`].
    pub degradation: Option<DegradationStats>,
}

/// Live placement state of one admitted request during a fault-aware run.
struct LiveReq {
    /// Surviving instances per hosting cloudlet index.
    sites: Vec<(usize, u32)>,
    /// Computing units one instance consumes per slot.
    per_instance: f64,
    /// Reliability of the request's VNF type.
    vnf_rel: Reliability,
    /// Slot of the unrecovered failure, `None` while the placement holds.
    down_since: Option<TimeSlot>,
    downtime_slots: usize,
    failures: usize,
    recovery_attempts: usize,
    recoveries: usize,
    repair_latency_slots: usize,
    /// The load shedder evicted this request; it stays down for good.
    evicted: bool,
    /// Re-placement attempts spent on the current failure episode.
    episode_attempts: usize,
    /// Earliest slot the next re-placement attempt may run (backoff).
    retry_at: TimeSlot,
}

impl LiveReq {
    fn sites_of(placement: &vnfrel::Placement) -> Vec<(usize, u32)> {
        match placement {
            vnfrel::Placement::OnSite {
                cloudlet,
                instances,
            } => vec![(cloudlet.index(), *instances)],
            vnfrel::Placement::OffSite { cloudlets } => {
                cloudlets.iter().map(|c| (c.index(), 1)).collect()
            }
        }
    }
}

/// Availability of whatever instances survive, generalizing Eq. 3 and
/// Eq. 10: each hosting cloudlet `j` with `n_j` instances contributes an
/// independent branch `A_j = r(c_j)·(1 − (1 − r_f)^{n_j})`, and the
/// request is served while any branch is (`1 − Π (1 − A_j)`). A pure
/// on-site placement reduces to Eq. 3, a pure off-site one to Eq. 10,
/// and mixed states (partially killed placements, recoveries under a
/// different scheme) interpolate between them.
pub(crate) fn surviving_availability(
    instance: &ProblemInstance,
    vnf_rel: Reliability,
    sites: &[(usize, u32)],
) -> f64 {
    let mut fail = 1.0;
    for &(j, n) in sites {
        let rel = instance
            .network()
            .cloudlet(CloudletId(j))
            .expect("live site references a known cloudlet")
            .reliability();
        fail *= 1.0 - onsite_availability(vnf_rel, rel, n);
    }
    1.0 - fail
}

/// A slot-stepped simulation of the online admission process.
///
/// Requests are replayed in discrete time: at the beginning of each slot
/// the requests arriving in that slot are offered to the scheduler one by
/// one (the hypervisor model of Section III-B). The engine never peeks at
/// future arrivals, so any [`OnlineScheduler`] run through it experiences
/// a genuinely online stream.
///
/// # Example
///
/// ```
/// # use mec_sim::Simulation;
/// # use vnfrel::{ProblemInstance, onsite::{OnsitePrimalDual, CapacityPolicy}};
/// # use mec_topology::{NetworkBuilder, Reliability};
/// # use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let ap = b.add_ap("edge");
/// b.add_cloudlet(ap, 60, Reliability::new(0.999)?)?;
/// let inst = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(12))?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let reqs = RequestGenerator::new(inst.horizon()).generate(30, inst.catalog(), &mut rng)?;
/// let sim = Simulation::new(&inst, &reqs)?;
/// let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce)?;
/// let report = sim.run(&mut alg)?;
/// assert!(report.validation.is_feasible());
/// assert_eq!(report.metrics.total, 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation<'a> {
    instance: &'a ProblemInstance,
    requests: &'a [Request],
    /// Request indices grouped by arrival slot.
    by_slot: Vec<Vec<usize>>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation over a request stream.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`vnfrel::VnfrelError`] when the requests do not
    /// fit the instance (non-dense ids, unknown VNFs, bad windows).
    pub fn new(instance: &'a ProblemInstance, requests: &'a [Request]) -> Result<Self, SimError> {
        instance.check_requests(requests)?;
        let mut by_slot = vec![Vec::new(); instance.horizon().len()];
        for (i, r) in requests.iter().enumerate() {
            by_slot[r.arrival()].push(i);
        }
        Ok(Simulation {
            instance,
            requests,
            by_slot,
        })
    }

    /// The instance being simulated.
    pub fn instance(&self) -> &ProblemInstance {
        self.instance
    }

    /// The request stream.
    pub fn requests(&self) -> &[Request] {
        self.requests
    }

    /// Replays the stream through `scheduler` and validates the result.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; scheduler decisions themselves are
    /// infallible.
    pub fn run<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
    ) -> Result<RunReport, SimError> {
        self.run_ordered(scheduler, IntraSlotOrder::Arrival)
    }

    /// Like [`Simulation::run`], but each slot's batch of arrivals is
    /// reordered by `order` before being offered to the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn run_ordered<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        order: IntraSlotOrder,
    ) -> Result<RunReport, SimError> {
        self.run_ordered_metered(scheduler, order, None)
    }

    /// Like [`Simulation::run_ordered`], but records engine-side metrics
    /// into `metrics` when given: a `decide()` wall-clock latency
    /// histogram and, at the end of the run, one mean-utilization gauge
    /// per cloudlet. Pass `None` to get the exact behaviour (and cost)
    /// of [`Simulation::run_ordered`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn run_ordered_metered<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        order: IntraSlotOrder,
        metrics: Option<&EngineMetrics<'_>>,
    ) -> Result<RunReport, SimError> {
        let mut schedule = Schedule::new();
        let mut timeline = vec![SlotStats::default(); self.instance.horizon().len()];
        let mut cumulative_revenue = Vec::with_capacity(self.instance.horizon().len());

        // Requests carry dense ids in arrival order, so iterating slots
        // and, within each slot, id order reproduces the arrival sequence.
        for t in self.instance.horizon().slots() {
            let mut batch: Vec<usize> = self.by_slot[t].clone();
            match order {
                IntraSlotOrder::Arrival => {}
                IntraSlotOrder::PaymentDescending => {
                    batch.sort_by(|&a, &b| {
                        self.requests[b]
                            .payment()
                            .partial_cmp(&self.requests[a].payment())
                            .expect("payments are finite")
                            .then(a.cmp(&b))
                    });
                }
                IntraSlotOrder::DensityDescending => {
                    let density = |i: usize| {
                        let r = &self.requests[i];
                        let c = self
                            .instance
                            .catalog()
                            .get(r.vnf())
                            .map(|v| v.compute())
                            .unwrap_or(1);
                        r.payment() / (c as f64 * r.duration() as f64)
                    };
                    batch.sort_by(|&a, &b| {
                        density(b)
                            .partial_cmp(&density(a))
                            .expect("densities are finite")
                            .then(a.cmp(&b))
                    });
                }
            }
            // Decide in the chosen order, but record in id order (the
            // Schedule requires dense recording).
            let mut decisions: Vec<(usize, vnfrel::Decision)> = batch
                .into_iter()
                .map(|i| match metrics {
                    Some(m) => {
                        let start = Instant::now();
                        let d = scheduler.decide(&self.requests[i]);
                        m.observe_decide(start.elapsed().as_secs_f64());
                        (i, d)
                    }
                    None => (i, scheduler.decide(&self.requests[i])),
                })
                .collect();
            decisions.sort_by_key(|&(i, _)| i);
            for (i, decision) in decisions {
                let r = &self.requests[i];
                timeline[t].arrivals += 1;
                if decision.is_admit() {
                    timeline[t].admitted += 1;
                    for slot in r.slots() {
                        timeline[slot].active += 1;
                    }
                }
                schedule.record(r, decision);
            }
            cumulative_revenue.push(schedule.revenue());
        }

        let validation =
            validate_schedule(self.instance, self.requests, &schedule, scheduler.scheme())?;
        if let Some(m) = metrics {
            let ledger = scheduler.ledger();
            let slots = self.instance.horizon().len().max(1) as f64;
            for j in 0..m.cloudlet_count().min(ledger.cloudlet_count()) {
                let cid = CloudletId(j);
                let cap = ledger.capacity(cid);
                let mean = if cap > 0.0 {
                    self.instance
                        .horizon()
                        .slots()
                        .map(|t| ledger.used(cid, t))
                        .sum::<f64>()
                        / (cap * slots)
                } else {
                    0.0
                };
                m.set_utilization(j, mean);
            }
        }
        let metrics = RunMetrics {
            algorithm: scheduler.name().to_string(),
            revenue: schedule.revenue(),
            admitted: schedule.admitted_count(),
            total: self.requests.len(),
            mean_utilization: scheduler.ledger().mean_utilization(),
            max_overflow: scheduler.ledger().max_overflow(),
            dual_bound: None,
        };
        Ok(RunReport {
            schedule,
            metrics,
            validation,
            timeline,
            cumulative_revenue,
        })
    }

    /// Replays the stream through `scheduler` while the outage trace in
    /// `failures` unfolds, reacting online with `policy`.
    ///
    /// Each slot proceeds in five steps:
    ///
    /// 1. **Events** — this slot's [`FailureEvent`]s are applied. A
    ///    crashed cloudlet takes every instance hosted there down with
    ///    it; the dead placement's remaining capacity is
    ///    [released](vnfrel::CapacityLedger::release) so survivors and
    ///    future arrivals can reuse it. An [`FailureEvent::InstanceKill`]
    ///    resolves its selector against the instances actually hosted on
    ///    that cloudlet (in request-id order) and kills exactly one.
    /// 2. **Arrivals** — the slot's requests are offered to the
    ///    (outage-blind) scheduler one by one, exactly as in
    ///    [`Simulation::run`]; sites that an admission places on a
    ///    currently-down cloudlet are stripped and refunded immediately.
    /// 3. **Violation detection** — every active request's surviving
    ///    placement is re-checked against its requirement `R_i`. A
    ///    placement that fell below `R_i` is torn down entirely (its
    ///    remaining charges released) and the request is marked down.
    /// 4. **Recovery** — each down request is handed to `policy`, which
    ///    may re-place it on the up cloudlets for the *rest* of its
    ///    window, charging the ledger like a fresh admission. Recovery
    ///    within the failure slot itself counts as zero downtime.
    /// 5. **Accounting** — every active request still down after
    ///    recovery accrues one SLA-violated request-slot.
    ///
    /// The admission-time [`Schedule`] (and thus gross revenue) is
    /// unaffected by faults; the SLA ledger tracks what part of that
    /// revenue survives downtime refunds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when the failure stream was
    /// generated for a different horizon or topology, and propagates
    /// ledger release failures (which would indicate double-release
    /// bookkeeping bugs).
    pub fn run_with_failures<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
    ) -> Result<FaultRunReport, SimError> {
        self.run_with_failures_traced(scheduler, failures, policy, &mut NoopSink)
    }

    /// Like [`Simulation::run_with_failures`], but records one
    /// [`TraceEvent`] per fault-lifecycle transition into `sink`:
    /// [`TraceEvent::OutageStart`]/[`TraceEvent::OutageEnd`] when a
    /// cloudlet crashes or is repaired, [`TraceEvent::InstanceKill`] when
    /// an instance-kill resolves to a victim request,
    /// [`TraceEvent::SlaBreach`] when a placement falls below `R_i`, and
    /// [`TraceEvent::Recovery`] for every recovery attempt (successful or
    /// not, with the re-placement cloudlets on success).
    ///
    /// Decision events are *not* emitted here — they belong to the
    /// scheduler, which carries its own sink (see
    /// `with_sink` on the scheduler types); share one sink between both
    /// via `Rc<RefCell<_>>` to get a single interleaved stream.
    ///
    /// With `&mut NoopSink` this is exactly
    /// [`Simulation::run_with_failures`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_with_failures`].
    pub fn run_with_failures_traced<S: OnlineScheduler + ?Sized, K: TraceSink>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
        sink: &mut K,
    ) -> Result<FaultRunReport, SimError> {
        self.fault_run(scheduler, failures, policy, None, sink)
    }

    /// Like [`Simulation::run_with_failures`], with the graceful-
    /// degradation layer active: degraded-mode admission headroom while
    /// a failure domain (or cascade outage) is down, revenue-aware load
    /// shedding when re-placements find no room, bounded retries with
    /// exponential backoff per failure episode, and — when
    /// [`DegradationConfig::audit`] is set — a per-slot invariant audit
    /// attached to the report. See [`DegradationConfig`] for the knobs.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_with_failures`], plus
    /// [`SimError::Mismatch`] for invalid degradation knobs.
    pub fn run_degraded<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
        config: &DegradationConfig,
    ) -> Result<FaultRunReport, SimError> {
        self.fault_run(scheduler, failures, policy, Some(config), &mut NoopSink)
    }

    /// Like [`Simulation::run_degraded`], recording fault-lifecycle,
    /// degradation ([`TraceEvent::Eviction`], [`TraceEvent::DegradedEnter`]
    /// / [`TraceEvent::DegradedExit`], [`TraceEvent::Cascade`],
    /// [`TraceEvent::DomainOutageStart`] / [`TraceEvent::DomainOutageEnd`])
    /// and [`TraceEvent::AuditViolation`] events into `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_degraded`].
    pub fn run_degraded_traced<S: OnlineScheduler + ?Sized, K: TraceSink>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
        config: &DegradationConfig,
        sink: &mut K,
    ) -> Result<FaultRunReport, SimError> {
        self.fault_run(scheduler, failures, policy, Some(config), sink)
    }

    /// The shared slot loop behind [`Simulation::run_with_failures`] and
    /// [`Simulation::run_degraded`]. With `degradation = None` this is
    /// exactly the five-step loop documented on
    /// [`Simulation::run_with_failures`]; a config adds the headroom
    /// veto (step 2), load shedding and backoff (step 4), and the
    /// end-of-slot audit. Cascade outages replay whenever the failure
    /// stream carries a [`CascadeConfig`](crate::CascadeConfig),
    /// degradation or not, so the same trace stresses every policy
    /// identically.
    fn fault_run<S: OnlineScheduler + ?Sized, K: TraceSink>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
        degradation: Option<&DegradationConfig>,
        sink: &mut K,
    ) -> Result<FaultRunReport, SimError> {
        let m = self.instance.network().cloudlets().count();
        if failures.horizon_len() != self.instance.horizon().len() {
            return Err(SimError::Mismatch(
                "failure stream horizon does not match the instance",
            ));
        }
        if failures.iter().any(|e| e.cloudlet() >= m) {
            return Err(SimError::Mismatch(
                "failure stream references unknown cloudlet",
            ));
        }
        if (0..failures.domain_count()).any(|d| failures.domain_members(d).iter().any(|&j| j >= m))
        {
            return Err(SimError::Mismatch(
                "failure stream domain references unknown cloudlet",
            ));
        }
        if let Some(cfg) = degradation {
            cfg.validate()?;
        }
        let cascade_cfg = failures.cascade().copied();
        let recovery_scheme = policy.scheme_for(scheduler.scheme());
        let mut schedule = Schedule::new();
        let mut timeline = vec![FaultSlotStats::default(); self.instance.horizon().len()];
        // `up` is the effective state (base process AND cascade overlay);
        // `base_up` replays the trace's net transitions alone.
        let mut up = vec![true; m];
        let mut base_up = vec![true; m];
        let mut cascade_until: Vec<Option<TimeSlot>> = vec![None; m];
        let mut domain_down = vec![false; failures.domain_count()];
        let mut degraded = false;
        let mut deg_stats = DegradationStats::default();
        let mut auditor = match degradation {
            Some(cfg) if cfg.audit => Some(Auditor::new(m)),
            _ => None,
        };
        let mut live: Vec<Option<LiveReq>> = (0..self.requests.len()).map(|_| None).collect();

        for t in self.instance.horizon().slots() {
            let stats = &mut timeline[t];
            if let Some(a) = auditor.as_mut() {
                a.begin_slot(t);
            }

            // 0. Cascade outages whose forced window ended are lifted
            //    (unless the base process still holds the cloudlet down).
            for j in 0..m {
                if matches!(cascade_until[j], Some(end) if end <= t) {
                    cascade_until[j] = None;
                    if base_up[j] && !up[j] {
                        up[j] = true;
                        if K::ENABLED {
                            sink.record(TraceEvent::OutageEnd {
                                slot: t,
                                cloudlet: j,
                            });
                        }
                    }
                }
            }

            // 1. Apply this slot's outage events. Domain markers first —
            //    they carry the shared-risk grouping for tracing and
            //    degraded-mode tracking; the matching net per-cloudlet
            //    transitions arrive through the event stream itself.
            for de in failures.domain_events_at(t) {
                match *de {
                    DomainEvent::Down { domain, .. } => {
                        domain_down[domain] = true;
                        if K::ENABLED {
                            sink.record(TraceEvent::DomainOutageStart {
                                slot: t,
                                domain,
                                cloudlets: failures.domain_members(domain).to_vec(),
                            });
                        }
                    }
                    DomainEvent::Up { domain, .. } => {
                        domain_down[domain] = false;
                        if K::ENABLED {
                            sink.record(TraceEvent::DomainOutageEnd { slot: t, domain });
                        }
                    }
                }
            }
            for e in failures.events_at(t) {
                stats.events += 1;
                match *e {
                    FailureEvent::CloudletDown { cloudlet: j, .. } => {
                        base_up[j] = false;
                        if !up[j] {
                            // Already held down by a cascade overlay; its
                            // sites were released when the cascade fired.
                            continue;
                        }
                        up[j] = false;
                        if K::ENABLED {
                            sink.record(TraceEvent::OutageStart {
                                slot: t,
                                cloudlet: j,
                            });
                        }
                        for (i, entry) in live.iter_mut().enumerate() {
                            let Some(lr) = entry else { continue };
                            let r = &self.requests[i];
                            if t > r.end_slot() {
                                continue;
                            }
                            if let Some(pos) = lr.sites.iter().position(|&(c, _)| c == j) {
                                let (_, n) = lr.sites.remove(pos);
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=r.end_slot(),
                                    f64::from(n) * lr.per_instance,
                                )?;
                            }
                        }
                    }
                    FailureEvent::CloudletUp { cloudlet: j, .. } => {
                        base_up[j] = true;
                        if cascade_until[j].is_none() && !up[j] {
                            up[j] = true;
                            if K::ENABLED {
                                sink.record(TraceEvent::OutageEnd {
                                    slot: t,
                                    cloudlet: j,
                                });
                            }
                        }
                    }
                    FailureEvent::InstanceKill {
                        cloudlet: j,
                        selector,
                        ..
                    } => {
                        if !up[j] {
                            continue;
                        }
                        let total: u64 = live
                            .iter()
                            .enumerate()
                            .filter_map(|(i, entry)| {
                                let lr = entry.as_ref()?;
                                if t > self.requests[i].end_slot() {
                                    return None;
                                }
                                lr.sites
                                    .iter()
                                    .find(|&&(c, _)| c == j)
                                    .map(|&(_, n)| u64::from(n))
                            })
                            .sum();
                        if total == 0 {
                            continue;
                        }
                        let mut victim = selector % total;
                        for (i, entry) in live.iter_mut().enumerate() {
                            let Some(lr) = entry else { continue };
                            let r = &self.requests[i];
                            if t > r.end_slot() {
                                continue;
                            }
                            let Some(pos) = lr.sites.iter().position(|&(c, _)| c == j) else {
                                continue;
                            };
                            let n = u64::from(lr.sites[pos].1);
                            if victim < n {
                                lr.sites[pos].1 -= 1;
                                if lr.sites[pos].1 == 0 {
                                    lr.sites.remove(pos);
                                }
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=r.end_slot(),
                                    lr.per_instance,
                                )?;
                                if K::ENABLED {
                                    sink.record(TraceEvent::InstanceKill {
                                        slot: t,
                                        cloudlet: j,
                                        request: i,
                                    });
                                }
                                break;
                            }
                            victim -= n;
                        }
                    }
                }
            }
            if let Some(a) = auditor.as_mut() {
                a.apply_events(failures.events_at(t));
            }

            // 1b. Cascade check: when a domain crashed this slot, every
            //     surviving cloudlet whose committed load exceeds the
            //     threshold faces the elevated secondary hazard. The
            //     uniform deciding each (slot, cloudlet) was pre-drawn at
            //     generation time, so replays stay seed-deterministic.
            let domain_crashed = failures
                .domain_events_at(t)
                .iter()
                .any(|e| matches!(e, DomainEvent::Down { .. }));
            if let (Some(cc), true) = (&cascade_cfg, domain_crashed) {
                for j in 0..m {
                    if !up[j] {
                        continue;
                    }
                    let cap = scheduler.ledger().capacity(CloudletId(j));
                    if cap <= 0.0 {
                        continue;
                    }
                    let util = scheduler.ledger().used(CloudletId(j), t) / cap;
                    if util <= cc.utilization_threshold || failures.cascade_draw(t, j) >= cc.hazard
                    {
                        continue;
                    }
                    up[j] = false;
                    cascade_until[j] = Some(t + cc.outage_slots);
                    deg_stats.cascades += 1;
                    stats.events += 1;
                    if let Some(a) = auditor.as_mut() {
                        a.note_cascade(j, t + cc.outage_slots);
                    }
                    if K::ENABLED {
                        sink.record(TraceEvent::Cascade {
                            slot: t,
                            cloudlet: j,
                            utilization: util,
                        });
                        sink.record(TraceEvent::OutageStart {
                            slot: t,
                            cloudlet: j,
                        });
                    }
                    for (i, entry) in live.iter_mut().enumerate() {
                        let Some(lr) = entry else { continue };
                        let r = &self.requests[i];
                        if t > r.end_slot() {
                            continue;
                        }
                        if let Some(pos) = lr.sites.iter().position(|&(c, _)| c == j) {
                            let (_, n) = lr.sites.remove(pos);
                            scheduler.ledger_mut().release(
                                CloudletId(j),
                                t..=r.end_slot(),
                                f64::from(n) * lr.per_instance,
                            )?;
                        }
                    }
                }
            }

            // 1c. Degraded-mode tracking: active while any failure domain
            //     or cascade outage is unrepaired.
            if degradation.is_some() {
                let now =
                    domain_down.iter().any(|&d| d) || cascade_until.iter().any(Option::is_some);
                if now != degraded {
                    degraded = now;
                    if K::ENABLED {
                        sink.record(if now {
                            TraceEvent::DegradedEnter { slot: t }
                        } else {
                            TraceEvent::DegradedExit { slot: t }
                        });
                    }
                }
                if degraded {
                    deg_stats.degraded_slots += 1;
                }
            }

            // 2. Offer this slot's arrivals to the scheduler.
            for &i in &self.by_slot[t] {
                let r = &self.requests[i];
                let mut decision = scheduler.decide(r);
                stats.arrivals += 1;
                // Degraded mode: overturn admissions that would eat into
                // the recovery headroom on any of their hosting cloudlets.
                if degraded && decision.is_admit() {
                    if let Some(cfg) = degradation {
                        let vnf = self
                            .instance
                            .catalog()
                            .get(r.vnf())
                            .ok_or(SimError::Mismatch("request references unknown vnf type"))?;
                        let per = vnf.compute() as f64;
                        let sites = decision
                            .placement()
                            .map(LiveReq::sites_of)
                            .unwrap_or_default();
                        let breaches = sites.iter().any(|&(j, _)| {
                            let limit =
                                (1.0 - cfg.headroom) * scheduler.ledger().capacity(CloudletId(j));
                            (t..=r.end_slot())
                                .any(|s| scheduler.ledger().used(CloudletId(j), s) > limit + 1e-9)
                        });
                        if breaches {
                            for &(j, n) in &sites {
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=r.end_slot(),
                                    f64::from(n) * per,
                                )?;
                            }
                            decision = vnfrel::Decision::Reject;
                            deg_stats.vetoed_admissions += 1;
                        }
                    }
                }
                let placement = decision.placement().cloned();
                schedule.record(r, decision);
                let Some(p) = placement else { continue };
                stats.admitted += 1;
                let vnf = self
                    .instance
                    .catalog()
                    .get(r.vnf())
                    .ok_or(SimError::Mismatch("request references unknown vnf type"))?;
                let mut lr = LiveReq {
                    sites: LiveReq::sites_of(&p),
                    per_instance: vnf.compute() as f64,
                    vnf_rel: vnf.reliability(),
                    down_since: None,
                    downtime_slots: 0,
                    failures: 0,
                    recovery_attempts: 0,
                    recoveries: 0,
                    repair_latency_slots: 0,
                    evicted: false,
                    episode_attempts: 0,
                    retry_at: t,
                };
                // The scheduler is outage-blind: strip (and refund) any
                // site it placed on a cloudlet that is currently down.
                let mut k = 0;
                while k < lr.sites.len() {
                    let (j, n) = lr.sites[k];
                    if up[j] {
                        k += 1;
                    } else {
                        scheduler.ledger_mut().release(
                            CloudletId(j),
                            t..=r.end_slot(),
                            f64::from(n) * lr.per_instance,
                        )?;
                        lr.sites.remove(k);
                    }
                }
                live[i] = Some(lr);
            }

            // 3. Re-check every active placement against R_i.
            for (i, entry) in live.iter_mut().enumerate() {
                let Some(lr) = entry else { continue };
                let r = &self.requests[i];
                if t > r.end_slot() {
                    continue;
                }
                stats.active += 1;
                if lr.down_since.is_some() {
                    continue;
                }
                let avail = surviving_availability(self.instance, lr.vnf_rel, &lr.sites);
                if avail + 1e-12 < r.reliability_requirement().value() {
                    for &(j, n) in &lr.sites {
                        scheduler.ledger_mut().release(
                            CloudletId(j),
                            t..=r.end_slot(),
                            f64::from(n) * lr.per_instance,
                        )?;
                    }
                    lr.sites.clear();
                    lr.down_since = Some(t);
                    lr.failures += 1;
                    lr.episode_attempts = 0;
                    lr.retry_at = t;
                    stats.newly_failed += 1;
                    if K::ENABLED {
                        sink.record(TraceEvent::SlaBreach {
                            slot: t,
                            request: i,
                        });
                    }
                }
            }

            // 4. Attempt recovery for every down request, id order. The
            //    degradation layer adds bounded retries with exponential
            //    backoff and, when an attempt finds no room, evicts
            //    retained requests of strictly lower payment density
            //    (ascending) until the re-placement fits.
            if let Some(scheme) = recovery_scheme {
                for i in 0..live.len() {
                    let r = &self.requests[i];
                    let Some(fail_slot) = live[i].as_ref().and_then(|lr| {
                        if t > r.end_slot() || lr.evicted {
                            None
                        } else {
                            lr.down_since
                        }
                    }) else {
                        continue;
                    };
                    let per_instance = live[i].as_ref().map(|lr| lr.per_instance).unwrap_or(0.0);
                    if let Some(cfg) = degradation {
                        let lr = live[i].as_ref().expect("down request is live");
                        if lr.episode_attempts >= cfg.max_retries || t < lr.retry_at {
                            continue;
                        }
                    }
                    live[i]
                        .as_mut()
                        .expect("down request is live")
                        .recovery_attempts += 1;
                    let mut placed = recovery::try_replace(
                        self.instance,
                        scheduler.ledger_mut(),
                        r,
                        t,
                        &up,
                        scheme,
                    );
                    if placed.is_none() && degradation.is_some_and(|cfg| cfg.shed) {
                        let my_density =
                            r.payment() / (r.duration() as f64 * per_instance).max(1e-12);
                        loop {
                            // Cheapest healthy victim strictly below the
                            // recovering request's density, id tie-break.
                            let mut best: Option<(f64, usize)> = None;
                            for (k, entry) in live.iter().enumerate() {
                                if k == i {
                                    continue;
                                }
                                let Some(l2) = entry else { continue };
                                let rk = &self.requests[k];
                                if t > rk.end_slot()
                                    || l2.down_since.is_some()
                                    || l2.sites.is_empty()
                                {
                                    continue;
                                }
                                let d2 = rk.payment()
                                    / (rk.duration() as f64 * l2.per_instance).max(1e-12);
                                if d2 + 1e-12 < my_density
                                    && best.is_none_or(|(bd, bk)| (d2, k) < (bd, bk))
                                {
                                    best = Some((d2, k));
                                }
                            }
                            let Some((d2, k)) = best else { break };
                            let rk = &self.requests[k];
                            let l2 = live[k].as_mut().expect("victim is live");
                            for &(j, n) in &l2.sites {
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=rk.end_slot(),
                                    f64::from(n) * l2.per_instance,
                                )?;
                            }
                            l2.sites.clear();
                            l2.evicted = true;
                            l2.down_since = Some(t);
                            deg_stats.evictions += 1;
                            stats.evicted += 1;
                            if K::ENABLED {
                                sink.record(TraceEvent::Eviction {
                                    slot: t,
                                    request: k,
                                    density: d2,
                                });
                            }
                            placed = recovery::try_replace(
                                self.instance,
                                scheduler.ledger_mut(),
                                r,
                                t,
                                &up,
                                scheme,
                            );
                            if placed.is_some() {
                                break;
                            }
                        }
                    }
                    let lr = live[i].as_mut().expect("down request is live");
                    match placed {
                        Some(p) => {
                            lr.sites = LiveReq::sites_of(&p);
                            lr.recoveries += 1;
                            lr.repair_latency_slots += t - fail_slot;
                            lr.down_since = None;
                            lr.episode_attempts = 0;
                            lr.retry_at = t;
                            stats.recovered += 1;
                            if K::ENABLED {
                                sink.record(TraceEvent::Recovery {
                                    slot: t,
                                    request: i,
                                    success: true,
                                    cloudlets: lr.sites.iter().map(|&(c, _)| c).collect(),
                                });
                            }
                        }
                        None => {
                            if let Some(cfg) = degradation {
                                lr.episode_attempts += 1;
                                if lr.episode_attempts >= cfg.max_retries {
                                    deg_stats.retries_exhausted += 1;
                                } else {
                                    let shift = (lr.episode_attempts - 1).min(16) as u32;
                                    lr.retry_at =
                                        t + cfg.backoff_base.saturating_mul(1usize << shift);
                                }
                            }
                            if K::ENABLED {
                                sink.record(TraceEvent::Recovery {
                                    slot: t,
                                    request: i,
                                    success: false,
                                    cloudlets: Vec::new(),
                                });
                            }
                        }
                    }
                }
            }

            // 5. SLA accounting: a slot spent down is a violated slot.
            for (i, entry) in live.iter_mut().enumerate() {
                let Some(lr) = entry else { continue };
                if t > self.requests[i].end_slot() {
                    continue;
                }
                if lr.down_since.is_some() {
                    lr.downtime_slots += 1;
                    stats.violated += 1;
                }
            }

            // 6. Invariant audit over the end-of-slot state.
            if let Some(a) = auditor.as_mut() {
                let views: Vec<LiveView<'_>> = live
                    .iter()
                    .enumerate()
                    .filter_map(|(i, entry)| {
                        let lr = entry.as_ref()?;
                        let r = &self.requests[i];
                        if t > r.end_slot() {
                            return None;
                        }
                        Some(LiveView {
                            request: i,
                            end_slot: r.end_slot(),
                            requirement: r.reliability_requirement().value(),
                            vnf_rel: lr.vnf_rel,
                            per_instance: lr.per_instance,
                            sites: &lr.sites,
                            healthy: lr.down_since.is_none(),
                        })
                    })
                    .collect();
                let first = a.check_slot(t, self.instance, scheduler.ledger(), &up, &views);
                if K::ENABLED {
                    for v in a.violations_since(first) {
                        sink.record(TraceEvent::AuditViolation {
                            slot: t,
                            invariant: v.invariant.as_str().to_string(),
                            detail: v.detail.clone(),
                        });
                    }
                }
            }
        }

        let mut records = Vec::new();
        for (i, entry) in live.iter().enumerate() {
            let Some(lr) = entry else { continue };
            let r = &self.requests[i];
            records.push(SlaRecord {
                request: r.id(),
                payment: r.payment(),
                duration: r.duration(),
                downtime_slots: lr.downtime_slots,
                failures: lr.failures,
                recovery_attempts: lr.recovery_attempts,
                recoveries: lr.recoveries,
                repair_latency_slots: lr.repair_latency_slots,
                unrecovered: lr.down_since.is_some(),
                evicted: lr.evicted,
            });
        }
        let metrics = RunMetrics {
            algorithm: scheduler.name().to_string(),
            revenue: schedule.revenue(),
            admitted: schedule.admitted_count(),
            total: self.requests.len(),
            mean_utilization: scheduler.ledger().mean_utilization(),
            max_overflow: scheduler.ledger().max_overflow(),
            dual_bound: None,
        };
        Ok(FaultRunReport {
            schedule,
            metrics,
            sla: SlaReport { records },
            timeline,
            policy,
            audit: auditor.map(Auditor::finish),
            degradation: degradation.map(|_| deg_stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, RequestId, VnfCatalog, VnfTypeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 30, Reliability::new(0.999).unwrap())
            .unwrap();
        b.add_cloudlet(c, 30, Reliability::new(0.995).unwrap())
            .unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12)).unwrap()
    }

    #[test]
    fn runs_and_validates() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(50, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let report = sim.run(&mut alg).unwrap();
        assert!(report.validation.is_feasible());
        assert_eq!(report.metrics.total, 50);
        assert_eq!(report.schedule.len(), 50);
        // Timeline arrivals sum to the request count.
        let arrivals: usize = report.timeline.iter().map(|s| s.arrivals).sum();
        assert_eq!(arrivals, 50);
        // Active counts are consistent with admitted windows.
        let active: usize = report.timeline.iter().map(|s| s.active).sum();
        let expected: usize = reqs
            .iter()
            .filter(|r| report.schedule.is_admitted(r.id()))
            .map(|r| r.duration())
            .sum();
        assert_eq!(active, expected);
        // Revenue trajectory is non-decreasing and ends at the total.
        assert_eq!(report.cumulative_revenue.len(), 12);
        for w in report.cumulative_revenue.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((report.cumulative_revenue.last().unwrap() - report.metrics.revenue).abs() < 1e-9);
    }

    #[test]
    fn slot_stepping_preserves_arrival_order() {
        let inst = instance();
        // Handcrafted requests across slots: ids dense in arrival order.
        let h = inst.horizon();
        let mk = |id: usize, arrival: usize| {
            Request::new(
                RequestId(id),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                arrival,
                1,
                2.0,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 0), mk(1, 0), mk(2, 3), mk(3, 7)];
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim.run(&mut g).unwrap();
        assert_eq!(report.timeline[0].arrivals, 2);
        assert_eq!(report.timeline[3].arrivals, 1);
        assert_eq!(report.timeline[7].arrivals, 1);
        assert_eq!(report.timeline[1].arrivals, 0);
    }

    #[test]
    fn ordered_runs_cover_all_requests_and_stay_feasible() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = RequestGenerator::new(inst.horizon())
            .payment_rate_band(1.0, 10.0)
            .unwrap()
            .generate(80, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        for order in [
            IntraSlotOrder::Arrival,
            IntraSlotOrder::PaymentDescending,
            IntraSlotOrder::DensityDescending,
        ] {
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim.run_ordered(&mut g, order).unwrap();
            assert_eq!(report.schedule.len(), 80, "{order:?}");
            assert!(report.validation.is_feasible(), "{order:?}");
        }
        // Arrival order through run_ordered equals plain run.
        let mut a = OnsiteGreedy::new(&inst);
        let ra = sim.run(&mut a).unwrap();
        let mut b = OnsiteGreedy::new(&inst);
        let rb = sim.run_ordered(&mut b, IntraSlotOrder::Arrival).unwrap();
        assert_eq!(ra.schedule, rb.schedule);
    }

    #[test]
    fn payment_ordering_reorders_same_slot_batch() {
        // Two same-slot requests where only one fits: payment ordering
        // must pick the big payer, arrival ordering the first.
        let inst = {
            let mut b = NetworkBuilder::new();
            let a = b.add_ap("a");
            b.add_cloudlet(a, 1, Reliability::new(0.999).unwrap())
                .unwrap();
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(4))
                .unwrap()
        };
        let h = inst.horizon();
        let mk = |id: usize, pay: f64| {
            Request::new(
                RequestId(id),
                VnfTypeId(1), // NAT: compute 1, N=1 here
                Reliability::new(0.9).unwrap(),
                0,
                2,
                pay,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 1.0), mk(1, 50.0)];
        let sim = Simulation::new(&inst, &reqs).unwrap();

        let mut g = OnsiteGreedy::new(&inst);
        let arrival = sim.run(&mut g).unwrap();
        assert!(arrival.schedule.is_admitted(RequestId(0)));
        assert!(!arrival.schedule.is_admitted(RequestId(1)));

        let mut g = OnsiteGreedy::new(&inst);
        let paid = sim
            .run_ordered(&mut g, IntraSlotOrder::PaymentDescending)
            .unwrap();
        assert!(!paid.schedule.is_admitted(RequestId(0)));
        assert!(paid.schedule.is_admitted(RequestId(1)));
        assert!(paid.metrics.revenue > arrival.metrics.revenue);
    }

    mod faults {
        use super::*;
        use crate::fault::{FailureConfig, FailureEvent, FailureProcess};
        use crate::recovery::RecoveryPolicy;

        /// One request, slots 0..=5: both cloudlets crash in slot 2, and
        /// cloudlet 1 is repaired in slot 3. Schedule-independent — the
        /// request is wiped out wherever it was placed.
        fn outage_trace(h: Horizon) -> FailureProcess {
            FailureProcess::from_events(
                h,
                vec![
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 0,
                    },
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 1,
                    },
                    FailureEvent::CloudletUp {
                        slot: 3,
                        cloudlet: 1,
                    },
                ],
                FailureConfig::default(),
            )
            .unwrap()
        }

        fn one_request(h: Horizon) -> Vec<Request> {
            vec![Request::new(
                RequestId(0),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                0,
                6,
                10.0,
                h,
            )
            .unwrap()]
        }

        #[test]
        fn fault_free_run_matches_plain_run() {
            let inst = instance();
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let reqs = RequestGenerator::new(inst.horizon())
                .generate(50, inst.catalog(), &mut rng)
                .unwrap();
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let empty =
                FailureProcess::from_events(inst.horizon(), [], FailureConfig::default()).unwrap();
            let mut a = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
            let plain = sim.run(&mut a).unwrap();
            let mut b = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
            let faulty = sim
                .run_with_failures(&mut b, &empty, RecoveryPolicy::SchemeMatching)
                .unwrap();
            assert_eq!(plain.schedule, faulty.schedule);
            assert_eq!(plain.metrics, faulty.metrics);
            assert_eq!(faulty.sla.violated_request_slots(), 0);
            assert_eq!(faulty.sla.total_failures(), 0);
            assert_eq!(faulty.sla.records.len(), faulty.schedule.admitted_count());
            assert!((faulty.sla.revenue_refunded()).abs() < 1e-12);
            assert!((faulty.sla.revenue_retained() - plain.metrics.revenue).abs() < 1e-9);
            for (p, f) in plain.timeline.iter().zip(&faulty.timeline) {
                assert_eq!(
                    (p.arrivals, p.admitted, p.active),
                    (f.arrivals, f.admitted, f.active)
                );
                assert_eq!(f.events + f.newly_failed + f.recovered + f.violated, 0);
            }
        }

        #[test]
        fn outage_without_recovery_accrues_downtime() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::None)
                .unwrap();
            assert!(report.schedule.is_admitted(RequestId(0)));
            let rec = &report.sla.records[0];
            assert_eq!(rec.failures, 1);
            assert_eq!(rec.recovery_attempts, 0);
            assert_eq!(rec.recoveries, 0);
            // Down from slot 2 through the window end (slot 5).
            assert_eq!(rec.downtime_slots, 4);
            assert!(rec.unrecovered);
            assert!((rec.refund() - 10.0 * 4.0 / 6.0).abs() < 1e-12);
            assert_eq!(report.sla.violated_request_slots(), 4);
            assert_eq!(report.timeline[2].newly_failed, 1);
            // The dead placement's remaining capacity was refunded.
            for j in 0..2 {
                for t in 2..6 {
                    assert_eq!(g.ledger().used(mec_topology::CloudletId(j), t), 0.0);
                }
            }
        }

        #[test]
        fn recovery_restores_service_after_repair() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            let rec = &report.sla.records[0];
            assert_eq!(rec.failures, 1);
            // Slot 2: everything down, attempt fails. Slot 3: cloudlet 1
            // is back, re-placement succeeds.
            assert_eq!(rec.recovery_attempts, 2);
            assert_eq!(rec.recoveries, 1);
            assert_eq!(rec.downtime_slots, 1);
            assert_eq!(rec.repair_latency_slots, 1);
            assert!(!rec.unrecovered);
            assert_eq!(report.sla.violated_request_slots(), 1);
            assert_eq!(report.timeline[3].recovered, 1);
            // Strictly better than no recovery on the same trace.
            let mut g2 = OnsiteGreedy::new(&inst);
            let none = sim
                .run_with_failures(&mut g2, &trace, RecoveryPolicy::None)
                .unwrap();
            assert!(report.sla.violated_request_slots() < none.sla.violated_request_slots());
            // The replacement landed on the repaired cloudlet 1 for the
            // remaining window (slots 3..=5).
            assert!(g.ledger().used(mec_topology::CloudletId(1), 4) > 0.0);
            assert_eq!(g.ledger().used(mec_topology::CloudletId(0), 4), 0.0);
        }

        #[test]
        fn traced_fault_run_emits_lifecycle_events() {
            use mec_obs::RingSink;

            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());

            // The traced run must not change behaviour at all.
            let mut g0 = OnsiteGreedy::new(&inst);
            let plain = sim
                .run_with_failures(&mut g0, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            let mut sink = RingSink::new(64);
            let traced = sim
                .run_with_failures_traced(&mut g, &trace, RecoveryPolicy::SchemeMatching, &mut sink)
                .unwrap();
            assert_eq!(plain, traced);

            let events = sink.into_events();
            let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
            // Two crashes, one repair from the injected trace.
            assert_eq!(count("outage-start"), 2);
            assert_eq!(count("outage-end"), 1);
            // One SLA breach (slot 2) and two recovery attempts: the
            // slot-2 attempt fails, the slot-3 one succeeds.
            assert_eq!(count("sla-breach"), 1);
            let recoveries: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Recovery {
                        slot,
                        success,
                        cloudlets,
                        ..
                    } => Some((*slot, *success, cloudlets.clone())),
                    _ => None,
                })
                .collect();
            assert_eq!(recoveries.len(), 2);
            assert_eq!((recoveries[0].0, recoveries[0].1), (2, false));
            assert_eq!((recoveries[1].0, recoveries[1].1), (3, true));
            // The successful re-placement names the repaired cloudlet.
            assert_eq!(recoveries[1].2, vec![1]);
            // Counts line up with the SLA ledger.
            assert_eq!(count("sla-breach"), traced.sla.total_failures());
            assert_eq!(
                recoveries.iter().filter(|r| r.1).count(),
                traced.timeline.iter().map(|s| s.recovered).sum::<usize>()
            );
        }

        #[test]
        fn mismatched_traces_are_rejected() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            // Wrong horizon.
            let short =
                FailureProcess::from_events(Horizon::new(5), [], FailureConfig::default()).unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            assert!(sim
                .run_with_failures(&mut g, &short, RecoveryPolicy::None)
                .is_err());
            // Unknown cloudlet index.
            let alien = FailureProcess::from_events(
                inst.horizon(),
                [FailureEvent::CloudletDown {
                    slot: 0,
                    cloudlet: 7,
                }],
                FailureConfig::default(),
            )
            .unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            assert!(sim
                .run_with_failures(&mut g, &alien, RecoveryPolicy::None)
                .is_err());
        }

        #[test]
        fn instance_kill_degrades_offsite_placements() {
            // Off-site placement across several cloudlets: killing one
            // instance releases exactly that instance's share and the
            // availability re-check decides survival.
            let mut b = NetworkBuilder::new();
            let mut prev = None;
            for i in 0..4 {
                let ap = b.add_ap(format!("ap{i}"));
                if let Some(p) = prev {
                    b.add_link(p, ap, 1.0).unwrap();
                }
                prev = Some(ap);
                b.add_cloudlet(ap, 30, Reliability::new(0.95).unwrap())
                    .unwrap();
            }
            let inst =
                ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12))
                    .unwrap();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = FailureProcess::from_events(
                inst.horizon(),
                [FailureEvent::InstanceKill {
                    slot: 2,
                    cloudlet: 0,
                    selector: 11,
                }],
                FailureConfig::default(),
            )
            .unwrap();
            let mut g = vnfrel::offsite::OffsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            assert!(report.schedule.is_admitted(RequestId(0)));
            let rec = &report.sla.records[0];
            // Whether the surviving subset still meets R_i depends on the
            // original fan-out; either way the books must stay
            // consistent: no downtime without a failure, and a recovery
            // implies a preceding failure.
            assert!(rec.failures <= 1);
            assert!(rec.recoveries <= rec.failures);
            assert!(rec.downtime_slots <= 4);
            let events: usize = report.timeline.iter().map(|s| s.events).sum();
            assert_eq!(events, 1);
        }
    }

    mod degradation {
        use super::*;
        use crate::fault::{
            CascadeConfig, DomainEvent, FailureConfig, FailureEvent, FailureProcess,
        };
        use crate::recovery::RecoveryPolicy;
        use mec_obs::RingSink;

        /// Domain `{0, 1}` crashes in slot 2 and is repaired in slot 3,
        /// with matching net cloudlet transitions.
        fn domain_outage_trace(h: Horizon) -> FailureProcess {
            FailureProcess::from_events(
                h,
                [
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 0,
                    },
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 1,
                    },
                    FailureEvent::CloudletUp {
                        slot: 3,
                        cloudlet: 0,
                    },
                    FailureEvent::CloudletUp {
                        slot: 3,
                        cloudlet: 1,
                    },
                ],
                FailureConfig::default(),
            )
            .unwrap()
            .with_domain_events(
                vec![vec![0, 1]],
                [
                    DomainEvent::Down { slot: 2, domain: 0 },
                    DomainEvent::Up { slot: 3, domain: 0 },
                ],
            )
            .unwrap()
        }

        fn one_request(h: Horizon) -> Vec<Request> {
            vec![Request::new(
                RequestId(0),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                0,
                6,
                10.0,
                h,
            )
            .unwrap()]
        }

        #[test]
        fn fault_free_degraded_run_matches_recovery_run() {
            let inst = instance();
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let reqs = RequestGenerator::new(inst.horizon())
                .generate(50, inst.catalog(), &mut rng)
                .unwrap();
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let empty =
                FailureProcess::from_events(inst.horizon(), [], FailureConfig::default()).unwrap();
            let mut a = OnsiteGreedy::new(&inst);
            let plain = sim
                .run_with_failures(&mut a, &empty, RecoveryPolicy::SchemeMatching)
                .unwrap();
            let mut b = OnsiteGreedy::new(&inst);
            let deg = sim
                .run_degraded(
                    &mut b,
                    &empty,
                    RecoveryPolicy::SchemeMatching,
                    &DegradationConfig::default(),
                )
                .unwrap();
            assert_eq!(plain.schedule, deg.schedule);
            assert_eq!(plain.metrics, deg.metrics);
            assert_eq!(deg.degradation, Some(DegradationStats::default()));
            let audit = deg.audit.as_ref().expect("auditing enabled by default");
            assert!(audit.is_clean(), "{audit}");
            assert_eq!(audit.slots_checked, inst.horizon().len());
        }

        #[test]
        fn degradation_config_is_validated() {
            for cfg in [
                DegradationConfig {
                    headroom: 1.0,
                    ..DegradationConfig::default()
                },
                DegradationConfig {
                    headroom: f64::NAN,
                    ..DegradationConfig::default()
                },
                DegradationConfig {
                    max_retries: 0,
                    ..DegradationConfig::default()
                },
                DegradationConfig {
                    backoff_base: 0,
                    ..DegradationConfig::default()
                },
            ] {
                assert!(cfg.validate().is_err(), "{cfg:?}");
                let inst = instance();
                let reqs = one_request(inst.horizon());
                let sim = Simulation::new(&inst, &reqs).unwrap();
                let empty =
                    FailureProcess::from_events(inst.horizon(), [], FailureConfig::default())
                        .unwrap();
                let mut g = OnsiteGreedy::new(&inst);
                assert!(sim
                    .run_degraded(&mut g, &empty, RecoveryPolicy::SchemeMatching, &cfg)
                    .is_err());
            }
        }

        #[test]
        fn domain_outage_drives_degraded_lifecycle_and_beats_no_recovery() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = domain_outage_trace(inst.horizon());

            let mut g = OnsiteGreedy::new(&inst);
            let mut sink = RingSink::new(64);
            let report = sim
                .run_degraded_traced(
                    &mut g,
                    &trace,
                    RecoveryPolicy::SchemeMatching,
                    &DegradationConfig::default(),
                    &mut sink,
                )
                .unwrap();
            let events = sink.into_events();
            let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
            assert_eq!(count("domain-outage-start"), 1);
            assert_eq!(count("domain-outage-end"), 1);
            assert_eq!(count("degraded-enter"), 1);
            assert_eq!(count("degraded-exit"), 1);
            assert!(events
                .iter()
                .any(|e| matches!(e, TraceEvent::DegradedEnter { slot: 2 })));
            assert!(events
                .iter()
                .any(|e| matches!(e, TraceEvent::DegradedExit { slot: 3 })));

            let stats = report.degradation.unwrap();
            assert_eq!(stats.degraded_slots, 1);
            assert_eq!(stats.cascades, 0);
            assert_eq!(stats.evictions, 0);
            let rec = &report.sla.records[0];
            // Slot-2 attempt fails (whole fleet down), slot-3 succeeds
            // once the domain repairs; default backoff base 1 retries
            // exactly then.
            assert_eq!(rec.recovery_attempts, 2);
            assert_eq!(rec.recoveries, 1);
            assert_eq!(rec.downtime_slots, 1);
            let audit = report.audit.as_ref().unwrap();
            assert!(audit.is_clean(), "{audit}");

            // Strictly fewer violated slots and strictly more retained
            // revenue than no recovery on the identical trace.
            let mut g2 = OnsiteGreedy::new(&inst);
            let none = sim
                .run_with_failures(&mut g2, &trace, RecoveryPolicy::None)
                .unwrap();
            assert!(report.sla.violated_request_slots() < none.sla.violated_request_slots());
            assert!(report.sla.revenue_retained() > none.sla.revenue_retained());
        }

        #[test]
        fn headroom_veto_blocks_admissions_while_degraded() {
            let inst = instance();
            let h = inst.horizon();
            let mk = |id: usize, arrival: usize, dur: usize| {
                Request::new(
                    RequestId(id),
                    VnfTypeId(1),
                    Reliability::new(0.9).unwrap(),
                    arrival,
                    dur,
                    5.0,
                    h,
                )
                .unwrap()
            };
            // Request 0 holds one unit on cloudlet 0; cloudlet 1's
            // domain crashes in slot 1 and stays down, so request 1's
            // slot-2 arrival lands in degraded mode.
            let reqs = vec![mk(0, 0, 8), mk(1, 2, 4)];
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = FailureProcess::from_events(
                h,
                [FailureEvent::CloudletDown {
                    slot: 1,
                    cloudlet: 1,
                }],
                FailureConfig::default(),
            )
            .unwrap()
            .with_domain_events(vec![vec![1]], [DomainEvent::Down { slot: 1, domain: 0 }])
            .unwrap();

            // Without degradation the second request is admitted.
            let mut g = OnsiteGreedy::new(&inst);
            let plain = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            assert!(plain.schedule.is_admitted(RequestId(1)));

            // With a headroom reserve of 95% of each cloudlet the
            // two-unit load on cloudlet 0 breaches the cap and the
            // admission is overturned.
            let cfg = DegradationConfig {
                headroom: 0.95,
                ..DegradationConfig::default()
            };
            let mut g2 = OnsiteGreedy::new(&inst);
            let report = sim
                .run_degraded(&mut g2, &trace, RecoveryPolicy::SchemeMatching, &cfg)
                .unwrap();
            assert!(report.schedule.is_admitted(RequestId(0)));
            assert!(!report.schedule.is_admitted(RequestId(1)));
            let stats = report.degradation.unwrap();
            assert_eq!(stats.vetoed_admissions, 1);
            // Degraded from slot 1 to the end of the horizon.
            assert_eq!(stats.degraded_slots, h.len() - 1);
            assert!(report.metrics.revenue < plain.metrics.revenue);
            // The veto released the charge: cloudlet 0 carries exactly
            // request 0's unit over the contested window.
            for t in 2..6 {
                assert_eq!(g2.ledger().used(mec_topology::CloudletId(0), t), 1.0);
            }
            let audit = report.audit.as_ref().unwrap();
            assert!(audit.is_clean(), "{audit}");
        }

        #[test]
        fn shedder_evicts_cheaper_request_to_recover_denser_one() {
            // Two unit-capacity cloudlets: the cheap request takes the
            // reliable cloudlet 0, the dense one cloudlet 1. When
            // cloudlet 1's domain crashes, re-placement only fits by
            // evicting the cheap tenant.
            let mut b = NetworkBuilder::new();
            let a = b.add_ap("a");
            let c = b.add_ap("b");
            b.add_link(a, c, 1.0).unwrap();
            b.add_cloudlet(a, 1, Reliability::new(0.999).unwrap())
                .unwrap();
            b.add_cloudlet(c, 1, Reliability::new(0.995).unwrap())
                .unwrap();
            let inst =
                ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12))
                    .unwrap();
            let h = inst.horizon();
            let mk = |id: usize, pay: f64| {
                Request::new(
                    RequestId(id),
                    VnfTypeId(1),
                    Reliability::new(0.9).unwrap(),
                    0,
                    6,
                    pay,
                    h,
                )
                .unwrap()
            };
            let reqs = vec![mk(0, 1.0), mk(1, 50.0)];
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = FailureProcess::from_events(
                h,
                [FailureEvent::CloudletDown {
                    slot: 2,
                    cloudlet: 1,
                }],
                FailureConfig::default(),
            )
            .unwrap()
            .with_domain_events(vec![vec![1]], [DomainEvent::Down { slot: 2, domain: 0 }])
            .unwrap();

            let mut g = OnsiteGreedy::new(&inst);
            let mut sink = RingSink::new(64);
            let report = sim
                .run_degraded_traced(
                    &mut g,
                    &trace,
                    RecoveryPolicy::SchemeMatching,
                    &DegradationConfig::default(),
                    &mut sink,
                )
                .unwrap();
            let stats = report.degradation.unwrap();
            assert_eq!(stats.evictions, 1);
            let cheap = &report.sla.records[0];
            let dense = &report.sla.records[1];
            assert!(cheap.evicted);
            // Evicted in slot 2, down through the window end (slot 5).
            assert_eq!(cheap.downtime_slots, 4);
            assert!(!dense.evicted);
            assert_eq!(dense.recoveries, 1);
            // Same-slot re-placement: the dense request never loses a
            // whole slot.
            assert_eq!(dense.downtime_slots, 0);
            assert_eq!(report.sla.evicted_requests(), 1);
            let evictions: Vec<_> = sink
                .into_events()
                .into_iter()
                .filter_map(|e| match e {
                    TraceEvent::Eviction {
                        slot,
                        request,
                        density,
                    } => Some((slot, request, density)),
                    _ => None,
                })
                .collect();
            assert_eq!(evictions.len(), 1);
            assert_eq!((evictions[0].0, evictions[0].1), (2, 0));
            assert!((evictions[0].2 - 1.0 / 6.0).abs() < 1e-12);
            // The dense request ends on cloudlet 0 for the rest of its
            // window.
            assert_eq!(g.ledger().used(mec_topology::CloudletId(0), 4), 1.0);
            let audit = report.audit.as_ref().unwrap();
            assert!(audit.is_clean(), "{audit}");
            // Shedding retains strictly more revenue than refusing to
            // shed on the same trace.
            let no_shed = DegradationConfig {
                shed: false,
                ..DegradationConfig::default()
            };
            let mut g2 = OnsiteGreedy::new(&inst);
            let kept = sim
                .run_degraded(&mut g2, &trace, RecoveryPolicy::SchemeMatching, &no_shed)
                .unwrap();
            assert_eq!(kept.degradation.unwrap().evictions, 0);
            assert!(report.sla.revenue_retained() > kept.sla.revenue_retained());
        }

        #[test]
        fn backoff_spaces_retries_and_exhaustion_stops_them() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            // Fleet-wide crash in slot 2; cloudlet 1 repairs in slot 3.
            let trace = FailureProcess::from_events(
                inst.horizon(),
                [
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 0,
                    },
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 1,
                    },
                    FailureEvent::CloudletUp {
                        slot: 3,
                        cloudlet: 1,
                    },
                ],
                FailureConfig::default(),
            )
            .unwrap()
            .with_domain_events(vec![vec![0, 1]], [DomainEvent::Down { slot: 2, domain: 0 }])
            .unwrap();

            // backoff_base 2: the failed slot-2 attempt schedules the
            // retry for slot 4, deliberately skipping the slot-3 repair.
            let spaced = DegradationConfig {
                backoff_base: 2,
                ..DegradationConfig::default()
            };
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim
                .run_degraded(&mut g, &trace, RecoveryPolicy::SchemeMatching, &spaced)
                .unwrap();
            let rec = &report.sla.records[0];
            assert_eq!(rec.recovery_attempts, 2);
            assert_eq!(rec.recoveries, 1);
            assert_eq!(rec.downtime_slots, 2);
            assert_eq!(report.degradation.unwrap().retries_exhausted, 0);

            // max_retries 1: the slot-2 failure exhausts the episode and
            // the request stays down even after the repair.
            let single = DegradationConfig {
                max_retries: 1,
                ..DegradationConfig::default()
            };
            let mut g2 = OnsiteGreedy::new(&inst);
            let report = sim
                .run_degraded(&mut g2, &trace, RecoveryPolicy::SchemeMatching, &single)
                .unwrap();
            let rec = &report.sla.records[0];
            assert_eq!(rec.recovery_attempts, 1);
            assert_eq!(rec.recoveries, 0);
            assert!(rec.unrecovered);
            assert_eq!(rec.downtime_slots, 4);
            assert_eq!(report.degradation.unwrap().retries_exhausted, 1);
            let audit = report.audit.as_ref().unwrap();
            assert!(audit.is_clean(), "{audit}");
        }

        #[test]
        fn hot_survivor_cascades_after_domain_crash() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            // Domain {1} crashes in slot 2; the pre-drawn uniforms are
            // all zero so any loaded survivor above the (tiny) threshold
            // cascades with certainty for two slots.
            let cascade = CascadeConfig {
                utilization_threshold: 0.01,
                hazard: 0.3,
                outage_slots: 2,
            };
            let draws = vec![0.0; inst.horizon().len() * 2];
            let trace = FailureProcess::from_events(
                inst.horizon(),
                [FailureEvent::CloudletDown {
                    slot: 2,
                    cloudlet: 1,
                }],
                FailureConfig::default(),
            )
            .unwrap()
            .with_domain_events(vec![vec![1]], [DomainEvent::Down { slot: 2, domain: 0 }])
            .unwrap()
            .with_cascade(cascade, 2, draws)
            .unwrap();

            let mut g = OnsiteGreedy::new(&inst);
            let mut sink = RingSink::new(64);
            let report = sim
                .run_degraded_traced(
                    &mut g,
                    &trace,
                    RecoveryPolicy::SchemeMatching,
                    &DegradationConfig::default(),
                    &mut sink,
                )
                .unwrap();
            let stats = report.degradation.unwrap();
            // Only cloudlet 0 was loaded (the request lives there), so
            // exactly one secondary outage fires.
            assert_eq!(stats.cascades, 1);
            let events = sink.into_events();
            let cascades: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Cascade {
                        slot,
                        cloudlet,
                        utilization,
                    } => Some((*slot, *cloudlet, *utilization)),
                    _ => None,
                })
                .collect();
            assert_eq!(cascades.len(), 1);
            assert_eq!((cascades[0].0, cascades[0].1), (2, 0));
            assert!(cascades[0].2 > 0.01);
            let rec = &report.sla.records[0];
            assert_eq!(rec.failures, 1);
            // Down slots 2..4 while the cascade holds cloudlet 0 and the
            // domain holds cloudlet 1; the forced window lifts at slot 4
            // and the backoff schedule retries then.
            assert_eq!(rec.recoveries, 1);
            assert!(rec.downtime_slots >= 2);
            let audit = report.audit.as_ref().unwrap();
            assert!(audit.is_clean(), "{audit}");
            // The cascade counts as a fleet event in the timeline.
            assert_eq!(report.timeline[2].events, 2);
        }
    }

    #[test]
    fn rejects_mismatched_requests() {
        let inst = instance();
        let r = Request::new(
            RequestId(3), // non-dense
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            0,
            1,
            1.0,
            inst.horizon(),
        )
        .unwrap();
        assert!(Simulation::new(&inst, &[r]).is_err());
    }
}
