use mec_workload::Request;
use vnfrel::{
    validate_schedule, OnlineScheduler, ProblemInstance, Schedule, ValidationReport,
};

use crate::metrics::{RunMetrics, SlotStats};
use crate::SimError;

/// How requests arriving in the *same* slot are ordered before being
/// offered to the scheduler.
///
/// The paper's model is strictly one-by-one ([`IntraSlotOrder::Arrival`]).
/// A real hypervisor, however, sees a whole slot's batch at once and may
/// sort it — a mild, realistic form of lookahead that the ordering
/// ablation quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraSlotOrder {
    /// Arrival (id) order — the paper's online model.
    #[default]
    Arrival,
    /// Largest payment first.
    PaymentDescending,
    /// Largest payment per unit-slot of demand first (`pay/(c·d)`).
    DensityDescending,
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request decisions.
    pub schedule: Schedule,
    /// Aggregate statistics.
    pub metrics: RunMetrics,
    /// Independent feasibility check of the schedule.
    pub validation: ValidationReport,
    /// Per-slot arrival/admission/active counters.
    pub timeline: Vec<SlotStats>,
    /// Cumulative revenue after each slot's arrivals were processed —
    /// the online revenue trajectory.
    pub cumulative_revenue: Vec<f64>,
}

/// A slot-stepped simulation of the online admission process.
///
/// Requests are replayed in discrete time: at the beginning of each slot
/// the requests arriving in that slot are offered to the scheduler one by
/// one (the hypervisor model of Section III-B). The engine never peeks at
/// future arrivals, so any [`OnlineScheduler`] run through it experiences
/// a genuinely online stream.
///
/// # Example
///
/// ```
/// # use mec_sim::Simulation;
/// # use vnfrel::{ProblemInstance, onsite::{OnsitePrimalDual, CapacityPolicy}};
/// # use mec_topology::{NetworkBuilder, Reliability};
/// # use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let ap = b.add_ap("edge");
/// b.add_cloudlet(ap, 60, Reliability::new(0.999)?)?;
/// let inst = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(12))?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let reqs = RequestGenerator::new(inst.horizon()).generate(30, inst.catalog(), &mut rng)?;
/// let sim = Simulation::new(&inst, &reqs)?;
/// let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce)?;
/// let report = sim.run(&mut alg)?;
/// assert!(report.validation.is_feasible());
/// assert_eq!(report.metrics.total, 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation<'a> {
    instance: &'a ProblemInstance,
    requests: &'a [Request],
    /// Request indices grouped by arrival slot.
    by_slot: Vec<Vec<usize>>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation over a request stream.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`vnfrel::VnfrelError`] when the requests do not
    /// fit the instance (non-dense ids, unknown VNFs, bad windows).
    pub fn new(
        instance: &'a ProblemInstance,
        requests: &'a [Request],
    ) -> Result<Self, SimError> {
        instance.check_requests(requests)?;
        let mut by_slot = vec![Vec::new(); instance.horizon().len()];
        for (i, r) in requests.iter().enumerate() {
            by_slot[r.arrival()].push(i);
        }
        Ok(Simulation {
            instance,
            requests,
            by_slot,
        })
    }

    /// The instance being simulated.
    pub fn instance(&self) -> &ProblemInstance {
        self.instance
    }

    /// The request stream.
    pub fn requests(&self) -> &[Request] {
        self.requests
    }

    /// Replays the stream through `scheduler` and validates the result.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; scheduler decisions themselves are
    /// infallible.
    pub fn run<S: OnlineScheduler + ?Sized>(&self, scheduler: &mut S) -> Result<RunReport, SimError> {
        self.run_ordered(scheduler, IntraSlotOrder::Arrival)
    }

    /// Like [`Simulation::run`], but each slot's batch of arrivals is
    /// reordered by `order` before being offered to the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn run_ordered<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        order: IntraSlotOrder,
    ) -> Result<RunReport, SimError> {
        let mut schedule = Schedule::new();
        let mut timeline = vec![SlotStats::default(); self.instance.horizon().len()];
        let mut cumulative_revenue = Vec::with_capacity(self.instance.horizon().len());

        // Requests carry dense ids in arrival order, so iterating slots
        // and, within each slot, id order reproduces the arrival sequence.
        for t in self.instance.horizon().slots() {
            let mut batch: Vec<usize> = self.by_slot[t].clone();
            match order {
                IntraSlotOrder::Arrival => {}
                IntraSlotOrder::PaymentDescending => {
                    batch.sort_by(|&a, &b| {
                        self.requests[b]
                            .payment()
                            .partial_cmp(&self.requests[a].payment())
                            .expect("payments are finite")
                            .then(a.cmp(&b))
                    });
                }
                IntraSlotOrder::DensityDescending => {
                    let density = |i: usize| {
                        let r = &self.requests[i];
                        let c = self
                            .instance
                            .catalog()
                            .get(r.vnf())
                            .map(|v| v.compute())
                            .unwrap_or(1);
                        r.payment() / (c as f64 * r.duration() as f64)
                    };
                    batch.sort_by(|&a, &b| {
                        density(b)
                            .partial_cmp(&density(a))
                            .expect("densities are finite")
                            .then(a.cmp(&b))
                    });
                }
            }
            // Decide in the chosen order, but record in id order (the
            // Schedule requires dense recording).
            let mut decisions: Vec<(usize, vnfrel::Decision)> = batch
                .into_iter()
                .map(|i| (i, scheduler.decide(&self.requests[i])))
                .collect();
            decisions.sort_by_key(|&(i, _)| i);
            for (i, decision) in decisions {
                let r = &self.requests[i];
                timeline[t].arrivals += 1;
                if decision.is_admit() {
                    timeline[t].admitted += 1;
                    for slot in r.slots() {
                        timeline[slot].active += 1;
                    }
                }
                schedule.record(r, decision);
            }
            cumulative_revenue.push(schedule.revenue());
        }

        let validation = validate_schedule(
            self.instance,
            self.requests,
            &schedule,
            scheduler.scheme(),
        )?;
        let metrics = RunMetrics {
            algorithm: scheduler.name().to_string(),
            revenue: schedule.revenue(),
            admitted: schedule.admitted_count(),
            total: self.requests.len(),
            mean_utilization: scheduler.ledger().mean_utilization(),
            max_overflow: scheduler.ledger().max_overflow(),
            dual_bound: None,
        };
        Ok(RunReport {
            schedule,
            metrics,
            validation,
            timeline,
            cumulative_revenue,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, RequestId, VnfCatalog, VnfTypeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 30, Reliability::new(0.999).unwrap())
            .unwrap();
        b.add_cloudlet(c, 30, Reliability::new(0.995).unwrap())
            .unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12))
            .unwrap()
    }

    #[test]
    fn runs_and_validates() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(50, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let report = sim.run(&mut alg).unwrap();
        assert!(report.validation.is_feasible());
        assert_eq!(report.metrics.total, 50);
        assert_eq!(report.schedule.len(), 50);
        // Timeline arrivals sum to the request count.
        let arrivals: usize = report.timeline.iter().map(|s| s.arrivals).sum();
        assert_eq!(arrivals, 50);
        // Active counts are consistent with admitted windows.
        let active: usize = report.timeline.iter().map(|s| s.active).sum();
        let expected: usize = reqs
            .iter()
            .filter(|r| report.schedule.is_admitted(r.id()))
            .map(|r| r.duration())
            .sum();
        assert_eq!(active, expected);
        // Revenue trajectory is non-decreasing and ends at the total.
        assert_eq!(report.cumulative_revenue.len(), 12);
        for w in report.cumulative_revenue.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(
            (report.cumulative_revenue.last().unwrap() - report.metrics.revenue).abs() < 1e-9
        );
    }

    #[test]
    fn slot_stepping_preserves_arrival_order() {
        let inst = instance();
        // Handcrafted requests across slots: ids dense in arrival order.
        let h = inst.horizon();
        let mk = |id: usize, arrival: usize| {
            Request::new(
                RequestId(id),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                arrival,
                1,
                2.0,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 0), mk(1, 0), mk(2, 3), mk(3, 7)];
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim.run(&mut g).unwrap();
        assert_eq!(report.timeline[0].arrivals, 2);
        assert_eq!(report.timeline[3].arrivals, 1);
        assert_eq!(report.timeline[7].arrivals, 1);
        assert_eq!(report.timeline[1].arrivals, 0);
    }

    #[test]
    fn ordered_runs_cover_all_requests_and_stay_feasible() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = RequestGenerator::new(inst.horizon())
            .payment_rate_band(1.0, 10.0)
            .unwrap()
            .generate(80, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        for order in [
            IntraSlotOrder::Arrival,
            IntraSlotOrder::PaymentDescending,
            IntraSlotOrder::DensityDescending,
        ] {
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim.run_ordered(&mut g, order).unwrap();
            assert_eq!(report.schedule.len(), 80, "{order:?}");
            assert!(report.validation.is_feasible(), "{order:?}");
        }
        // Arrival order through run_ordered equals plain run.
        let mut a = OnsiteGreedy::new(&inst);
        let ra = sim.run(&mut a).unwrap();
        let mut b = OnsiteGreedy::new(&inst);
        let rb = sim.run_ordered(&mut b, IntraSlotOrder::Arrival).unwrap();
        assert_eq!(ra.schedule, rb.schedule);
    }

    #[test]
    fn payment_ordering_reorders_same_slot_batch() {
        // Two same-slot requests where only one fits: payment ordering
        // must pick the big payer, arrival ordering the first.
        let inst = {
            let mut b = NetworkBuilder::new();
            let a = b.add_ap("a");
            b.add_cloudlet(a, 1, Reliability::new(0.999).unwrap())
                .unwrap();
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(4))
                .unwrap()
        };
        let h = inst.horizon();
        let mk = |id: usize, pay: f64| {
            Request::new(
                RequestId(id),
                VnfTypeId(1), // NAT: compute 1, N=1 here
                Reliability::new(0.9).unwrap(),
                0,
                2,
                pay,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 1.0), mk(1, 50.0)];
        let sim = Simulation::new(&inst, &reqs).unwrap();

        let mut g = OnsiteGreedy::new(&inst);
        let arrival = sim.run(&mut g).unwrap();
        assert!(arrival.schedule.is_admitted(RequestId(0)));
        assert!(!arrival.schedule.is_admitted(RequestId(1)));

        let mut g = OnsiteGreedy::new(&inst);
        let paid = sim
            .run_ordered(&mut g, IntraSlotOrder::PaymentDescending)
            .unwrap();
        assert!(!paid.schedule.is_admitted(RequestId(0)));
        assert!(paid.schedule.is_admitted(RequestId(1)));
        assert!(paid.metrics.revenue > arrival.metrics.revenue);
    }

    #[test]
    fn rejects_mismatched_requests() {
        let inst = instance();
        let r = Request::new(
            RequestId(3), // non-dense
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            0,
            1,
            1.0,
            inst.horizon(),
        )
        .unwrap();
        assert!(Simulation::new(&inst, &[r]).is_err());
    }
}
