use std::time::Instant;

use mec_obs::{NoopSink, TraceEvent, TraceSink};
use mec_topology::{CloudletId, Reliability};
use mec_workload::{Request, TimeSlot};
use vnfrel::reliability::onsite_availability;
use vnfrel::{validate_schedule, OnlineScheduler, ProblemInstance, Schedule, ValidationReport};

use crate::fault::{FailureEvent, FailureProcess};
use crate::metrics::{FaultSlotStats, RunMetrics, SlaRecord, SlaReport, SlotStats};
use crate::obs::EngineMetrics;
use crate::recovery::{self, RecoveryPolicy};
use crate::SimError;

/// How requests arriving in the *same* slot are ordered before being
/// offered to the scheduler.
///
/// The paper's model is strictly one-by-one ([`IntraSlotOrder::Arrival`]).
/// A real hypervisor, however, sees a whole slot's batch at once and may
/// sort it — a mild, realistic form of lookahead that the ordering
/// ablation quantifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntraSlotOrder {
    /// Arrival (id) order — the paper's online model.
    #[default]
    Arrival,
    /// Largest payment first.
    PaymentDescending,
    /// Largest payment per unit-slot of demand first (`pay/(c·d)`).
    DensityDescending,
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request decisions.
    pub schedule: Schedule,
    /// Aggregate statistics.
    pub metrics: RunMetrics,
    /// Independent feasibility check of the schedule.
    pub validation: ValidationReport,
    /// Per-slot arrival/admission/active counters.
    pub timeline: Vec<SlotStats>,
    /// Cumulative revenue after each slot's arrivals were processed —
    /// the online revenue trajectory.
    pub cumulative_revenue: Vec<f64>,
}

/// Result of one fault-aware run ([`Simulation::run_with_failures`]).
///
/// There is no [`ValidationReport`] here: the static feasibility checker
/// assumes placements persist over their full window, which dynamic
/// faults deliberately break. Capacity consistency is instead maintained
/// online through [`CapacityLedger::release`](vnfrel::CapacityLedger::release).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRunReport {
    /// Admission-time decisions (recovery never rewrites these).
    pub schedule: Schedule,
    /// Aggregate statistics of the admission run.
    pub metrics: RunMetrics,
    /// Per-request SLA accounting: downtime, repair latency, refunds.
    pub sla: SlaReport,
    /// Per-slot counters including fault/recovery activity.
    pub timeline: Vec<FaultSlotStats>,
    /// The recovery policy the run used.
    pub policy: RecoveryPolicy,
}

/// Live placement state of one admitted request during a fault-aware run.
struct LiveReq {
    /// Surviving instances per hosting cloudlet index.
    sites: Vec<(usize, u32)>,
    /// Computing units one instance consumes per slot.
    per_instance: f64,
    /// Reliability of the request's VNF type.
    vnf_rel: Reliability,
    /// Slot of the unrecovered failure, `None` while the placement holds.
    down_since: Option<TimeSlot>,
    downtime_slots: usize,
    failures: usize,
    recovery_attempts: usize,
    recoveries: usize,
    repair_latency_slots: usize,
}

impl LiveReq {
    fn sites_of(placement: &vnfrel::Placement) -> Vec<(usize, u32)> {
        match placement {
            vnfrel::Placement::OnSite {
                cloudlet,
                instances,
            } => vec![(cloudlet.index(), *instances)],
            vnfrel::Placement::OffSite { cloudlets } => {
                cloudlets.iter().map(|c| (c.index(), 1)).collect()
            }
        }
    }
}

/// Availability of whatever instances survive, generalizing Eq. 3 and
/// Eq. 10: each hosting cloudlet `j` with `n_j` instances contributes an
/// independent branch `A_j = r(c_j)·(1 − (1 − r_f)^{n_j})`, and the
/// request is served while any branch is (`1 − Π (1 − A_j)`). A pure
/// on-site placement reduces to Eq. 3, a pure off-site one to Eq. 10,
/// and mixed states (partially killed placements, recoveries under a
/// different scheme) interpolate between them.
fn surviving_availability(
    instance: &ProblemInstance,
    vnf_rel: Reliability,
    sites: &[(usize, u32)],
) -> f64 {
    let mut fail = 1.0;
    for &(j, n) in sites {
        let rel = instance
            .network()
            .cloudlet(CloudletId(j))
            .expect("live site references a known cloudlet")
            .reliability();
        fail *= 1.0 - onsite_availability(vnf_rel, rel, n);
    }
    1.0 - fail
}

/// A slot-stepped simulation of the online admission process.
///
/// Requests are replayed in discrete time: at the beginning of each slot
/// the requests arriving in that slot are offered to the scheduler one by
/// one (the hypervisor model of Section III-B). The engine never peeks at
/// future arrivals, so any [`OnlineScheduler`] run through it experiences
/// a genuinely online stream.
///
/// # Example
///
/// ```
/// # use mec_sim::Simulation;
/// # use vnfrel::{ProblemInstance, onsite::{OnsitePrimalDual, CapacityPolicy}};
/// # use mec_topology::{NetworkBuilder, Reliability};
/// # use mec_workload::{VnfCatalog, RequestGenerator, Horizon};
/// # use rand::SeedableRng;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = NetworkBuilder::new();
/// let ap = b.add_ap("edge");
/// b.add_cloudlet(ap, 60, Reliability::new(0.999)?)?;
/// let inst = ProblemInstance::new(b.build()?, VnfCatalog::standard(), Horizon::new(12))?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let reqs = RequestGenerator::new(inst.horizon()).generate(30, inst.catalog(), &mut rng)?;
/// let sim = Simulation::new(&inst, &reqs)?;
/// let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce)?;
/// let report = sim.run(&mut alg)?;
/// assert!(report.validation.is_feasible());
/// assert_eq!(report.metrics.total, 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulation<'a> {
    instance: &'a ProblemInstance,
    requests: &'a [Request],
    /// Request indices grouped by arrival slot.
    by_slot: Vec<Vec<usize>>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation over a request stream.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`vnfrel::VnfrelError`] when the requests do not
    /// fit the instance (non-dense ids, unknown VNFs, bad windows).
    pub fn new(instance: &'a ProblemInstance, requests: &'a [Request]) -> Result<Self, SimError> {
        instance.check_requests(requests)?;
        let mut by_slot = vec![Vec::new(); instance.horizon().len()];
        for (i, r) in requests.iter().enumerate() {
            by_slot[r.arrival()].push(i);
        }
        Ok(Simulation {
            instance,
            requests,
            by_slot,
        })
    }

    /// The instance being simulated.
    pub fn instance(&self) -> &ProblemInstance {
        self.instance
    }

    /// The request stream.
    pub fn requests(&self) -> &[Request] {
        self.requests
    }

    /// Replays the stream through `scheduler` and validates the result.
    ///
    /// # Errors
    ///
    /// Propagates validation errors; scheduler decisions themselves are
    /// infallible.
    pub fn run<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
    ) -> Result<RunReport, SimError> {
        self.run_ordered(scheduler, IntraSlotOrder::Arrival)
    }

    /// Like [`Simulation::run`], but each slot's batch of arrivals is
    /// reordered by `order` before being offered to the scheduler.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn run_ordered<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        order: IntraSlotOrder,
    ) -> Result<RunReport, SimError> {
        self.run_ordered_metered(scheduler, order, None)
    }

    /// Like [`Simulation::run_ordered`], but records engine-side metrics
    /// into `metrics` when given: a `decide()` wall-clock latency
    /// histogram and, at the end of the run, one mean-utilization gauge
    /// per cloudlet. Pass `None` to get the exact behaviour (and cost)
    /// of [`Simulation::run_ordered`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn run_ordered_metered<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        order: IntraSlotOrder,
        metrics: Option<&EngineMetrics<'_>>,
    ) -> Result<RunReport, SimError> {
        let mut schedule = Schedule::new();
        let mut timeline = vec![SlotStats::default(); self.instance.horizon().len()];
        let mut cumulative_revenue = Vec::with_capacity(self.instance.horizon().len());

        // Requests carry dense ids in arrival order, so iterating slots
        // and, within each slot, id order reproduces the arrival sequence.
        for t in self.instance.horizon().slots() {
            let mut batch: Vec<usize> = self.by_slot[t].clone();
            match order {
                IntraSlotOrder::Arrival => {}
                IntraSlotOrder::PaymentDescending => {
                    batch.sort_by(|&a, &b| {
                        self.requests[b]
                            .payment()
                            .partial_cmp(&self.requests[a].payment())
                            .expect("payments are finite")
                            .then(a.cmp(&b))
                    });
                }
                IntraSlotOrder::DensityDescending => {
                    let density = |i: usize| {
                        let r = &self.requests[i];
                        let c = self
                            .instance
                            .catalog()
                            .get(r.vnf())
                            .map(|v| v.compute())
                            .unwrap_or(1);
                        r.payment() / (c as f64 * r.duration() as f64)
                    };
                    batch.sort_by(|&a, &b| {
                        density(b)
                            .partial_cmp(&density(a))
                            .expect("densities are finite")
                            .then(a.cmp(&b))
                    });
                }
            }
            // Decide in the chosen order, but record in id order (the
            // Schedule requires dense recording).
            let mut decisions: Vec<(usize, vnfrel::Decision)> = batch
                .into_iter()
                .map(|i| match metrics {
                    Some(m) => {
                        let start = Instant::now();
                        let d = scheduler.decide(&self.requests[i]);
                        m.observe_decide(start.elapsed().as_secs_f64());
                        (i, d)
                    }
                    None => (i, scheduler.decide(&self.requests[i])),
                })
                .collect();
            decisions.sort_by_key(|&(i, _)| i);
            for (i, decision) in decisions {
                let r = &self.requests[i];
                timeline[t].arrivals += 1;
                if decision.is_admit() {
                    timeline[t].admitted += 1;
                    for slot in r.slots() {
                        timeline[slot].active += 1;
                    }
                }
                schedule.record(r, decision);
            }
            cumulative_revenue.push(schedule.revenue());
        }

        let validation =
            validate_schedule(self.instance, self.requests, &schedule, scheduler.scheme())?;
        if let Some(m) = metrics {
            let ledger = scheduler.ledger();
            let slots = self.instance.horizon().len().max(1) as f64;
            for j in 0..m.cloudlet_count().min(ledger.cloudlet_count()) {
                let cid = CloudletId(j);
                let cap = ledger.capacity(cid);
                let mean = if cap > 0.0 {
                    self.instance
                        .horizon()
                        .slots()
                        .map(|t| ledger.used(cid, t))
                        .sum::<f64>()
                        / (cap * slots)
                } else {
                    0.0
                };
                m.set_utilization(j, mean);
            }
        }
        let metrics = RunMetrics {
            algorithm: scheduler.name().to_string(),
            revenue: schedule.revenue(),
            admitted: schedule.admitted_count(),
            total: self.requests.len(),
            mean_utilization: scheduler.ledger().mean_utilization(),
            max_overflow: scheduler.ledger().max_overflow(),
            dual_bound: None,
        };
        Ok(RunReport {
            schedule,
            metrics,
            validation,
            timeline,
            cumulative_revenue,
        })
    }

    /// Replays the stream through `scheduler` while the outage trace in
    /// `failures` unfolds, reacting online with `policy`.
    ///
    /// Each slot proceeds in five steps:
    ///
    /// 1. **Events** — this slot's [`FailureEvent`]s are applied. A
    ///    crashed cloudlet takes every instance hosted there down with
    ///    it; the dead placement's remaining capacity is
    ///    [released](vnfrel::CapacityLedger::release) so survivors and
    ///    future arrivals can reuse it. An [`FailureEvent::InstanceKill`]
    ///    resolves its selector against the instances actually hosted on
    ///    that cloudlet (in request-id order) and kills exactly one.
    /// 2. **Arrivals** — the slot's requests are offered to the
    ///    (outage-blind) scheduler one by one, exactly as in
    ///    [`Simulation::run`]; sites that an admission places on a
    ///    currently-down cloudlet are stripped and refunded immediately.
    /// 3. **Violation detection** — every active request's surviving
    ///    placement is re-checked against its requirement `R_i`. A
    ///    placement that fell below `R_i` is torn down entirely (its
    ///    remaining charges released) and the request is marked down.
    /// 4. **Recovery** — each down request is handed to `policy`, which
    ///    may re-place it on the up cloudlets for the *rest* of its
    ///    window, charging the ledger like a fresh admission. Recovery
    ///    within the failure slot itself counts as zero downtime.
    /// 5. **Accounting** — every active request still down after
    ///    recovery accrues one SLA-violated request-slot.
    ///
    /// The admission-time [`Schedule`] (and thus gross revenue) is
    /// unaffected by faults; the SLA ledger tracks what part of that
    /// revenue survives downtime refunds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Mismatch`] when the failure stream was
    /// generated for a different horizon or topology, and propagates
    /// ledger release failures (which would indicate double-release
    /// bookkeeping bugs).
    pub fn run_with_failures<S: OnlineScheduler + ?Sized>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
    ) -> Result<FaultRunReport, SimError> {
        self.run_with_failures_traced(scheduler, failures, policy, &mut NoopSink)
    }

    /// Like [`Simulation::run_with_failures`], but records one
    /// [`TraceEvent`] per fault-lifecycle transition into `sink`:
    /// [`TraceEvent::OutageStart`]/[`TraceEvent::OutageEnd`] when a
    /// cloudlet crashes or is repaired, [`TraceEvent::InstanceKill`] when
    /// an instance-kill resolves to a victim request,
    /// [`TraceEvent::SlaBreach`] when a placement falls below `R_i`, and
    /// [`TraceEvent::Recovery`] for every recovery attempt (successful or
    /// not, with the re-placement cloudlets on success).
    ///
    /// Decision events are *not* emitted here — they belong to the
    /// scheduler, which carries its own sink (see
    /// `with_sink` on the scheduler types); share one sink between both
    /// via `Rc<RefCell<_>>` to get a single interleaved stream.
    ///
    /// With `&mut NoopSink` this is exactly
    /// [`Simulation::run_with_failures`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulation::run_with_failures`].
    pub fn run_with_failures_traced<S: OnlineScheduler + ?Sized, K: TraceSink>(
        &self,
        scheduler: &mut S,
        failures: &FailureProcess,
        policy: RecoveryPolicy,
        sink: &mut K,
    ) -> Result<FaultRunReport, SimError> {
        let m = self.instance.network().cloudlets().count();
        if failures.horizon_len() != self.instance.horizon().len() {
            return Err(SimError::Mismatch(
                "failure stream horizon does not match the instance",
            ));
        }
        if failures.iter().any(|e| e.cloudlet() >= m) {
            return Err(SimError::Mismatch(
                "failure stream references unknown cloudlet",
            ));
        }
        let recovery_scheme = policy.scheme_for(scheduler.scheme());
        let mut schedule = Schedule::new();
        let mut timeline = vec![FaultSlotStats::default(); self.instance.horizon().len()];
        let mut up = vec![true; m];
        let mut live: Vec<Option<LiveReq>> = (0..self.requests.len()).map(|_| None).collect();

        for t in self.instance.horizon().slots() {
            let stats = &mut timeline[t];

            // 1. Apply this slot's outage events.
            for e in failures.events_at(t) {
                stats.events += 1;
                match *e {
                    FailureEvent::CloudletDown { cloudlet: j, .. } => {
                        up[j] = false;
                        if K::ENABLED {
                            sink.record(TraceEvent::OutageStart {
                                slot: t,
                                cloudlet: j,
                            });
                        }
                        for (i, entry) in live.iter_mut().enumerate() {
                            let Some(lr) = entry else { continue };
                            let r = &self.requests[i];
                            if t > r.end_slot() {
                                continue;
                            }
                            if let Some(pos) = lr.sites.iter().position(|&(c, _)| c == j) {
                                let (_, n) = lr.sites.remove(pos);
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=r.end_slot(),
                                    f64::from(n) * lr.per_instance,
                                )?;
                            }
                        }
                    }
                    FailureEvent::CloudletUp { cloudlet: j, .. } => {
                        up[j] = true;
                        if K::ENABLED {
                            sink.record(TraceEvent::OutageEnd {
                                slot: t,
                                cloudlet: j,
                            });
                        }
                    }
                    FailureEvent::InstanceKill {
                        cloudlet: j,
                        selector,
                        ..
                    } => {
                        if !up[j] {
                            continue;
                        }
                        let total: u64 = live
                            .iter()
                            .enumerate()
                            .filter_map(|(i, entry)| {
                                let lr = entry.as_ref()?;
                                if t > self.requests[i].end_slot() {
                                    return None;
                                }
                                lr.sites
                                    .iter()
                                    .find(|&&(c, _)| c == j)
                                    .map(|&(_, n)| u64::from(n))
                            })
                            .sum();
                        if total == 0 {
                            continue;
                        }
                        let mut victim = selector % total;
                        for (i, entry) in live.iter_mut().enumerate() {
                            let Some(lr) = entry else { continue };
                            let r = &self.requests[i];
                            if t > r.end_slot() {
                                continue;
                            }
                            let Some(pos) = lr.sites.iter().position(|&(c, _)| c == j) else {
                                continue;
                            };
                            let n = u64::from(lr.sites[pos].1);
                            if victim < n {
                                lr.sites[pos].1 -= 1;
                                if lr.sites[pos].1 == 0 {
                                    lr.sites.remove(pos);
                                }
                                scheduler.ledger_mut().release(
                                    CloudletId(j),
                                    t..=r.end_slot(),
                                    lr.per_instance,
                                )?;
                                if K::ENABLED {
                                    sink.record(TraceEvent::InstanceKill {
                                        slot: t,
                                        cloudlet: j,
                                        request: i,
                                    });
                                }
                                break;
                            }
                            victim -= n;
                        }
                    }
                }
            }

            // 2. Offer this slot's arrivals to the scheduler.
            for &i in &self.by_slot[t] {
                let r = &self.requests[i];
                let decision = scheduler.decide(r);
                stats.arrivals += 1;
                let placement = decision.placement().cloned();
                schedule.record(r, decision);
                let Some(p) = placement else { continue };
                stats.admitted += 1;
                let vnf = self
                    .instance
                    .catalog()
                    .get(r.vnf())
                    .ok_or(SimError::Mismatch("request references unknown vnf type"))?;
                let mut lr = LiveReq {
                    sites: LiveReq::sites_of(&p),
                    per_instance: vnf.compute() as f64,
                    vnf_rel: vnf.reliability(),
                    down_since: None,
                    downtime_slots: 0,
                    failures: 0,
                    recovery_attempts: 0,
                    recoveries: 0,
                    repair_latency_slots: 0,
                };
                // The scheduler is outage-blind: strip (and refund) any
                // site it placed on a cloudlet that is currently down.
                let mut k = 0;
                while k < lr.sites.len() {
                    let (j, n) = lr.sites[k];
                    if up[j] {
                        k += 1;
                    } else {
                        scheduler.ledger_mut().release(
                            CloudletId(j),
                            t..=r.end_slot(),
                            f64::from(n) * lr.per_instance,
                        )?;
                        lr.sites.remove(k);
                    }
                }
                live[i] = Some(lr);
            }

            // 3. Re-check every active placement against R_i.
            for (i, entry) in live.iter_mut().enumerate() {
                let Some(lr) = entry else { continue };
                let r = &self.requests[i];
                if t > r.end_slot() {
                    continue;
                }
                stats.active += 1;
                if lr.down_since.is_some() {
                    continue;
                }
                let avail = surviving_availability(self.instance, lr.vnf_rel, &lr.sites);
                if avail + 1e-12 < r.reliability_requirement().value() {
                    for &(j, n) in &lr.sites {
                        scheduler.ledger_mut().release(
                            CloudletId(j),
                            t..=r.end_slot(),
                            f64::from(n) * lr.per_instance,
                        )?;
                    }
                    lr.sites.clear();
                    lr.down_since = Some(t);
                    lr.failures += 1;
                    stats.newly_failed += 1;
                    if K::ENABLED {
                        sink.record(TraceEvent::SlaBreach {
                            slot: t,
                            request: i,
                        });
                    }
                }
            }

            // 4. Attempt recovery for every down request, id order.
            if let Some(scheme) = recovery_scheme {
                for (i, entry) in live.iter_mut().enumerate() {
                    let Some(lr) = entry else { continue };
                    let r = &self.requests[i];
                    if t > r.end_slot() {
                        continue;
                    }
                    let Some(fail_slot) = lr.down_since else {
                        continue;
                    };
                    lr.recovery_attempts += 1;
                    match recovery::try_replace(
                        self.instance,
                        scheduler.ledger_mut(),
                        r,
                        t,
                        &up,
                        scheme,
                    ) {
                        Some(p) => {
                            lr.sites = LiveReq::sites_of(&p);
                            lr.recoveries += 1;
                            lr.repair_latency_slots += t - fail_slot;
                            lr.down_since = None;
                            stats.recovered += 1;
                            if K::ENABLED {
                                sink.record(TraceEvent::Recovery {
                                    slot: t,
                                    request: i,
                                    success: true,
                                    cloudlets: lr.sites.iter().map(|&(c, _)| c).collect(),
                                });
                            }
                        }
                        None => {
                            if K::ENABLED {
                                sink.record(TraceEvent::Recovery {
                                    slot: t,
                                    request: i,
                                    success: false,
                                    cloudlets: Vec::new(),
                                });
                            }
                        }
                    }
                }
            }

            // 5. SLA accounting: a slot spent down is a violated slot.
            for (i, entry) in live.iter_mut().enumerate() {
                let Some(lr) = entry else { continue };
                if t > self.requests[i].end_slot() {
                    continue;
                }
                if lr.down_since.is_some() {
                    lr.downtime_slots += 1;
                    stats.violated += 1;
                }
            }
        }

        let mut records = Vec::new();
        for (i, entry) in live.iter().enumerate() {
            let Some(lr) = entry else { continue };
            let r = &self.requests[i];
            records.push(SlaRecord {
                request: r.id(),
                payment: r.payment(),
                duration: r.duration(),
                downtime_slots: lr.downtime_slots,
                failures: lr.failures,
                recovery_attempts: lr.recovery_attempts,
                recoveries: lr.recoveries,
                repair_latency_slots: lr.repair_latency_slots,
                unrecovered: lr.down_since.is_some(),
            });
        }
        let metrics = RunMetrics {
            algorithm: scheduler.name().to_string(),
            revenue: schedule.revenue(),
            admitted: schedule.admitted_count(),
            total: self.requests.len(),
            mean_utilization: scheduler.ledger().mean_utilization(),
            max_overflow: scheduler.ledger().max_overflow(),
            dual_bound: None,
        };
        Ok(FaultRunReport {
            schedule,
            metrics,
            sla: SlaReport { records },
            timeline,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, RequestId, VnfCatalog, VnfTypeId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        b.add_link(a, c, 1.0).unwrap();
        b.add_cloudlet(a, 30, Reliability::new(0.999).unwrap())
            .unwrap();
        b.add_cloudlet(c, 30, Reliability::new(0.995).unwrap())
            .unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12)).unwrap()
    }

    #[test]
    fn runs_and_validates() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(50, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let report = sim.run(&mut alg).unwrap();
        assert!(report.validation.is_feasible());
        assert_eq!(report.metrics.total, 50);
        assert_eq!(report.schedule.len(), 50);
        // Timeline arrivals sum to the request count.
        let arrivals: usize = report.timeline.iter().map(|s| s.arrivals).sum();
        assert_eq!(arrivals, 50);
        // Active counts are consistent with admitted windows.
        let active: usize = report.timeline.iter().map(|s| s.active).sum();
        let expected: usize = reqs
            .iter()
            .filter(|r| report.schedule.is_admitted(r.id()))
            .map(|r| r.duration())
            .sum();
        assert_eq!(active, expected);
        // Revenue trajectory is non-decreasing and ends at the total.
        assert_eq!(report.cumulative_revenue.len(), 12);
        for w in report.cumulative_revenue.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((report.cumulative_revenue.last().unwrap() - report.metrics.revenue).abs() < 1e-9);
    }

    #[test]
    fn slot_stepping_preserves_arrival_order() {
        let inst = instance();
        // Handcrafted requests across slots: ids dense in arrival order.
        let h = inst.horizon();
        let mk = |id: usize, arrival: usize| {
            Request::new(
                RequestId(id),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                arrival,
                1,
                2.0,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 0), mk(1, 0), mk(2, 3), mk(3, 7)];
        let sim = Simulation::new(&inst, &reqs).unwrap();
        let mut g = OnsiteGreedy::new(&inst);
        let report = sim.run(&mut g).unwrap();
        assert_eq!(report.timeline[0].arrivals, 2);
        assert_eq!(report.timeline[3].arrivals, 1);
        assert_eq!(report.timeline[7].arrivals, 1);
        assert_eq!(report.timeline[1].arrivals, 0);
    }

    #[test]
    fn ordered_runs_cover_all_requests_and_stay_feasible() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = RequestGenerator::new(inst.horizon())
            .payment_rate_band(1.0, 10.0)
            .unwrap()
            .generate(80, inst.catalog(), &mut rng)
            .unwrap();
        let sim = Simulation::new(&inst, &reqs).unwrap();
        for order in [
            IntraSlotOrder::Arrival,
            IntraSlotOrder::PaymentDescending,
            IntraSlotOrder::DensityDescending,
        ] {
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim.run_ordered(&mut g, order).unwrap();
            assert_eq!(report.schedule.len(), 80, "{order:?}");
            assert!(report.validation.is_feasible(), "{order:?}");
        }
        // Arrival order through run_ordered equals plain run.
        let mut a = OnsiteGreedy::new(&inst);
        let ra = sim.run(&mut a).unwrap();
        let mut b = OnsiteGreedy::new(&inst);
        let rb = sim.run_ordered(&mut b, IntraSlotOrder::Arrival).unwrap();
        assert_eq!(ra.schedule, rb.schedule);
    }

    #[test]
    fn payment_ordering_reorders_same_slot_batch() {
        // Two same-slot requests where only one fits: payment ordering
        // must pick the big payer, arrival ordering the first.
        let inst = {
            let mut b = NetworkBuilder::new();
            let a = b.add_ap("a");
            b.add_cloudlet(a, 1, Reliability::new(0.999).unwrap())
                .unwrap();
            ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(4))
                .unwrap()
        };
        let h = inst.horizon();
        let mk = |id: usize, pay: f64| {
            Request::new(
                RequestId(id),
                VnfTypeId(1), // NAT: compute 1, N=1 here
                Reliability::new(0.9).unwrap(),
                0,
                2,
                pay,
                h,
            )
            .unwrap()
        };
        let reqs = vec![mk(0, 1.0), mk(1, 50.0)];
        let sim = Simulation::new(&inst, &reqs).unwrap();

        let mut g = OnsiteGreedy::new(&inst);
        let arrival = sim.run(&mut g).unwrap();
        assert!(arrival.schedule.is_admitted(RequestId(0)));
        assert!(!arrival.schedule.is_admitted(RequestId(1)));

        let mut g = OnsiteGreedy::new(&inst);
        let paid = sim
            .run_ordered(&mut g, IntraSlotOrder::PaymentDescending)
            .unwrap();
        assert!(!paid.schedule.is_admitted(RequestId(0)));
        assert!(paid.schedule.is_admitted(RequestId(1)));
        assert!(paid.metrics.revenue > arrival.metrics.revenue);
    }

    mod faults {
        use super::*;
        use crate::fault::{FailureConfig, FailureEvent, FailureProcess};
        use crate::recovery::RecoveryPolicy;

        /// One request, slots 0..=5: both cloudlets crash in slot 2, and
        /// cloudlet 1 is repaired in slot 3. Schedule-independent — the
        /// request is wiped out wherever it was placed.
        fn outage_trace(h: Horizon) -> FailureProcess {
            FailureProcess::from_events(
                h,
                vec![
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 0,
                    },
                    FailureEvent::CloudletDown {
                        slot: 2,
                        cloudlet: 1,
                    },
                    FailureEvent::CloudletUp {
                        slot: 3,
                        cloudlet: 1,
                    },
                ],
                FailureConfig::default(),
            )
            .unwrap()
        }

        fn one_request(h: Horizon) -> Vec<Request> {
            vec![Request::new(
                RequestId(0),
                VnfTypeId(1),
                Reliability::new(0.9).unwrap(),
                0,
                6,
                10.0,
                h,
            )
            .unwrap()]
        }

        #[test]
        fn fault_free_run_matches_plain_run() {
            let inst = instance();
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let reqs = RequestGenerator::new(inst.horizon())
                .generate(50, inst.catalog(), &mut rng)
                .unwrap();
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let empty =
                FailureProcess::from_events(inst.horizon(), [], FailureConfig::default()).unwrap();
            let mut a = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
            let plain = sim.run(&mut a).unwrap();
            let mut b = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
            let faulty = sim
                .run_with_failures(&mut b, &empty, RecoveryPolicy::SchemeMatching)
                .unwrap();
            assert_eq!(plain.schedule, faulty.schedule);
            assert_eq!(plain.metrics, faulty.metrics);
            assert_eq!(faulty.sla.violated_request_slots(), 0);
            assert_eq!(faulty.sla.total_failures(), 0);
            assert_eq!(faulty.sla.records.len(), faulty.schedule.admitted_count());
            assert!((faulty.sla.revenue_refunded()).abs() < 1e-12);
            assert!((faulty.sla.revenue_retained() - plain.metrics.revenue).abs() < 1e-9);
            for (p, f) in plain.timeline.iter().zip(&faulty.timeline) {
                assert_eq!(
                    (p.arrivals, p.admitted, p.active),
                    (f.arrivals, f.admitted, f.active)
                );
                assert_eq!(f.events + f.newly_failed + f.recovered + f.violated, 0);
            }
        }

        #[test]
        fn outage_without_recovery_accrues_downtime() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::None)
                .unwrap();
            assert!(report.schedule.is_admitted(RequestId(0)));
            let rec = &report.sla.records[0];
            assert_eq!(rec.failures, 1);
            assert_eq!(rec.recovery_attempts, 0);
            assert_eq!(rec.recoveries, 0);
            // Down from slot 2 through the window end (slot 5).
            assert_eq!(rec.downtime_slots, 4);
            assert!(rec.unrecovered);
            assert!((rec.refund() - 10.0 * 4.0 / 6.0).abs() < 1e-12);
            assert_eq!(report.sla.violated_request_slots(), 4);
            assert_eq!(report.timeline[2].newly_failed, 1);
            // The dead placement's remaining capacity was refunded.
            for j in 0..2 {
                for t in 2..6 {
                    assert_eq!(g.ledger().used(mec_topology::CloudletId(j), t), 0.0);
                }
            }
        }

        #[test]
        fn recovery_restores_service_after_repair() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());
            let mut g = OnsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            let rec = &report.sla.records[0];
            assert_eq!(rec.failures, 1);
            // Slot 2: everything down, attempt fails. Slot 3: cloudlet 1
            // is back, re-placement succeeds.
            assert_eq!(rec.recovery_attempts, 2);
            assert_eq!(rec.recoveries, 1);
            assert_eq!(rec.downtime_slots, 1);
            assert_eq!(rec.repair_latency_slots, 1);
            assert!(!rec.unrecovered);
            assert_eq!(report.sla.violated_request_slots(), 1);
            assert_eq!(report.timeline[3].recovered, 1);
            // Strictly better than no recovery on the same trace.
            let mut g2 = OnsiteGreedy::new(&inst);
            let none = sim
                .run_with_failures(&mut g2, &trace, RecoveryPolicy::None)
                .unwrap();
            assert!(report.sla.violated_request_slots() < none.sla.violated_request_slots());
            // The replacement landed on the repaired cloudlet 1 for the
            // remaining window (slots 3..=5).
            assert!(g.ledger().used(mec_topology::CloudletId(1), 4) > 0.0);
            assert_eq!(g.ledger().used(mec_topology::CloudletId(0), 4), 0.0);
        }

        #[test]
        fn traced_fault_run_emits_lifecycle_events() {
            use mec_obs::RingSink;

            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = outage_trace(inst.horizon());

            // The traced run must not change behaviour at all.
            let mut g0 = OnsiteGreedy::new(&inst);
            let plain = sim
                .run_with_failures(&mut g0, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            let mut sink = RingSink::new(64);
            let traced = sim
                .run_with_failures_traced(&mut g, &trace, RecoveryPolicy::SchemeMatching, &mut sink)
                .unwrap();
            assert_eq!(plain, traced);

            let events = sink.into_events();
            let count = |kind: &str| events.iter().filter(|e| e.kind() == kind).count();
            // Two crashes, one repair from the injected trace.
            assert_eq!(count("outage-start"), 2);
            assert_eq!(count("outage-end"), 1);
            // One SLA breach (slot 2) and two recovery attempts: the
            // slot-2 attempt fails, the slot-3 one succeeds.
            assert_eq!(count("sla-breach"), 1);
            let recoveries: Vec<_> = events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Recovery {
                        slot,
                        success,
                        cloudlets,
                        ..
                    } => Some((*slot, *success, cloudlets.clone())),
                    _ => None,
                })
                .collect();
            assert_eq!(recoveries.len(), 2);
            assert_eq!((recoveries[0].0, recoveries[0].1), (2, false));
            assert_eq!((recoveries[1].0, recoveries[1].1), (3, true));
            // The successful re-placement names the repaired cloudlet.
            assert_eq!(recoveries[1].2, vec![1]);
            // Counts line up with the SLA ledger.
            assert_eq!(count("sla-breach"), traced.sla.total_failures());
            assert_eq!(
                recoveries.iter().filter(|r| r.1).count(),
                traced.timeline.iter().map(|s| s.recovered).sum::<usize>()
            );
        }

        #[test]
        fn mismatched_traces_are_rejected() {
            let inst = instance();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            // Wrong horizon.
            let short =
                FailureProcess::from_events(Horizon::new(5), [], FailureConfig::default()).unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            assert!(sim
                .run_with_failures(&mut g, &short, RecoveryPolicy::None)
                .is_err());
            // Unknown cloudlet index.
            let alien = FailureProcess::from_events(
                inst.horizon(),
                [FailureEvent::CloudletDown {
                    slot: 0,
                    cloudlet: 7,
                }],
                FailureConfig::default(),
            )
            .unwrap();
            let mut g = OnsiteGreedy::new(&inst);
            assert!(sim
                .run_with_failures(&mut g, &alien, RecoveryPolicy::None)
                .is_err());
        }

        #[test]
        fn instance_kill_degrades_offsite_placements() {
            // Off-site placement across several cloudlets: killing one
            // instance releases exactly that instance's share and the
            // availability re-check decides survival.
            let mut b = NetworkBuilder::new();
            let mut prev = None;
            for i in 0..4 {
                let ap = b.add_ap(format!("ap{i}"));
                if let Some(p) = prev {
                    b.add_link(p, ap, 1.0).unwrap();
                }
                prev = Some(ap);
                b.add_cloudlet(ap, 30, Reliability::new(0.95).unwrap())
                    .unwrap();
            }
            let inst =
                ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(12))
                    .unwrap();
            let reqs = one_request(inst.horizon());
            let sim = Simulation::new(&inst, &reqs).unwrap();
            let trace = FailureProcess::from_events(
                inst.horizon(),
                [FailureEvent::InstanceKill {
                    slot: 2,
                    cloudlet: 0,
                    selector: 11,
                }],
                FailureConfig::default(),
            )
            .unwrap();
            let mut g = vnfrel::offsite::OffsiteGreedy::new(&inst);
            let report = sim
                .run_with_failures(&mut g, &trace, RecoveryPolicy::SchemeMatching)
                .unwrap();
            assert!(report.schedule.is_admitted(RequestId(0)));
            let rec = &report.sla.records[0];
            // Whether the surviving subset still meets R_i depends on the
            // original fan-out; either way the books must stay
            // consistent: no downtime without a failure, and a recovery
            // implies a preceding failure.
            assert!(rec.failures <= 1);
            assert!(rec.recoveries <= rec.failures);
            assert!(rec.downtime_slots <= 4);
            let events: usize = report.timeline.iter().map(|s| s.events).sum();
            assert_eq!(events, 1);
        }
    }

    #[test]
    fn rejects_mismatched_requests() {
        let inst = instance();
        let r = Request::new(
            RequestId(3), // non-dense
            VnfTypeId(0),
            Reliability::new(0.9).unwrap(),
            0,
            1,
            1.0,
            inst.horizon(),
        )
        .unwrap();
        assert!(Simulation::new(&inst, &[r]).is_err());
    }
}
