//! Monte-Carlo failure injection.
//!
//! The paper's reliability guarantees are analytical; this module checks
//! them *empirically*: each trial samples an up/down state for every
//! cloudlet (probability `r(c_j)`) and for every placed VNF instance
//! (probability `r(f_i)`), then asks whether each admitted request still
//! has at least one live instance — an instance is live only if both its
//! software and its hosting cloudlet are up. Over many trials the
//! measured survival rate of each request should match the analytical
//! availability of its placement and, in particular, meet `R_i`.

use rand::Rng;

use mec_workload::{Request, RequestId};
use vnfrel::{Placement, ProblemInstance, Schedule};

use crate::SimError;

/// Measured availability of one admitted request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestAvailability {
    /// The request.
    pub request: RequestId,
    /// Required availability `R_i`.
    pub required: f64,
    /// Fraction of trials in which at least one instance survived.
    pub measured: f64,
    /// Number of trials.
    pub trials: usize,
}

impl RequestAvailability {
    /// Measured minus required; negative = empirical shortfall.
    pub fn margin(&self) -> f64 {
        self.measured - self.required
    }

    /// Approximate standard error of the measurement
    /// (`√(p(1−p)/n)` with the measured `p`; 0 with no trials, where no
    /// uncertainty estimate exists).
    pub fn standard_error(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        (self.measured * (1.0 - self.measured) / self.trials as f64).sqrt()
    }

    /// Whether the measurement is consistent with meeting the requirement:
    /// `measured ≥ required − z·SE`.
    pub fn meets_requirement(&self, z: f64) -> bool {
        self.measured + z * self.standard_error() >= self.required
    }
}

/// Result of a failure-injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// One entry per admitted request, in id order.
    pub requests: Vec<RequestAvailability>,
    /// Number of trials run.
    pub trials: usize,
}

impl FailureReport {
    /// Smallest margin across admitted requests (`None` if none admitted).
    ///
    /// NaN margins (possible only from hand-built reports with NaN
    /// fields) sort as largest, so a finite worst margin wins over them
    /// instead of panicking mid-fold.
    pub fn worst_margin(&self) -> Option<f64> {
        self.requests
            .iter()
            .map(|r| r.margin())
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Requests whose measurement is statistically below requirement at
    /// the given z-score (3.0 ≈ 99.7% confidence).
    pub fn statistical_violations(&self, z: f64) -> Vec<RequestId> {
        self.requests
            .iter()
            .filter(|r| !r.meets_requirement(z))
            .map(|r| r.request)
            .collect()
    }
}

/// Admitted requests with placements and reliabilities resolved once,
/// shared by the serial and chunk-parallel trial loops.
struct Campaign<'a> {
    m: usize,
    cloudlet_rel: Vec<f64>,
    admitted: Vec<&'a Request>,
    /// `(r(f_i), placement)` per admitted request, in id order.
    placed: Vec<(f64, &'a Placement)>,
}

fn prepare<'a>(
    instance: &ProblemInstance,
    requests: &'a [Request],
    schedule: &'a Schedule,
) -> Result<Campaign<'a>, SimError> {
    if schedule.len() != requests.len() {
        return Err(SimError::Mismatch(
            "schedule length differs from request count",
        ));
    }
    let m = instance.cloudlet_count();
    let admitted: Vec<&Request> = requests
        .iter()
        .filter(|r| schedule.is_admitted(r.id()))
        .collect();
    let cloudlet_rel: Vec<f64> = instance
        .network()
        .cloudlets()
        .map(|c| c.reliability().value())
        .collect();

    // Resolve the VNF reliability and placement of every admitted request
    // once, outside the hot trial loop (previously an O(trials × requests)
    // stream of redundant catalog lookups).
    let mut placed: Vec<(f64, &Placement)> = Vec::with_capacity(admitted.len());
    for r in &admitted {
        let vnf = instance
            .catalog()
            .get(r.vnf())
            .ok_or(SimError::Mismatch("request references unknown vnf type"))?;
        let placement = schedule.placement(r.id()).expect("admitted");
        if let Placement::OnSite { cloudlet, .. } = placement {
            if cloudlet.index() >= m {
                return Err(SimError::Mismatch("placement references unknown cloudlet"));
            }
        }
        placed.push((vnf.reliability().value(), placement));
    }
    Ok(Campaign {
        m,
        cloudlet_rel,
        admitted,
        placed,
    })
}

/// Runs `trials` samples, adding survivals into `survived` (one counter
/// per admitted request). The per-trial draw order — all cloudlet states,
/// then each placed request in id order — is the module's RNG contract:
/// both entry points produce identical counts from identical streams.
fn run_trials<R: Rng + ?Sized>(
    c: &Campaign<'_>,
    trials: usize,
    rng: &mut R,
    survived: &mut [usize],
) {
    let mut cloudlet_up = vec![false; c.m];
    for _ in 0..trials {
        for (j, up) in cloudlet_up.iter_mut().enumerate() {
            *up = rng.gen_bool(c.cloudlet_rel[j]);
        }
        for (k, &(r_f, placement)) in c.placed.iter().enumerate() {
            let alive = match placement {
                Placement::OnSite {
                    cloudlet,
                    instances,
                } => {
                    let j = cloudlet.index();
                    cloudlet_up[j] && (0..*instances).any(|_| rng.gen_bool(r_f))
                }
                Placement::OffSite { cloudlets } => cloudlets.iter().any(|c2| {
                    let j = c2.index();
                    j < c.m && cloudlet_up[j] && rng.gen_bool(r_f)
                }),
            };
            if alive {
                survived[k] += 1;
            }
        }
    }
}

fn assemble(c: &Campaign<'_>, survived: &[usize], trials: usize) -> FailureReport {
    let requests = c
        .admitted
        .iter()
        .zip(survived)
        .map(|(r, &s)| RequestAvailability {
            request: r.id(),
            required: r.reliability_requirement().value(),
            measured: s as f64 / trials.max(1) as f64,
            trials,
        })
        .collect();
    FailureReport { requests, trials }
}

/// Runs `trials` independent failure samples against an admitted
/// schedule.
///
/// # Errors
///
/// Returns [`SimError`] when the schedule does not cover the requests or
/// references unknown cloudlets/VNFs.
pub fn inject_failures<R: Rng + ?Sized>(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    trials: usize,
    rng: &mut R,
) -> Result<FailureReport, SimError> {
    let campaign = prepare(instance, requests, schedule)?;
    let mut survived = vec![0usize; campaign.placed.len()];
    run_trials(&campaign, trials, rng, &mut survived);
    Ok(assemble(&campaign, &survived, trials))
}

/// Trials per task in [`inject_failures_parallel`]. Fixed (not derived
/// from the thread count) so the chunk grid — and therefore every RNG
/// stream and the exact survival counts — is identical at any `threads`.
const TRIAL_CHUNK: usize = 512;

/// [`inject_failures`] fanned out over `threads` scoped worker threads.
///
/// The campaign is split into fixed [`TRIAL_CHUNK`]-sized chunks; chunk
/// `c` draws from `ChaCha8Rng::seed_from_u64(seed)` on stream `c + 1`,
/// and per-request survival counts are summed over chunks in chunk
/// order. Results are a pure function of `(inputs, seed)` — **not** of
/// `threads` — which the determinism suite asserts. The trade-off versus
/// the serial entry point is a different (chunked) stream layout, so
/// counts match `inject_failures` statistically but not sample-by-sample.
///
/// # Errors
///
/// Returns [`SimError`] for the same mismatches as [`inject_failures`].
pub fn inject_failures_parallel(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Result<FailureReport, SimError> {
    inject_chunked(instance, requests, schedule, trials, seed, threads, None)
}

/// [`inject_failures_parallel`] with shard-and-merge telemetry: each
/// worker chunk accumulates trial/survival counts into a private
/// [`mec_obs::MetricsShard`] (no shared cache lines inside the trial
/// loop) which is absorbed into `registry` as results are folded in, in
/// deterministic chunk order.
///
/// Survival counts — and therefore the returned [`FailureReport`] — are
/// bit-identical to [`inject_failures_parallel`] at the same
/// `(inputs, seed)`; only the registry side effect is added.
///
/// # Errors
///
/// Returns [`SimError`] for the same mismatches as [`inject_failures`].
pub fn inject_failures_parallel_metered(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    trials: usize,
    seed: u64,
    threads: usize,
    telemetry: (&mec_obs::MetricsRegistry, crate::obs::InjectionMetricIds),
) -> Result<FailureReport, SimError> {
    inject_chunked(
        instance,
        requests,
        schedule,
        trials,
        seed,
        threads,
        Some(telemetry),
    )
}

fn inject_chunked(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    trials: usize,
    seed: u64,
    threads: usize,
    metered: Option<(&mec_obs::MetricsRegistry, crate::obs::InjectionMetricIds)>,
) -> Result<FailureReport, SimError> {
    use rand::SeedableRng;

    let campaign = prepare(instance, requests, schedule)?;
    let n_chunks = trials.div_ceil(TRIAL_CHUNK);
    let chunks: Vec<usize> = (0..n_chunks).collect();
    let counts = crate::parallel::parallel_map(&chunks, threads, |&c| {
        let lo = c * TRIAL_CHUNK;
        let hi = trials.min(lo + TRIAL_CHUNK);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(c as u64 + 1);
        let mut survived = vec![0usize; campaign.placed.len()];
        run_trials(&campaign, hi - lo, &mut rng, &mut survived);
        let shard = metered.map(|(reg, ids)| {
            let mut shard = reg.shard();
            shard.add(ids.trials, (hi - lo) as u64);
            shard.add(ids.survivals, survived.iter().map(|&s| s as u64).sum());
            shard
        });
        (survived, shard)
    });
    let mut survived = vec![0usize; campaign.placed.len()];
    for (chunk, shard) in counts {
        for (total, s) in survived.iter_mut().zip(chunk) {
            *total += s;
        }
        if let (Some((reg, _)), Some(shard)) = (metered, shard) {
            reg.absorb(&shard);
        }
    }
    Ok(assemble(&campaign, &survived, trials))
}

/// Like [`inject_failures`], but samples component states *per slot* and
/// counts a request as served only when at least one instance is alive in
/// **every** slot of its execution window.
///
/// The paper's `R_i` is an instantaneous availability target, so
/// [`inject_failures`] is the faithful check; window survival is strictly
/// harder (roughly `availability^d`) and quantifies what a "whole-session
/// uptime" SLA would additionally require.
///
/// # Errors
///
/// Returns [`SimError`] for mismatched inputs, as [`inject_failures`].
pub fn inject_failures_windowed<R: Rng + ?Sized>(
    instance: &ProblemInstance,
    requests: &[Request],
    schedule: &Schedule,
    trials: usize,
    rng: &mut R,
) -> Result<FailureReport, SimError> {
    if schedule.len() != requests.len() {
        return Err(SimError::Mismatch(
            "schedule length differs from request count",
        ));
    }
    let m = instance.cloudlet_count();
    let admitted: Vec<&Request> = requests
        .iter()
        .filter(|r| schedule.is_admitted(r.id()))
        .collect();
    let mut survived = vec![0usize; admitted.len()];
    let cloudlet_rel: Vec<f64> = instance
        .network()
        .cloudlets()
        .map(|c| c.reliability().value())
        .collect();

    // As in `inject_failures`: one catalog lookup per admitted request,
    // not one per (trial, request).
    let mut placed: Vec<(f64, &Placement)> = Vec::with_capacity(admitted.len());
    for r in &admitted {
        let vnf = instance
            .catalog()
            .get(r.vnf())
            .ok_or(SimError::Mismatch("request references unknown vnf type"))?;
        placed.push((
            vnf.reliability().value(),
            schedule.placement(r.id()).expect("admitted"),
        ));
    }

    for _ in 0..trials {
        for (k, r) in admitted.iter().enumerate() {
            let (r_f, placement) = placed[k];
            // Independent component states per slot of the window.
            let all_slots_alive = r.slots().all(|_t| match placement {
                Placement::OnSite {
                    cloudlet,
                    instances,
                } => {
                    let j = cloudlet.index();
                    j < m
                        && rng.gen_bool(cloudlet_rel[j])
                        && (0..*instances).any(|_| rng.gen_bool(r_f))
                }
                Placement::OffSite { cloudlets } => cloudlets.iter().any(|c| {
                    let j = c.index();
                    j < m && rng.gen_bool(cloudlet_rel[j]) && rng.gen_bool(r_f)
                }),
            });
            if all_slots_alive {
                survived[k] += 1;
            }
        }
    }

    let requests = admitted
        .iter()
        .zip(&survived)
        .map(|(r, &s)| RequestAvailability {
            request: r.id(),
            // The window target is the per-slot target compounded over
            // the duration.
            required: r
                .reliability_requirement()
                .value()
                .powi(r.duration() as i32),
            measured: s as f64 / trials.max(1) as f64,
            trials,
        })
        .collect();
    Ok(FailureReport { requests, trials })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mec_topology::{NetworkBuilder, Reliability};
    use mec_workload::{Horizon, RequestGenerator, VnfCatalog};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use vnfrel::offsite::OffsitePrimalDual;
    use vnfrel::onsite::{CapacityPolicy, OnsitePrimalDual};
    use vnfrel::run_online;

    fn instance() -> ProblemInstance {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        let d = b.add_ap("c");
        b.add_link(a, c, 1.0).unwrap();
        b.add_link(c, d, 1.0).unwrap();
        b.add_cloudlet(a, 40, Reliability::new(0.999).unwrap())
            .unwrap();
        b.add_cloudlet(c, 40, Reliability::new(0.995).unwrap())
            .unwrap();
        b.add_cloudlet(d, 40, Reliability::new(0.99).unwrap())
            .unwrap();
        ProblemInstance::new(b.build().unwrap(), VnfCatalog::standard(), Horizon::new(10)).unwrap()
    }

    #[test]
    fn onsite_placements_meet_requirements_empirically() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.97)
            .unwrap()
            .generate(30, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        let report = inject_failures(&inst, &reqs, &schedule, 20_000, &mut rng).unwrap();
        assert!(!report.requests.is_empty());
        let violations = report.statistical_violations(4.0);
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn offsite_placements_meet_requirements_empirically() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.97)
            .unwrap()
            .generate(30, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg = OffsitePrimalDual::new(&inst);
        let schedule = run_online(&mut alg, &reqs).unwrap();
        let report = inject_failures(&inst, &reqs, &schedule, 20_000, &mut rng).unwrap();
        let violations = report.statistical_violations(4.0);
        assert!(violations.is_empty(), "violations: {violations:?}");
        assert_eq!(report.trials, 20_000);
    }

    #[test]
    fn measured_availability_tracks_analytical_value() {
        // A single request with a known placement: measured availability
        // should approximate r_c·(1 − (1 − r_f)^n).
        use mec_topology::CloudletId;
        use mec_workload::{RequestId, VnfTypeId};
        use vnfrel::{Decision, Placement, Schedule};
        let inst = instance();
        let r = Request::new(
            RequestId(0),
            VnfTypeId(2), // IDS: r = 0.9
            Reliability::new(0.9).unwrap(),
            0,
            1,
            1.0,
            inst.horizon(),
        )
        .unwrap();
        let mut s = Schedule::new();
        s.record(
            &r,
            Decision::Admit(Placement::OnSite {
                cloudlet: CloudletId(0),
                instances: 2,
            }),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let report = inject_failures(&inst, &[r], &s, 200_000, &mut rng).unwrap();
        let analytical = 0.999 * (1.0 - 0.1f64.powi(2));
        let measured = report.requests[0].measured;
        assert!(
            (measured - analytical).abs() < 0.005,
            "measured {measured} vs analytical {analytical}"
        );
    }

    #[test]
    fn windowed_survival_meets_compounded_target() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.95)
            .unwrap()
            .generate(25, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        let report = inject_failures_windowed(&inst, &reqs, &schedule, 20_000, &mut rng).unwrap();
        // Per-slot availability ≥ R_i and independent slots ⇒ window
        // survival ≥ R_i^d; no statistical violation expected.
        let violations = report.statistical_violations(4.0);
        assert!(violations.is_empty(), "violations: {violations:?}");
        // Windowed survival is harder than instantaneous availability.
        let plain = inject_failures(&inst, &reqs, &schedule, 20_000, &mut rng).unwrap();
        for (w, p) in report.requests.iter().zip(&plain.requests) {
            assert_eq!(w.request, p.request);
            assert!(w.measured <= p.measured + 0.02, "{}", w.request);
            assert!(w.required <= p.required + 1e-12);
        }
    }

    #[test]
    fn parallel_injection_is_thread_count_invariant() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.97)
            .unwrap()
            .generate(25, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let schedule = run_online(&mut alg, &reqs).unwrap();
        // 2500 trials → 5 chunks: results must not depend on threads.
        let t1 = inject_failures_parallel(&inst, &reqs, &schedule, 2500, 99, 1).unwrap();
        for threads in [2, 4, 8] {
            let tn = inject_failures_parallel(&inst, &reqs, &schedule, 2500, 99, threads).unwrap();
            assert_eq!(t1, tn, "threads={threads}");
        }
        // And it agrees statistically with the serial injector.
        let serial = inject_failures(&inst, &reqs, &schedule, 20_000, &mut rng).unwrap();
        assert!(t1.statistical_violations(4.0).is_empty());
        assert!(serial.statistical_violations(4.0).is_empty());
    }

    #[test]
    fn metered_injection_matches_plain_and_counts_trials() {
        use crate::obs::InjectionMetricIds;
        use mec_obs::MetricsRegistry;

        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let reqs = RequestGenerator::new(inst.horizon())
            .reliability_band(0.9, 0.97)
            .unwrap()
            .generate(20, inst.catalog(), &mut rng)
            .unwrap();
        let mut alg = OnsitePrimalDual::new(&inst, CapacityPolicy::Enforce).unwrap();
        let schedule = run_online(&mut alg, &reqs).unwrap();

        let mut reg = MetricsRegistry::new();
        let ids = InjectionMetricIds::register(&mut reg);
        let metered =
            inject_failures_parallel_metered(&inst, &reqs, &schedule, 1500, 42, 4, (&reg, ids))
                .unwrap();
        let plain = inject_failures_parallel(&inst, &reqs, &schedule, 1500, 42, 4).unwrap();
        assert_eq!(metered, plain);
        assert_eq!(reg.counter_value(ids.trials), 1500);
        let expected_survivals: u64 = metered
            .requests
            .iter()
            .map(|r| (r.measured * 1500.0).round() as u64)
            .sum();
        assert_eq!(reg.counter_value(ids.survivals), expected_survivals);
    }

    #[test]
    fn parallel_injection_validates_inputs() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(3, inst.catalog(), &mut rng)
            .unwrap();
        let s = Schedule::new();
        assert!(inject_failures_parallel(&inst, &reqs, &s, 10, 0, 4).is_err());
    }

    #[test]
    fn mismatched_schedule_is_an_error() {
        let inst = instance();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let reqs = RequestGenerator::new(inst.horizon())
            .generate(3, inst.catalog(), &mut rng)
            .unwrap();
        let s = Schedule::new(); // empty ≠ 3 requests
        assert!(inject_failures(&inst, &reqs, &s, 10, &mut rng).is_err());
    }

    #[test]
    fn margin_and_standard_error() {
        let a = RequestAvailability {
            request: mec_workload::RequestId(0),
            required: 0.95,
            measured: 0.97,
            trials: 10_000,
        };
        assert!((a.margin() - 0.02).abs() < 1e-12);
        assert!(a.standard_error() > 0.0 && a.standard_error() < 0.01);
        assert!(a.meets_requirement(3.0));
    }

    #[test]
    fn zero_trials_and_nan_margins_stay_finite() {
        // trials == 0 used to divide by zero (SE = NaN) and poison every
        // downstream comparison.
        let a = RequestAvailability {
            request: mec_workload::RequestId(0),
            required: 0.95,
            measured: 0.0,
            trials: 0,
        };
        assert_eq!(a.standard_error(), 0.0);
        assert!(!a.meets_requirement(3.0));

        // A NaN margin must not panic the fold; the finite entry wins.
        let report = FailureReport {
            requests: vec![
                RequestAvailability {
                    request: mec_workload::RequestId(0),
                    required: f64::NAN,
                    measured: 0.9,
                    trials: 100,
                },
                RequestAvailability {
                    request: mec_workload::RequestId(1),
                    required: 0.95,
                    measured: 0.90,
                    trials: 100,
                },
            ],
            trials: 100,
        };
        let worst = report.worst_margin().unwrap();
        assert!((worst + 0.05).abs() < 1e-12);

        // And an empty report still reports no margin at all.
        let empty = FailureReport {
            requests: Vec::new(),
            trials: 0,
        };
        assert_eq!(empty.worst_margin(), None);
        assert!(empty.statistical_violations(3.0).is_empty());
    }
}
