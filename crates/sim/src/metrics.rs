use std::fmt;

use mec_workload::RequestId;

/// Summary statistics of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Scheduler name (e.g. `"alg1-primal-dual"`).
    pub algorithm: String,
    /// Total revenue collected.
    pub revenue: f64,
    /// Number of admitted requests.
    pub admitted: usize,
    /// Number of requests processed.
    pub total: usize,
    /// Mean cloudlet utilization over all (cloudlet, slot) cells.
    pub mean_utilization: f64,
    /// Worst relative capacity overflow (0 unless the raw Algorithm 1 was
    /// allowed to violate).
    pub max_overflow: f64,
    /// Final dual objective when the scheduler tracks one (Algorithm 1) —
    /// an upper bound on the offline optimum.
    pub dual_bound: Option<f64>,
}

impl RunMetrics {
    /// Admitted / total, 0 when no request was processed.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.admitted as f64 / self.total as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: revenue {:.2}, admitted {}/{} ({:.1}%), util {:.3}",
            self.algorithm,
            self.revenue,
            self.admitted,
            self.total,
            self.acceptance_ratio() * 100.0,
            self.mean_utilization
        )?;
        if self.max_overflow > 0.0 {
            write!(f, ", overflow {:.3}", self.max_overflow)?;
        }
        if let Some(d) = self.dual_bound {
            write!(f, ", dual bound {d:.2}")?;
        }
        Ok(())
    }
}

/// Per-slot activity counters produced by the slot-stepped engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotStats {
    /// Requests that arrived in this slot.
    pub arrivals: usize,
    /// Arrivals admitted in this slot.
    pub admitted: usize,
    /// Admitted requests whose execution window covers this slot.
    pub active: usize,
}

/// Per-slot counters of a fault-aware run
/// ([`Simulation::run_with_failures`](crate::Simulation::run_with_failures)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSlotStats {
    /// Requests that arrived in this slot.
    pub arrivals: usize,
    /// Arrivals admitted in this slot.
    pub admitted: usize,
    /// Admitted requests whose execution window covers this slot.
    pub active: usize,
    /// Failure events applied in this slot.
    pub events: usize,
    /// Requests whose placement dropped below `R_i` in this slot.
    pub newly_failed: usize,
    /// Requests successfully re-placed in this slot.
    pub recovered: usize,
    /// Active requests still without a valid placement at the end of the
    /// slot — each one is an SLA-violated request-slot.
    pub violated: usize,
    /// Requests evicted by the load shedder in this slot (0 outside
    /// [`Simulation::run_degraded`](crate::Simulation::run_degraded)).
    pub evicted: usize,
}

/// Per-request SLA outcome of a fault-aware run.
///
/// Only admitted requests get a record; a request that was never hit by
/// a fault has all failure counters at zero.
#[derive(Debug, Clone, PartialEq)]
pub struct SlaRecord {
    /// The admitted request.
    pub request: RequestId,
    /// Payment agreed at admission.
    pub payment: f64,
    /// Requested duration in slots.
    pub duration: usize,
    /// Slots of the window spent without a valid placement.
    pub downtime_slots: usize,
    /// Times the placement dropped below `R_i` and was torn down.
    pub failures: usize,
    /// Recovery attempts made on behalf of this request.
    pub recovery_attempts: usize,
    /// Successful re-placements.
    pub recoveries: usize,
    /// Total slots between each failure and its recovery (0 when
    /// recovery lands in the failure slot itself).
    pub repair_latency_slots: usize,
    /// Whether the request was still down when its window (or the
    /// horizon) ended.
    pub unrecovered: bool,
    /// Whether the load shedder evicted this request to make room for a
    /// higher-density re-placement (implies `unrecovered`).
    pub evicted: bool,
}

impl SlaRecord {
    /// Revenue refunded for downtime, prorated per violated slot:
    /// `payment · downtime/duration`.
    pub fn refund(&self) -> f64 {
        if self.duration == 0 {
            0.0
        } else {
            self.payment * (self.downtime_slots.min(self.duration) as f64 / self.duration as f64)
        }
    }

    /// Revenue retained after the downtime refund.
    pub fn retained(&self) -> f64 {
        self.payment - self.refund()
    }
}

/// SLA ledger of one fault-aware run: one record per admitted request,
/// in id order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlaReport {
    /// Per-request records (admitted requests only, id order).
    pub records: Vec<SlaRecord>,
}

impl SlaReport {
    /// Total SLA-violated request-slots (Σ downtime over requests).
    pub fn violated_request_slots(&self) -> usize {
        self.records.iter().map(|r| r.downtime_slots).sum()
    }

    /// Revenue kept after downtime refunds.
    pub fn revenue_retained(&self) -> f64 {
        self.records.iter().map(SlaRecord::retained).sum()
    }

    /// Revenue refunded for downtime.
    pub fn revenue_refunded(&self) -> f64 {
        self.records.iter().map(SlaRecord::refund).sum()
    }

    /// Placement failures across all requests.
    pub fn total_failures(&self) -> usize {
        self.records.iter().map(|r| r.failures).sum()
    }

    /// Successful re-placements across all requests.
    pub fn total_recoveries(&self) -> usize {
        self.records.iter().map(|r| r.recoveries).sum()
    }

    /// Recoveries / failures; 1.0 when nothing ever failed.
    pub fn recovery_success_rate(&self) -> f64 {
        let failures = self.total_failures();
        if failures == 0 {
            1.0
        } else {
            self.total_recoveries() as f64 / failures as f64
        }
    }

    /// Mean slots from failure to recovery, over successful recoveries
    /// (`None` when nothing recovered).
    pub fn mean_repair_latency(&self) -> Option<f64> {
        let recoveries = self.total_recoveries();
        if recoveries == 0 {
            return None;
        }
        let latency: usize = self.records.iter().map(|r| r.repair_latency_slots).sum();
        Some(latency as f64 / recoveries as f64)
    }

    /// Requests that ended their window without a valid placement.
    pub fn unrecovered_requests(&self) -> usize {
        self.records.iter().filter(|r| r.unrecovered).count()
    }

    /// Requests the load shedder evicted.
    pub fn evicted_requests(&self) -> usize {
        self.records.iter().filter(|r| r.evicted).count()
    }
}

impl fmt::Display for SlaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sla: {} requests, {} violated slots, {} failures, {} recovered ({:.0}%), \
             retained {:.2}, refunded {:.2}",
            self.records.len(),
            self.violated_request_slots(),
            self.total_failures(),
            self.total_recoveries(),
            self.recovery_success_rate() * 100.0,
            self.revenue_retained(),
            self.revenue_refunded(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratio_handles_empty() {
        let m = RunMetrics {
            algorithm: "x".into(),
            revenue: 0.0,
            admitted: 0,
            total: 0,
            mean_utilization: 0.0,
            max_overflow: 0.0,
            dual_bound: None,
        };
        assert_eq!(m.acceptance_ratio(), 0.0);
        assert!(m.to_string().contains("x:"));
    }

    #[test]
    fn display_includes_optional_fields() {
        let m = RunMetrics {
            algorithm: "alg1".into(),
            revenue: 12.5,
            admitted: 3,
            total: 4,
            mean_utilization: 0.4,
            max_overflow: 0.2,
            dual_bound: Some(20.0),
        };
        let s = m.to_string();
        assert!(s.contains("overflow"));
        assert!(s.contains("dual bound"));
        assert!((m.acceptance_ratio() - 0.75).abs() < 1e-12);
    }
}
