use std::fmt;

/// Summary statistics of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Scheduler name (e.g. `"alg1-primal-dual"`).
    pub algorithm: String,
    /// Total revenue collected.
    pub revenue: f64,
    /// Number of admitted requests.
    pub admitted: usize,
    /// Number of requests processed.
    pub total: usize,
    /// Mean cloudlet utilization over all (cloudlet, slot) cells.
    pub mean_utilization: f64,
    /// Worst relative capacity overflow (0 unless the raw Algorithm 1 was
    /// allowed to violate).
    pub max_overflow: f64,
    /// Final dual objective when the scheduler tracks one (Algorithm 1) —
    /// an upper bound on the offline optimum.
    pub dual_bound: Option<f64>,
}

impl RunMetrics {
    /// Admitted / total, 0 when no request was processed.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.admitted as f64 / self.total as f64
        }
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: revenue {:.2}, admitted {}/{} ({:.1}%), util {:.3}",
            self.algorithm,
            self.revenue,
            self.admitted,
            self.total,
            self.acceptance_ratio() * 100.0,
            self.mean_utilization
        )?;
        if self.max_overflow > 0.0 {
            write!(f, ", overflow {:.3}", self.max_overflow)?;
        }
        if let Some(d) = self.dual_bound {
            write!(f, ", dual bound {d:.2}")?;
        }
        Ok(())
    }
}

/// Per-slot activity counters produced by the slot-stepped engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotStats {
    /// Requests that arrived in this slot.
    pub arrivals: usize,
    /// Arrivals admitted in this slot.
    pub admitted: usize,
    /// Admitted requests whose execution window covers this slot.
    pub active: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_ratio_handles_empty() {
        let m = RunMetrics {
            algorithm: "x".into(),
            revenue: 0.0,
            admitted: 0,
            total: 0,
            mean_utilization: 0.0,
            max_overflow: 0.0,
            dual_bound: None,
        };
        assert_eq!(m.acceptance_ratio(), 0.0);
        assert!(m.to_string().contains("x:"));
    }

    #[test]
    fn display_includes_optional_fields() {
        let m = RunMetrics {
            algorithm: "alg1".into(),
            revenue: 12.5,
            admitted: 3,
            total: 4,
            mean_utilization: 0.4,
            max_overflow: 0.2,
            dual_bound: Some(20.0),
        };
        let s = m.to_string();
        assert!(s.contains("overflow"));
        assert!(s.contains("dual bound"));
        assert!((m.acceptance_ratio() - 0.75).abs() < 1e-12);
    }
}
