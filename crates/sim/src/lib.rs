//! Slot-stepped MEC simulator for reliability-aware VNF scheduling.
//!
//! Drives any [`vnfrel::OnlineScheduler`] through a discrete-time replay
//! of a request stream, validates the outcome independently, measures
//! revenue/utilization, and — beyond the paper's analytical evaluation —
//! injects component failures Monte-Carlo style to verify that admitted
//! requests actually receive their promised availability.
//!
//! * [`Simulation`] — the engine ([`Simulation::run`] produces a
//!   [`RunReport`] with metrics, a feasibility report, and a per-slot
//!   timeline),
//! * [`failure::inject_failures`] — sampled cloudlet/VNF failures versus
//!   each admitted request's requirement `R_i`,
//! * [`fault`] + [`recovery`] — *dynamic* fault injection: a seeded
//!   per-slot outage trace ([`FailureProcess`]) replayed through
//!   [`Simulation::run_with_failures`], which releases dead capacity,
//!   re-places affected requests under a [`RecoveryPolicy`], and keeps
//!   an SLA ledger ([`SlaReport`]) of downtime and refunds,
//! * [`experiment`] — sweep tables used by the figure-regeneration
//!   binaries in `vnfrel-bench`,
//! * [`obs`] — engine-side observability: decide-latency/utilization
//!   metrics for [`Simulation::run_ordered_metered`] and fault-lifecycle
//!   trace events from [`Simulation::run_with_failures_traced`]
//!   (schedulers emit their own decision events via `mec_obs`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
mod compare;
mod engine;
mod error;
pub mod experiment;
pub mod export;
pub mod failure;
pub mod fault;
mod metrics;
pub mod obs;
pub mod parallel;
pub mod recovery;

pub use audit::{AuditInvariant, AuditReport, AuditViolation};
pub use compare::{compare, Comparison};
pub use engine::{
    DegradationConfig, DegradationStats, FaultRunReport, IntraSlotOrder, RunReport, Simulation,
};
pub use error::SimError;
pub use fault::{CascadeConfig, DomainEvent, FailureConfig, FailureEvent, FailureProcess};
pub use metrics::{FaultSlotStats, RunMetrics, SlaRecord, SlaReport, SlotStats};
pub use obs::{EngineMetricIds, EngineMetrics, InjectionMetricIds};
pub use recovery::RecoveryPolicy;
