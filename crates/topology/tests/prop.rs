//! Property-based tests for the MEC network model.

use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::{NetworkBuilder, NodeId, Reliability};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn placement() -> CloudletPlacement {
    CloudletPlacement {
        fraction: 0.5,
        capacity: (10, 50),
        reliability: (0.9, 0.999),
    }
}

proptest! {
    #[test]
    fn reliability_roundtrip(v in 0.000_001f64..0.999_999) {
        let r = Reliability::new(v).unwrap();
        prop_assert!((r.value() - v).abs() < 1e-15);
        prop_assert!((r.failure() - (1.0 - v)).abs() < 1e-15);
        prop_assert!(r.ln_failure() < 0.0);
    }

    #[test]
    fn series_never_exceeds_parts(a in 0.01f64..0.99, b in 0.01f64..0.99) {
        let ra = Reliability::new(a).unwrap();
        let rb = Reliability::new(b).unwrap();
        let s = ra.in_series(rb);
        let p = ra.in_parallel(rb);
        prop_assert!(s <= ra && s <= rb);
        prop_assert!(p >= ra && p >= rb);
        // Series then parallel with itself is still a valid probability.
        prop_assert!(s.value() > 0.0 && p.value() < 1.0);
    }

    #[test]
    fn erdos_renyi_always_connected(n in 1usize..60, p in 0.0f64..0.3, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = generators::erdos_renyi(n, p, &placement(), &mut rng).unwrap();
        prop_assert!(net.is_connected());
        prop_assert_eq!(net.ap_count(), n);
        prop_assert!(net.cloudlet_count() >= 1);
    }

    #[test]
    fn barabasi_albert_always_connected(n in 2usize..80, m in 1usize..5, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = generators::barabasi_albert(n, m, &placement(), &mut rng).unwrap();
        prop_assert!(net.is_connected());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_inequality(seed in 0u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = generators::erdos_renyi(20, 0.15, &placement(), &mut rng).unwrap();
        let d0 = net.hop_distances(NodeId(0));
        for v in net.nodes() {
            let dv = net.hop_distances(v);
            for u in net.nodes() {
                if d0[v.index()] != usize::MAX && dv[u.index()] != usize::MAX {
                    prop_assert!(d0[u.index()] <= d0[v.index()] + dv[u.index()]);
                }
            }
        }
    }

    #[test]
    fn dijkstra_path_latency_matches_sum_of_links(seed in 0u64..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = generators::waxman(15, 0.6, 0.4, &placement(), &mut rng).unwrap();
        for v in net.nodes() {
            if let Some(p) = net.shortest_path(NodeId(0), v) {
                // Re-sum the latency along the reported node sequence.
                let mut total = 0.0;
                for w in p.nodes.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let link = net
                        .neighbors(a)
                        .iter()
                        .find(|&&(u, _)| u == b)
                        .map(|&(_, l)| l)
                        .unwrap();
                    total += net.link(link).unwrap().latency();
                }
                prop_assert!((total - p.latency).abs() < 1e-9);
                prop_assert_eq!(p.hops, p.nodes.len() - 1);
            }
        }
    }
}

#[test]
fn builder_scales_to_thousands_of_nodes() {
    let mut b = NetworkBuilder::new();
    let ids: Vec<_> = (0..5000).map(|i| b.add_ap(format!("n{i}"))).collect();
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], 1.0).unwrap();
    }
    let net = b.build().unwrap();
    assert!(net.is_connected());
    assert_eq!(net.diameter_hops(), Some(4999));
}
