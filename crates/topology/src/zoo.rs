//! Real network topologies embedded from the Internet Topology Zoo.
//!
//! The paper's evaluation uses real topologies from Knight et al., *The
//! Internet Topology Zoo* (JSAC 2011). This module embeds representative
//! edge lists for five well-known research/carrier networks so experiments
//! run fully offline. Link latencies default to 1.0 (the paper does not use
//! latencies); cloudlet placement is randomized per experiment via
//! [`CloudletPlacement`].
//!
//! # Example
//!
//! ```
//! # use mec_topology::zoo;
//! # use mec_topology::generators::CloudletPlacement;
//! # use rand::SeedableRng;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let net = zoo::abilene()
//!     .into_network(&CloudletPlacement::balanced(), &mut rng)
//!     .unwrap();
//! assert!(net.is_connected());
//! ```

use rand::Rng;

use crate::builder::NetworkBuilder;
use crate::error::TopologyError;
use crate::generators::CloudletPlacement;
use crate::graph::Network;
use crate::ids::NodeId;

/// An embedded topology: node names plus an undirected edge list.
#[derive(Debug, Clone)]
pub struct ZooTopology {
    name: &'static str,
    nodes: &'static [&'static str],
    edges: &'static [(usize, usize)],
}

impl ZooTopology {
    /// Dataset name (as in the Topology Zoo).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node names in id order.
    pub fn node_names(&self) -> &'static [&'static str] {
        self.nodes
    }

    /// Edge list as pairs of node indices.
    pub fn edges(&self) -> &'static [(usize, usize)] {
        self.edges
    }

    /// Materializes the topology into a [`Network`], attaching cloudlets
    /// according to `placement` using `rng`.
    ///
    /// # Errors
    ///
    /// Propagates builder errors (none occur for the embedded data) and
    /// placement validation errors.
    pub fn into_network<R: Rng + ?Sized>(
        &self,
        placement: &CloudletPlacement,
        rng: &mut R,
    ) -> Result<Network, TopologyError> {
        let mut b = NetworkBuilder::new();
        for &n in self.nodes {
            b.add_ap(n);
        }
        for &(u, v) in self.edges {
            b.add_link(NodeId(u), NodeId(v), 1.0)?;
        }
        placement.apply(&mut b, rng)?;
        b.build()
    }
}

/// All embedded topologies, smallest first.
pub fn all() -> Vec<ZooTopology> {
    vec![
        abilene(),
        cesnet(),
        nsfnet(),
        aarnet(),
        garr(),
        att_na(),
        geant(),
    ]
}

/// CESNET — the Czech national research network (12 nodes, 13 links),
/// an early-2000s snapshot from the Topology Zoo.
pub fn cesnet() -> ZooTopology {
    ZooTopology {
        name: "CESNET",
        nodes: &[
            "Praha",
            "Brno",
            "Ostrava",
            "Plzen",
            "HradecKralove",
            "CeskeBudejovice",
            "Liberec",
            "Olomouc",
            "UstiNadLabem",
            "Pardubice",
            "Zlin",
            "Karvina",
        ],
        edges: &[
            (0, 1),
            (0, 3),
            (0, 4),
            (0, 5),
            (0, 6),
            (0, 8),
            (1, 2),
            (1, 7),
            (1, 10),
            (2, 11),
            (4, 9),
            (4, 6),
            (7, 2),
        ],
    }
}

/// GARR — the Italian research and education network (21 nodes,
/// 25 links), following the Topology-Zoo "Garr199901"-era structure.
pub fn garr() -> ZooTopology {
    ZooTopology {
        name: "GARR",
        nodes: &[
            "Milano", "Torino", "Genova", "Padova", "Venezia", "Trieste", "Bologna", "Firenze",
            "Pisa", "Roma1", "Roma2", "Napoli", "Bari", "Salerno", "Cosenza", "Palermo", "Catania",
            "Cagliari", "Perugia", "Ancona", "Pescara",
        ],
        edges: &[
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 6),
            (1, 2),
            (3, 4),
            (4, 5),
            (3, 6),
            (6, 7),
            (6, 19),
            (7, 8),
            (7, 9),
            (8, 2),
            (9, 10),
            (9, 11),
            (9, 17),
            (9, 18),
            (10, 12),
            (11, 13),
            (11, 15),
            (12, 20),
            (13, 14),
            (14, 16),
            (15, 16),
            (19, 20),
        ],
    }
}

/// Abilene — the Internet2 backbone (11 PoPs, 14 links).
pub fn abilene() -> ZooTopology {
    ZooTopology {
        name: "Abilene",
        nodes: &[
            "Seattle",
            "Sunnyvale",
            "LosAngeles",
            "Denver",
            "KansasCity",
            "Houston",
            "Chicago",
            "Indianapolis",
            "Atlanta",
            "WashingtonDC",
            "NewYork",
        ],
        edges: &[
            (0, 1),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 8),
            (8, 9),
            (6, 10),
            (9, 10),
        ],
    }
}

/// NSFNET T1 backbone (14 nodes, 21 links).
pub fn nsfnet() -> ZooTopology {
    ZooTopology {
        name: "NSFNET",
        nodes: &[
            "Seattle",
            "PaloAlto",
            "SanDiego",
            "SaltLakeCity",
            "Boulder",
            "Houston",
            "Lincoln",
            "Champaign",
            "Pittsburgh",
            "Atlanta",
            "AnnArbor",
            "Ithaca",
            "Princeton",
            "CollegePark",
        ],
        edges: &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 7),
            (2, 5),
            (3, 4),
            (3, 10),
            (4, 5),
            (4, 6),
            (5, 9),
            (5, 13),
            (6, 7),
            (6, 10),
            (7, 8),
            (8, 9),
            (8, 11),
            (9, 13),
            (10, 11),
            (11, 12),
            (12, 13),
        ],
    }
}

/// AARNet — Australia's research and education network (19 nodes, 24 links).
pub fn aarnet() -> ZooTopology {
    ZooTopology {
        name: "AARNet",
        nodes: &[
            "Adelaide1",
            "Adelaide2",
            "AliceSprings",
            "Armidale",
            "Brisbane1",
            "Brisbane2",
            "Cairns",
            "Canberra1",
            "Canberra2",
            "Darwin",
            "Hobart",
            "Mackay",
            "Melbourne1",
            "Melbourne2",
            "Perth1",
            "Perth2",
            "Rockhampton",
            "Sydney1",
            "Sydney2",
        ],
        edges: &[
            (0, 1),
            (0, 2),
            (0, 12),
            (1, 13),
            (1, 14),
            (2, 9),
            (3, 17),
            (3, 4),
            (4, 5),
            (4, 16),
            (5, 17),
            (5, 9),
            (6, 16),
            (6, 11),
            (7, 8),
            (7, 17),
            (8, 12),
            (10, 12),
            (10, 13),
            (11, 16),
            (12, 13),
            (14, 15),
            (15, 0),
            (17, 18),
            (18, 13),
        ],
    }
}

/// AT&T North America IP backbone (25 PoPs, 56 links), as catalogued in the
/// Topology Zoo ("AttMpls").
pub fn att_na() -> ZooTopology {
    ZooTopology {
        name: "ATT-NA",
        nodes: &[
            "Seattle",
            "Portland",
            "SanFrancisco",
            "SanJose",
            "LosAngeles",
            "SanDiego",
            "Phoenix",
            "SaltLakeCity",
            "Denver",
            "Albuquerque",
            "Dallas",
            "Houston",
            "SanAntonio",
            "KansasCity",
            "StLouis",
            "Chicago",
            "Detroit",
            "Indianapolis",
            "Nashville",
            "Atlanta",
            "Orlando",
            "Miami",
            "WashingtonDC",
            "Philadelphia",
            "NewYork",
        ],
        edges: &[
            (0, 1),
            (0, 2),
            (0, 7),
            (0, 15),
            (1, 2),
            (1, 7),
            (2, 3),
            (2, 4),
            (2, 7),
            (2, 8),
            (2, 15),
            (3, 4),
            (3, 5),
            (4, 5),
            (4, 6),
            (4, 9),
            (4, 10),
            (4, 15),
            (4, 24),
            (5, 6),
            (6, 9),
            (6, 10),
            (7, 8),
            (8, 9),
            (8, 13),
            (8, 15),
            (9, 10),
            (10, 11),
            (10, 12),
            (10, 13),
            (10, 14),
            (10, 15),
            (10, 19),
            (10, 22),
            (11, 12),
            (11, 19),
            (11, 21),
            (13, 14),
            (13, 15),
            (14, 15),
            (14, 17),
            (14, 18),
            (15, 16),
            (15, 17),
            (15, 22),
            (15, 24),
            (16, 17),
            (16, 24),
            (17, 18),
            (18, 19),
            (19, 20),
            (19, 22),
            (20, 21),
            (22, 23),
            (22, 24),
            (23, 24),
        ],
    }
}

/// GÉANT — the pan-European research network (34 nodes, 52 links),
/// following the 2009 snapshot in the Topology Zoo.
pub fn geant() -> ZooTopology {
    ZooTopology {
        name: "GEANT",
        nodes: &[
            "Austria",
            "Belgium",
            "Bulgaria",
            "Croatia",
            "Cyprus",
            "CzechRepublic",
            "Denmark",
            "Estonia",
            "Finland",
            "France",
            "Germany",
            "Greece",
            "Hungary",
            "Iceland",
            "Ireland",
            "Israel",
            "Italy",
            "Latvia",
            "Lithuania",
            "Luxembourg",
            "Malta",
            "Netherlands",
            "Norway",
            "Poland",
            "Portugal",
            "Romania",
            "Russia",
            "Slovakia",
            "Slovenia",
            "Spain",
            "Sweden",
            "Switzerland",
            "Turkey",
            "UnitedKingdom",
        ],
        edges: &[
            (0, 5),
            (0, 10),
            (0, 12),
            (0, 16),
            (0, 28),
            (0, 27),
            (1, 9),
            (1, 21),
            (1, 19),
            (2, 11),
            (2, 25),
            (2, 12),
            (3, 12),
            (3, 28),
            (4, 11),
            (4, 15),
            (5, 10),
            (5, 23),
            (5, 27),
            (6, 10),
            (6, 22),
            (6, 30),
            (6, 13),
            (7, 17),
            (7, 8),
            (8, 30),
            (9, 10),
            (9, 29),
            (9, 31),
            (9, 33),
            (10, 21),
            (10, 16),
            (10, 26),
            (10, 31),
            (11, 16),
            (12, 25),
            (13, 33),
            (14, 33),
            (15, 16),
            (16, 31),
            (16, 20),
            (17, 18),
            (18, 23),
            (19, 10),
            (21, 33),
            (21, 30),
            (22, 30),
            (23, 10),
            (24, 29),
            (24, 33),
            (2, 32),
            (26, 30),
            (29, 31),
            (32, 11),
            (32, 25),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn materialize(t: &ZooTopology) -> Network {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        t.into_network(&CloudletPlacement::balanced(), &mut rng)
            .unwrap()
    }

    #[test]
    fn all_topologies_are_connected_and_self_consistent() {
        for t in all() {
            // Edge indices in range, no self loops, no duplicates.
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in t.edges() {
                assert!(
                    u < t.node_count(),
                    "{}: edge ({u},{v}) out of range",
                    t.name()
                );
                assert!(
                    v < t.node_count(),
                    "{}: edge ({u},{v}) out of range",
                    t.name()
                );
                assert_ne!(u, v, "{}: self loop", t.name());
                assert!(
                    seen.insert((u.min(v), u.max(v))),
                    "{}: duplicate edge ({u},{v})",
                    t.name()
                );
            }
            let net = materialize(&t);
            assert!(net.is_connected(), "{} disconnected", t.name());
            assert_eq!(net.ap_count(), t.node_count());
            assert_eq!(net.link_count(), t.edge_count());
            assert!(net.cloudlet_count() >= 1);
        }
    }

    #[test]
    fn expected_sizes() {
        assert_eq!(abilene().node_count(), 11);
        assert_eq!(abilene().edge_count(), 14);
        assert_eq!(cesnet().node_count(), 12);
        assert_eq!(nsfnet().node_count(), 14);
        assert_eq!(nsfnet().edge_count(), 21);
        assert_eq!(aarnet().node_count(), 19);
        assert_eq!(garr().node_count(), 21);
        assert_eq!(att_na().node_count(), 25);
        assert_eq!(geant().node_count(), 34);
        assert_eq!(all().len(), 7);
    }

    #[test]
    fn node_names_are_unique() {
        for t in all() {
            let set: std::collections::HashSet<_> = t.node_names().iter().collect();
            assert_eq!(
                set.len(),
                t.node_count(),
                "{} has duplicate names",
                t.name()
            );
        }
    }

    #[test]
    fn abilene_diameter_is_reasonable() {
        let net = materialize(&abilene());
        let d = net.diameter_hops().unwrap();
        assert!((3..=6).contains(&d), "diameter {d}");
    }
}
