use std::collections::HashSet;

use crate::cloudlet::{Cloudlet, CloudletSpec};
use crate::error::TopologyError;
use crate::graph::{Link, Network};
use crate::ids::{CloudletId, LinkId, NodeId};
use crate::reliability::Reliability;

/// Incremental, validating constructor for [`Network`].
///
/// The builder assigns dense [`NodeId`]s in `add_ap` order, dense
/// [`LinkId`]s in `add_link` order, and dense [`CloudletId`]s in
/// `add_cloudlet` order.
///
/// # Example
///
/// ```
/// # use mec_topology::{NetworkBuilder, Reliability};
/// # fn main() -> Result<(), mec_topology::TopologyError> {
/// let mut b = NetworkBuilder::new();
/// let x = b.add_ap("x");
/// let y = b.add_ap("y");
/// b.add_link(x, y, 0.5)?;
/// b.add_cloudlet(y, 32, Reliability::new(0.99)?)?;
/// let net = b.build()?;
/// assert!(net.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    names: Vec<String>,
    links: Vec<Link>,
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    link_set: HashSet<(usize, usize)>,
    cloudlets: Vec<Cloudlet>,
    cloudlet_at: Vec<Option<CloudletId>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an access point and returns its id.
    pub fn add_ap(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len());
        self.names.push(name.into());
        self.adjacency.push(Vec::new());
        self.cloudlet_at.push(None);
        id
    }

    /// Number of APs added so far.
    pub fn ap_count(&self) -> usize {
        self.names.len()
    }

    /// Adds an undirected link with the given latency.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownNode`] if either endpoint does not exist.
    /// * [`TopologyError::SelfLoop`] if `a == b`.
    /// * [`TopologyError::DuplicateLink`] if the link already exists.
    /// * [`TopologyError::InvalidLatency`] if `latency` is negative or not
    ///   finite.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        latency: f64,
    ) -> Result<LinkId, TopologyError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if !latency.is_finite() || latency < 0.0 {
            return Err(TopologyError::InvalidLatency(latency));
        }
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        if !self.link_set.insert(key) {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link::new(id, a, b, latency));
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        Ok(id)
    }

    /// Whether a link between `a` and `b` already exists.
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        self.link_set.contains(&key)
    }

    /// Attaches a cloudlet to an AP.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownNode`] if `node` does not exist.
    /// * [`TopologyError::DuplicateCloudlet`] if the node already hosts one.
    /// * [`TopologyError::ZeroCapacity`] if `capacity == 0`.
    pub fn add_cloudlet(
        &mut self,
        node: NodeId,
        capacity: u64,
        reliability: Reliability,
    ) -> Result<CloudletId, TopologyError> {
        self.check_node(node)?;
        if self.cloudlet_at[node.index()].is_some() {
            return Err(TopologyError::DuplicateCloudlet(node));
        }
        let id = CloudletId(self.cloudlets.len());
        self.cloudlets
            .push(Cloudlet::new(id, node, capacity, reliability)?);
        self.cloudlet_at[node.index()] = Some(id);
        Ok(id)
    }

    /// Attaches a cloudlet described by a [`CloudletSpec`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`NetworkBuilder::add_cloudlet`].
    pub fn add_cloudlet_spec(&mut self, spec: &CloudletSpec) -> Result<CloudletId, TopologyError> {
        self.add_cloudlet(spec.node, spec.capacity, spec.reliability)
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyNetwork`] if no AP was added.
    pub fn build(self) -> Result<Network, TopologyError> {
        if self.names.is_empty() {
            return Err(TopologyError::EmptyNetwork);
        }
        Ok(Network::from_parts(
            self.names,
            self.links,
            self.adjacency,
            self.cloudlets,
            self.cloudlet_at,
        ))
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.index() < self.names.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn rejects_unknown_nodes() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        assert_eq!(
            b.add_link(a, NodeId(9), 1.0),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
        assert_eq!(
            b.add_cloudlet(NodeId(9), 1, rel(0.9)),
            Err(TopologyError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn rejects_self_loop_and_duplicates() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        assert_eq!(b.add_link(a, a, 1.0), Err(TopologyError::SelfLoop(a)));
        b.add_link(a, c, 1.0).unwrap();
        // Duplicate in either orientation is rejected.
        assert_eq!(
            b.add_link(c, a, 2.0),
            Err(TopologyError::DuplicateLink(c, a))
        );
        assert!(b.has_link(a, c));
        assert!(b.has_link(c, a));
    }

    #[test]
    fn rejects_bad_latency() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        assert!(matches!(
            b.add_link(a, c, -1.0),
            Err(TopologyError::InvalidLatency(_))
        ));
        assert!(matches!(
            b.add_link(a, c, f64::NAN),
            Err(TopologyError::InvalidLatency(_))
        ));
    }

    #[test]
    fn rejects_second_cloudlet_on_same_node() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        b.add_cloudlet(a, 10, rel(0.9)).unwrap();
        assert_eq!(
            b.add_cloudlet(a, 20, rel(0.95)),
            Err(TopologyError::DuplicateCloudlet(a))
        );
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(
            NetworkBuilder::new().build().unwrap_err(),
            TopologyError::EmptyNetwork
        );
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut b = NetworkBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| b.add_ap(format!("n{i}"))).collect();
        assert_eq!(ids, (0..5).map(NodeId).collect::<Vec<_>>());
        let l0 = b.add_link(ids[0], ids[1], 1.0).unwrap();
        let l1 = b.add_link(ids[1], ids[2], 1.0).unwrap();
        assert_eq!((l0, l1), (LinkId(0), LinkId(1)));
        let c0 = b.add_cloudlet(ids[2], 4, rel(0.9)).unwrap();
        let c1 = b.add_cloudlet(ids[0], 4, rel(0.9)).unwrap();
        assert_eq!((c0, c1), (CloudletId(0), CloudletId(1)));
    }

    #[test]
    fn spec_constructor_works() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let spec = CloudletSpec::new(a, 16, 0.99).unwrap();
        b.add_cloudlet_spec(&spec).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.cloudlet_count(), 1);
        assert_eq!(net.cloudlet_at(a).unwrap().capacity(), 16);
    }
}
