use std::fmt;

use crate::error::TopologyError;
use crate::ids::{CloudletId, NodeId};
use crate::reliability::Reliability;

/// An edge server co-located with an access point.
///
/// A cloudlet `c_j` has a computing capacity `cap_j`, measured in abstract
/// *computing units* (the same units as VNF demands `c(f_i)`), and a
/// reliability `r(c_j) ∈ (0, 1)`. When a cloudlet fails, every VNF instance
/// it hosts becomes unavailable at once — this is what makes the on-site
/// backup scheme's reliability ceiling equal to `r(c_j)`.
///
/// # Example
///
/// ```
/// # use mec_topology::{Cloudlet, CloudletId, NodeId, Reliability};
/// # fn main() -> Result<(), mec_topology::TopologyError> {
/// let c = Cloudlet::new(CloudletId(0), NodeId(3), 120, Reliability::new(0.995)?)?;
/// assert_eq!(c.capacity(), 120);
/// assert_eq!(c.node(), NodeId(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cloudlet {
    id: CloudletId,
    node: NodeId,
    capacity: u64,
    reliability: Reliability,
}

impl Cloudlet {
    /// Creates a cloudlet.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(
        id: CloudletId,
        node: NodeId,
        capacity: u64,
        reliability: Reliability,
    ) -> Result<Self, TopologyError> {
        if capacity == 0 {
            return Err(TopologyError::ZeroCapacity);
        }
        Ok(Cloudlet {
            id,
            node,
            capacity,
            reliability,
        })
    }

    /// The dense identifier of this cloudlet.
    pub fn id(&self) -> CloudletId {
        self.id
    }

    /// The access point this cloudlet is co-located with.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Computing capacity `cap_j` in computing units.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Reliability `r(c_j)`.
    pub fn reliability(&self) -> Reliability {
        self.reliability
    }
}

impl fmt::Display for Cloudlet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} cap={} r={}",
            self.id, self.node, self.capacity, self.reliability
        )
    }
}

/// A blueprint for a cloudlet used by builders and random generators.
///
/// Unlike [`Cloudlet`] it has no id yet; ids are assigned densely when the
/// network is built.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudletSpec {
    /// Access point hosting the cloudlet.
    pub node: NodeId,
    /// Capacity in computing units (must be positive).
    pub capacity: u64,
    /// Cloudlet reliability `r(c_j)`.
    pub reliability: Reliability,
}

impl CloudletSpec {
    /// Convenience constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ZeroCapacity`] if `capacity == 0`, or a
    /// reliability range error from [`Reliability::new`].
    pub fn new(node: NodeId, capacity: u64, reliability: f64) -> Result<Self, TopologyError> {
        if capacity == 0 {
            return Err(TopologyError::ZeroCapacity);
        }
        Ok(CloudletSpec {
            node,
            capacity,
            reliability: Reliability::new(reliability)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    #[test]
    fn rejects_zero_capacity() {
        assert_eq!(
            Cloudlet::new(CloudletId(0), NodeId(0), 0, rel(0.9)),
            Err(TopologyError::ZeroCapacity)
        );
        assert!(CloudletSpec::new(NodeId(0), 0, 0.9).is_err());
    }

    #[test]
    fn accessors_return_constructor_values() {
        let c = Cloudlet::new(CloudletId(2), NodeId(5), 64, rel(0.97)).unwrap();
        assert_eq!(c.id(), CloudletId(2));
        assert_eq!(c.node(), NodeId(5));
        assert_eq!(c.capacity(), 64);
        assert_eq!(c.reliability().value(), 0.97);
    }

    #[test]
    fn display_mentions_ids() {
        let c = Cloudlet::new(CloudletId(1), NodeId(4), 10, rel(0.9)).unwrap();
        let s = c.to_string();
        assert!(s.contains("c1"));
        assert!(s.contains("n4"));
    }

    #[test]
    fn spec_validates_reliability() {
        assert!(CloudletSpec::new(NodeId(1), 5, 1.2).is_err());
        let s = CloudletSpec::new(NodeId(1), 5, 0.95).unwrap();
        assert_eq!(s.capacity, 5);
    }
}
