//! Shared-risk failure domains.
//!
//! The paper's availability model (Eqs. 3 and 10) assumes cloudlets fail
//! independently, but edge deployments fail in *correlated* groups: a
//! power zone, an aggregation switch, or a rack takes several cloudlets
//! down at once. A [`FailureDomain`] names such a shared-risk group — a
//! set of cloudlets that crash and repair *together* — with its own
//! MTTF/MTTR, so a fault injector can sample domain-level outages on top
//! of the independent per-cloudlet process.
//!
//! Domains can be given explicitly ([`FailureDomainSet::from_groups`]) or
//! derived from the graph itself: [`FailureDomainSet::zones`] partitions
//! cloudlets into hop-distance zones (shared power/aggregation risk of
//! physical proximity), and [`FailureDomainSet::articulation`] groups each
//! set of cloudlets whose connectivity hangs off a single articulation AP
//! (shared uplink risk). Domains from different derivations may overlap —
//! a cloudlet is down while *any* of its domains is down.

use crate::error::TopologyError;
use crate::graph::Network;
use crate::ids::{CloudletId, NodeId};

/// A shared-risk group of cloudlets with a common outage process.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDomain {
    members: Vec<CloudletId>,
    mttf: f64,
    mttr: f64,
    label: String,
}

impl FailureDomain {
    /// Builds a domain over `members` with the given mean time to failure
    /// and repair (both in slots).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyDomain`] when `members` is empty,
    /// [`TopologyError::DuplicateDomainMember`] when a cloudlet appears
    /// twice in the *same* domain, and
    /// [`TopologyError::InvalidDomainRate`] when a mean time is not a
    /// finite number ≥ 1.
    pub fn new(
        members: Vec<CloudletId>,
        mttf: f64,
        mttr: f64,
        label: impl Into<String>,
    ) -> Result<Self, TopologyError> {
        if members.is_empty() {
            return Err(TopologyError::EmptyDomain);
        }
        let mut seen = vec![];
        for &c in &members {
            if seen.contains(&c) {
                return Err(TopologyError::DuplicateDomainMember(c));
            }
            seen.push(c);
        }
        for rate in [mttf, mttr] {
            if !rate.is_finite() || rate < 1.0 {
                return Err(TopologyError::InvalidDomainRate(rate));
            }
        }
        Ok(FailureDomain {
            members,
            mttf,
            mttr,
            label: label.into(),
        })
    }

    /// Member cloudlets, in the order given at construction.
    pub fn members(&self) -> &[CloudletId] {
        &self.members
    }

    /// Mean time to failure of the whole domain, in slots.
    pub fn mttf(&self) -> f64 {
        self.mttf
    }

    /// Mean time to repair of the whole domain, in slots.
    pub fn mttr(&self) -> f64 {
        self.mttr
    }

    /// Human-readable label (e.g. `"zone-2"` or `"cut@ap7"`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether `cloudlet` belongs to this domain.
    pub fn contains(&self, cloudlet: CloudletId) -> bool {
        self.members.contains(&cloudlet)
    }
}

/// An ordered collection of failure domains over one network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailureDomainSet {
    domains: Vec<FailureDomain>,
}

impl FailureDomainSet {
    /// A set with no domains — correlated outages disabled.
    pub fn empty() -> Self {
        FailureDomainSet::default()
    }

    /// Builds a set from explicit member lists, all sharing one MTTF/MTTR.
    ///
    /// Groups may overlap (a cloudlet in two groups is down while either
    /// is); a cloudlet repeated inside *one* group is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownCloudlet`] for a member index
    /// outside the network, plus the [`FailureDomain::new`] errors.
    pub fn from_groups(
        network: &Network,
        groups: &[Vec<CloudletId>],
        mttf: f64,
        mttr: f64,
    ) -> Result<Self, TopologyError> {
        let m = network.cloudlet_count();
        let mut domains = Vec::with_capacity(groups.len());
        for (d, group) in groups.iter().enumerate() {
            for &c in group {
                if c.index() >= m {
                    return Err(TopologyError::UnknownCloudlet(c));
                }
            }
            domains.push(FailureDomain::new(
                group.clone(),
                mttf,
                mttr,
                format!("group-{d}"),
            )?);
        }
        Ok(FailureDomainSet { domains })
    }

    /// Partitions the cloudlets into `zones` hop-distance zones.
    ///
    /// Seeds are chosen by the farthest-point heuristic (first the
    /// lowest-id cloudlet, then repeatedly the cloudlet maximizing its
    /// hop distance to all chosen seeds, ties to the lowest id); every
    /// cloudlet joins the zone of its nearest seed. `zones` is clamped to
    /// `[1, cloudlet_count]`. The construction is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::EmptyDomain`] when the network has no
    /// cloudlets or `zones == 0`, and [`TopologyError::InvalidDomainRate`]
    /// for a mean time that is not finite and ≥ 1.
    pub fn zones(
        network: &Network,
        zones: usize,
        mttf: f64,
        mttr: f64,
    ) -> Result<Self, TopologyError> {
        if zones == 0 || network.cloudlet_count() == 0 {
            return Err(TopologyError::EmptyDomain);
        }
        let sites: Vec<(CloudletId, NodeId)> =
            network.cloudlets().map(|c| (c.id(), c.node())).collect();
        let zones = zones.min(sites.len());
        // Hop distances from every cloudlet's AP to every node.
        let dist: Vec<Vec<usize>> = sites
            .iter()
            .map(|&(_, node)| network.hop_distances(node))
            .collect();
        // Farthest-point seeding over cloudlet indices.
        let mut seeds: Vec<usize> = vec![0];
        while seeds.len() < zones {
            let next = (0..sites.len())
                .filter(|i| !seeds.contains(i))
                .max_by_key(|&i| {
                    let d = seeds
                        .iter()
                        .map(|&s| dist[s][sites[i].1.index()])
                        .min()
                        .unwrap_or(0);
                    // Prefer the farthest cloudlet; break ties toward the
                    // lowest id by keying on (distance, reversed index).
                    (d, usize::MAX - i)
                })
                .expect("fewer seeds than cloudlets");
            seeds.push(next);
        }
        let mut members: Vec<Vec<CloudletId>> = vec![Vec::new(); zones];
        for (i, &(id, node)) in sites.iter().enumerate() {
            let zone = seeds
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| {
                    if s == i {
                        (0, 0)
                    } else {
                        (dist[s][node.index()], s)
                    }
                })
                .map(|(z, _)| z)
                .expect("at least one seed");
            members[zone].push(id);
        }
        let mut domains = Vec::new();
        for (z, group) in members.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            domains.push(FailureDomain::new(group, mttf, mttr, format!("zone-{z}"))?);
        }
        Ok(FailureDomainSet { domains })
    }

    /// Derives one domain per articulation AP whose removal disconnects
    /// cloudlets from the main component.
    ///
    /// For each articulation point `v` (found by lowlink DFS), the domain
    /// is the cloudlet at `v` (if any) plus every cloudlet in a component
    /// of `G − v` other than the largest one — those cloudlets share `v`
    /// as a single point of failure for their connectivity. Articulation
    /// points that strand no cloudlet produce no domain; the result may
    /// be empty (e.g. on a 2-connected graph).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidDomainRate`] for a mean time that
    /// is not finite and ≥ 1.
    pub fn articulation(network: &Network, mttf: f64, mttr: f64) -> Result<Self, TopologyError> {
        let n = network.ap_count();
        let cut = articulation_points(network);
        let mut domains = Vec::new();
        for (v, &is_cut) in cut.iter().enumerate() {
            if !is_cut {
                continue;
            }
            // Components of G − v, in discovery (lowest-node-id) order.
            let mut comp = vec![usize::MAX; n];
            let mut sizes: Vec<usize> = Vec::new();
            for s in 0..n {
                if s == v || comp[s] != usize::MAX {
                    continue;
                }
                let c = sizes.len();
                sizes.push(0);
                let mut stack = vec![s];
                comp[s] = c;
                while let Some(u) = stack.pop() {
                    sizes[c] += 1;
                    for &(w, _) in network.neighbors(NodeId(u)) {
                        let w = w.index();
                        if w != v && comp[w] == usize::MAX {
                            comp[w] = c;
                            stack.push(w);
                        }
                    }
                }
            }
            let Some(core) = (0..sizes.len()).max_by_key(|&c| (sizes[c], usize::MAX - c)) else {
                continue;
            };
            let mut members: Vec<CloudletId> = Vec::new();
            if let Some(c) = network.cloudlet_at(NodeId(v)) {
                members.push(c.id());
            }
            for c in network.cloudlets() {
                let u = c.node().index();
                if u != v && comp[u] != core {
                    members.push(c.id());
                }
            }
            if members.is_empty() {
                continue;
            }
            domains.push(FailureDomain::new(
                members,
                mttf,
                mttr,
                format!("cut@ap{v}"),
            )?);
        }
        Ok(FailureDomainSet { domains })
    }

    /// The domains, in id order.
    pub fn domains(&self) -> &[FailureDomain] {
        &self.domains
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the set has no domains.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Indices of the domains containing `cloudlet`.
    pub fn domains_of(&self, cloudlet: CloudletId) -> Vec<usize> {
        self.domains
            .iter()
            .enumerate()
            .filter(|(_, d)| d.contains(cloudlet))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Articulation points by iterative lowlink DFS (handles disconnected
/// graphs; the root of a DFS tree is an articulation point iff it has
/// more than one child).
fn articulation_points(network: &Network) -> Vec<bool> {
    let n = network.ap_count();
    let mut is_cut = vec![false; n];
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut timer = 0usize;
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        // Stack frames: (node, parent, next-neighbor index).
        let mut stack: Vec<(usize, usize, usize)> = vec![(root, usize::MAX, 0)];
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(frame) = stack.last_mut() {
            let (v, parent) = (frame.0, frame.1);
            let nbrs = network.neighbors(NodeId(v));
            if frame.2 < nbrs.len() {
                let w = nbrs[frame.2].0.index();
                frame.2 += 1;
                if disc[w] == usize::MAX {
                    if v == root {
                        root_children += 1;
                    }
                    disc[w] = timer;
                    low[w] = timer;
                    timer += 1;
                    stack.push((w, v, 0));
                } else if w != parent {
                    low[v] = low[v].min(disc[w]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if p != root && low[v] >= disc[p] {
                        is_cut[p] = true;
                    }
                }
            }
        }
        is_cut[root] = root_children > 1;
    }
    is_cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::reliability::Reliability;

    /// A chain ap0–ap1–…–ap{n−1}, cloudlet on every AP.
    fn chain(n: usize) -> Network {
        let mut b = NetworkBuilder::new();
        let mut prev = None;
        for i in 0..n {
            let ap = b.add_ap(format!("ap{i}"));
            if let Some(p) = prev {
                b.add_link(p, ap, 1.0).unwrap();
            }
            prev = Some(ap);
            b.add_cloudlet(ap, 10, Reliability::new(0.99).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    /// A 4-cycle (2-connected): no articulation points.
    fn cycle4() -> Network {
        let mut b = NetworkBuilder::new();
        let aps: Vec<_> = (0..4).map(|i| b.add_ap(format!("c{i}"))).collect();
        for i in 0..4 {
            b.add_link(aps[i], aps[(i + 1) % 4], 1.0).unwrap();
        }
        for &ap in &aps {
            b.add_cloudlet(ap, 10, Reliability::new(0.95).unwrap())
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn explicit_groups_validate_members() {
        let net = chain(4);
        let ok = FailureDomainSet::from_groups(
            &net,
            &[vec![CloudletId(0), CloudletId(1)], vec![CloudletId(3)]],
            20.0,
            3.0,
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.domains()[0].members().len(), 2);
        assert!(ok.domains()[0].contains(CloudletId(1)));
        assert_eq!(ok.domains_of(CloudletId(3)), vec![1]);
        assert!(ok.domains_of(CloudletId(2)).is_empty());

        let unknown =
            FailureDomainSet::from_groups(&net, &[vec![CloudletId(9)]], 20.0, 3.0).unwrap_err();
        assert_eq!(unknown, TopologyError::UnknownCloudlet(CloudletId(9)));
        let dup =
            FailureDomainSet::from_groups(&net, &[vec![CloudletId(0), CloudletId(0)]], 20.0, 3.0)
                .unwrap_err();
        assert_eq!(dup, TopologyError::DuplicateDomainMember(CloudletId(0)));
        assert!(FailureDomainSet::from_groups(&net, &[vec![]], 20.0, 3.0).is_err());
    }

    #[test]
    fn domain_rates_validated() {
        for (mttf, mttr) in [
            (0.5, 3.0),
            (20.0, 0.0),
            (f64::NAN, 3.0),
            (20.0, f64::INFINITY),
        ] {
            let e = FailureDomain::new(vec![CloudletId(0)], mttf, mttr, "x").unwrap_err();
            assert!(matches!(e, TopologyError::InvalidDomainRate(_)));
        }
        let d = FailureDomain::new(vec![CloudletId(0)], 1.0, 1.0, "x").unwrap();
        assert!((d.mttf() - 1.0).abs() < 1e-12);
        assert!((d.mttr() - 1.0).abs() < 1e-12);
        assert_eq!(d.label(), "x");
    }

    #[test]
    fn zones_partition_all_cloudlets() {
        let net = chain(6);
        let set = FailureDomainSet::zones(&net, 3, 25.0, 4.0).unwrap();
        assert!(!set.is_empty() && set.len() <= 3);
        let mut covered: Vec<usize> = set
            .domains()
            .iter()
            .flat_map(|d| d.members().iter().map(|c| c.index()))
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3, 4, 5], "zones must partition");
        // Zones of a chain are contiguous runs.
        for d in set.domains() {
            let idx: Vec<usize> = d.members().iter().map(|c| c.index()).collect();
            for w in idx.windows(2) {
                assert_eq!(w[1], w[0] + 1, "zone not contiguous on a chain: {idx:?}");
            }
        }
        // Deterministic: same inputs, same partition.
        let again = FailureDomainSet::zones(&net, 3, 25.0, 4.0).unwrap();
        assert_eq!(set, again);
        // Degenerate parameters.
        assert!(FailureDomainSet::zones(&net, 0, 25.0, 4.0).is_err());
        let one = FailureDomainSet::zones(&net, 1, 25.0, 4.0).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one.domains()[0].members().len(), 6);
        let many = FailureDomainSet::zones(&net, 99, 25.0, 4.0).unwrap();
        assert_eq!(many.len(), 6);
    }

    #[test]
    fn articulation_domains_on_a_chain() {
        // On a 5-chain, ap1..ap3 are articulation points; each strands the
        // shorter side plus itself.
        let net = chain(5);
        let set = FailureDomainSet::articulation(&net, 30.0, 5.0).unwrap();
        assert_eq!(set.len(), 3);
        let members: Vec<Vec<usize>> = set
            .domains()
            .iter()
            .map(|d| {
                let mut v: Vec<usize> = d.members().iter().map(|c| c.index()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        // Cutting ap1 strands {0}; domain = {1, 0}. Cutting ap2 splits
        // into {0,1} and {3,4} — the size tie resolves to the first-
        // discovered side as core, so the domain is {2, 3, 4}. Cutting
        // ap3 strands {4}; domain = {3, 4}.
        assert_eq!(members[0], vec![0, 1]);
        assert_eq!(members[1], vec![2, 3, 4]);
        assert_eq!(members[2], vec![3, 4]);
        assert!(set.domains()[0].label().starts_with("cut@ap"));
    }

    #[test]
    fn two_connected_graph_has_no_articulation_domains() {
        let set = FailureDomainSet::articulation(&cycle4(), 30.0, 5.0).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn overlapping_groups_are_allowed_across_domains() {
        let net = chain(3);
        let set = FailureDomainSet::from_groups(
            &net,
            &[
                vec![CloudletId(0), CloudletId(1)],
                vec![CloudletId(1), CloudletId(2)],
            ],
            15.0,
            2.0,
        )
        .unwrap();
        assert_eq!(set.domains_of(CloudletId(1)), vec![0, 1]);
    }
}
