use std::error::Error;
use std::fmt;

use crate::ids::NodeId;

/// Errors produced while constructing or querying an MEC network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A reliability value fell outside the open interval `(0, 1)`.
    ReliabilityOutOfRange(f64),
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A link was added between a node and itself.
    SelfLoop(NodeId),
    /// A link between these two nodes already exists.
    DuplicateLink(NodeId, NodeId),
    /// A cloudlet was attached to a node that already hosts one.
    DuplicateCloudlet(NodeId),
    /// A link latency was not a finite, non-negative number.
    InvalidLatency(f64),
    /// A cloudlet capacity of zero was given.
    ZeroCapacity,
    /// The built network would be empty.
    EmptyNetwork,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ReliabilityOutOfRange(v) => {
                write!(f, "reliability {v} is outside the open interval (0, 1)")
            }
            TopologyError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            TopologyError::SelfLoop(id) => write!(f, "self-loop on node {id:?}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "link between {a:?} and {b:?} already exists")
            }
            TopologyError::DuplicateCloudlet(id) => {
                write!(f, "node {id:?} already hosts a cloudlet")
            }
            TopologyError::InvalidLatency(v) => {
                write!(f, "latency {v} is not a finite non-negative number")
            }
            TopologyError::ZeroCapacity => write!(f, "cloudlet capacity must be positive"),
            TopologyError::EmptyNetwork => write!(f, "network has no nodes"),
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TopologyError::ReliabilityOutOfRange(1.5),
            TopologyError::UnknownNode(NodeId(7)),
            TopologyError::SelfLoop(NodeId(0)),
            TopologyError::DuplicateLink(NodeId(1), NodeId(2)),
            TopologyError::DuplicateCloudlet(NodeId(3)),
            TopologyError::InvalidLatency(f64::NAN),
            TopologyError::ZeroCapacity,
            TopologyError::EmptyNetwork,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(TopologyError::ZeroCapacity);
        assert!(e.source().is_none());
    }
}
