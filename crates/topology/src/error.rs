use std::error::Error;
use std::fmt;

use crate::ids::{CloudletId, NodeId};

/// Errors produced while constructing or querying an MEC network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A reliability value fell outside the open interval `(0, 1)`.
    ReliabilityOutOfRange(f64),
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A link was added between a node and itself.
    SelfLoop(NodeId),
    /// A link between these two nodes already exists.
    DuplicateLink(NodeId, NodeId),
    /// A cloudlet was attached to a node that already hosts one.
    DuplicateCloudlet(NodeId),
    /// A link latency was not a finite, non-negative number.
    InvalidLatency(f64),
    /// A cloudlet capacity of zero was given.
    ZeroCapacity,
    /// The built network would be empty.
    EmptyNetwork,
    /// A cloudlet id referenced a cloudlet that does not exist.
    UnknownCloudlet(CloudletId),
    /// A failure domain was declared with no member cloudlets.
    EmptyDomain,
    /// A cloudlet appeared more than once in the same failure domain.
    DuplicateDomainMember(CloudletId),
    /// A domain mean time (MTTF/MTTR) was not a finite number ≥ 1 slot.
    InvalidDomainRate(f64),
    /// A placement fraction fell outside `(0, 1]`.
    InvalidFraction(f64),
    /// A capacity range was inverted (`lo > hi`).
    InvalidCapacityRange(u64, u64),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ReliabilityOutOfRange(v) => {
                write!(f, "reliability {v} is outside the open interval (0, 1)")
            }
            TopologyError::UnknownNode(id) => write!(f, "unknown node {id:?}"),
            TopologyError::SelfLoop(id) => write!(f, "self-loop on node {id:?}"),
            TopologyError::DuplicateLink(a, b) => {
                write!(f, "link between {a:?} and {b:?} already exists")
            }
            TopologyError::DuplicateCloudlet(id) => {
                write!(f, "node {id:?} already hosts a cloudlet")
            }
            TopologyError::InvalidLatency(v) => {
                write!(f, "latency {v} is not a finite non-negative number")
            }
            TopologyError::ZeroCapacity => write!(f, "cloudlet capacity must be positive"),
            TopologyError::EmptyNetwork => write!(f, "network has no nodes"),
            TopologyError::UnknownCloudlet(id) => write!(f, "unknown cloudlet {id:?}"),
            TopologyError::EmptyDomain => write!(f, "failure domain has no member cloudlets"),
            TopologyError::DuplicateDomainMember(id) => {
                write!(f, "cloudlet {id:?} appears twice in one failure domain")
            }
            TopologyError::InvalidDomainRate(v) => {
                write!(
                    f,
                    "domain mean time {v} must be a finite number of slots ≥ 1"
                )
            }
            TopologyError::InvalidFraction(v) => {
                write!(f, "placement fraction {v} is outside (0, 1]")
            }
            TopologyError::InvalidCapacityRange(lo, hi) => {
                write!(f, "capacity range [{lo}, {hi}] is inverted")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TopologyError::ReliabilityOutOfRange(1.5),
            TopologyError::UnknownNode(NodeId(7)),
            TopologyError::SelfLoop(NodeId(0)),
            TopologyError::DuplicateLink(NodeId(1), NodeId(2)),
            TopologyError::DuplicateCloudlet(NodeId(3)),
            TopologyError::InvalidLatency(f64::NAN),
            TopologyError::ZeroCapacity,
            TopologyError::EmptyNetwork,
            TopologyError::UnknownCloudlet(CloudletId(4)),
            TopologyError::EmptyDomain,
            TopologyError::DuplicateDomainMember(CloudletId(1)),
            TopologyError::InvalidDomainRate(0.2),
            TopologyError::InvalidFraction(-1.0),
            TopologyError::InvalidCapacityRange(9, 3),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(TopologyError::ZeroCapacity);
        assert!(e.source().is_none());
    }
}
