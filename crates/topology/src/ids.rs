use std::fmt;

/// Identifier of an access point (a vertex of the MEC graph).
///
/// Node ids are dense indices assigned in insertion order, so they can be
/// used to index per-node arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifier of an undirected link between two access points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Identifier of a cloudlet.
///
/// Cloudlet ids are dense indices in insertion order; the set of cloudlets
/// is usually much smaller than the set of APs, and scheduling code indexes
/// per-cloudlet state (capacity ledgers, dual variables) by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CloudletId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl CloudletId {
    /// Returns the underlying dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Display for CloudletId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl From<LinkId> for usize {
    fn from(id: LinkId) -> usize {
        id.0
    }
}

impl From<CloudletId> for usize {
    fn from(id: CloudletId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(NodeId(1) < NodeId(2));
        assert!(CloudletId(0) < CloudletId(9));
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(LinkId(3).to_string(), "l3");
        assert_eq!(CloudletId(2).to_string(), "c2");
    }

    #[test]
    fn ids_convert_to_usize() {
        assert_eq!(usize::from(NodeId(5)), 5);
        assert_eq!(usize::from(LinkId(6)), 6);
        assert_eq!(usize::from(CloudletId(7)), 7);
        assert_eq!(NodeId(5).index(), 5);
    }
}
