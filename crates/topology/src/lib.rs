//! Network model for Mobile Edge Computing (MEC) simulations.
//!
//! An MEC network is an undirected graph `G = (V, E)` whose vertices are
//! access points (APs) and whose edges are the links between them. A subset
//! of APs is co-located with a *cloudlet* — an edge server (or small cluster)
//! with a bounded computing capacity and a reliability in `(0, 1)`.
//!
//! This crate provides:
//!
//! * [`Network`] — the graph itself, with shortest-path queries,
//! * [`Cloudlet`] — capacity + reliability attached to an AP,
//! * [`NetworkBuilder`] — incremental construction with validation,
//! * [`zoo`] — real topologies embedded from the Internet Topology Zoo,
//! * [`generators`] — random topologies (Erdős–Rényi, Barabási–Albert,
//!   Waxman, grid, ring, star) for parameter sweeps,
//! * [`Reliability`] — a checked probability newtype shared by cloudlets
//!   and (downstream) VNF types.
//!
//! # Example
//!
//! ```
//! # use mec_topology::{NetworkBuilder, Reliability};
//! # fn main() -> Result<(), mec_topology::TopologyError> {
//! let mut b = NetworkBuilder::new();
//! let a = b.add_ap("ap-a");
//! let c = b.add_ap("ap-b");
//! b.add_link(a, c, 1.0)?;
//! b.add_cloudlet(a, 100, Reliability::new(0.99)?)?;
//! let net = b.build()?;
//! assert_eq!(net.ap_count(), 2);
//! assert_eq!(net.cloudlet_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod cloudlet;
mod domain;
mod error;
pub mod generators;
mod graph;
mod ids;
mod reliability;
pub mod stats;
pub mod zoo;

pub use builder::NetworkBuilder;
pub use cloudlet::{Cloudlet, CloudletSpec};
pub use domain::{FailureDomain, FailureDomainSet};
pub use error::TopologyError;
pub use graph::{Link, Network, PathResult};
pub use ids::{CloudletId, LinkId, NodeId};
pub use reliability::Reliability;
