use std::cmp::Ordering;
use std::fmt;

use crate::error::TopologyError;

/// A checked probability of availability in the open interval `(0, 1)`.
///
/// The paper models every component reliability — cloudlets `r(c_j)` and VNF
/// types `r(f_i)` — as a constant strictly between 0 and 1. Excluding the
/// endpoints matters: several formulas divide by `−ln(1 − r_f · r_c)` or take
/// `log_{1−r(f_i)}`, which degenerate at 0 and 1.
///
/// # Example
///
/// ```
/// # use mec_topology::Reliability;
/// # fn main() -> Result<(), mec_topology::TopologyError> {
/// let r = Reliability::new(0.99)?;
/// assert!((r.failure() - 0.01).abs() < 1e-12);
/// assert!(Reliability::new(1.0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reliability(f64);

impl Reliability {
    /// Creates a reliability from a probability.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ReliabilityOutOfRange`] unless
    /// `0 < value < 1` and `value` is finite.
    pub fn new(value: f64) -> Result<Self, TopologyError> {
        if value.is_finite() && value > 0.0 && value < 1.0 {
            Ok(Reliability(value))
        } else {
            Err(TopologyError::ReliabilityOutOfRange(value))
        }
    }

    /// Returns the probability of availability.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Returns the probability of failure, `1 − r`.
    pub fn failure(self) -> f64 {
        1.0 - self.0
    }

    /// Natural log of the failure probability, `ln(1 − r)` (always negative).
    pub fn ln_failure(self) -> f64 {
        self.failure().ln()
    }

    /// Combined reliability of two components in *series*: both must be up.
    ///
    /// Used for a VNF instance inside a cloudlet: the instance serves only
    /// while both the software and the hosting cloudlet are alive, i.e.
    /// `r(f_i) · r(c_j)`.
    pub fn in_series(self, other: Reliability) -> Reliability {
        // The product of two values in (0,1) stays in (0,1).
        Reliability(self.0 * other.0)
    }

    /// Combined reliability of two components in *parallel*: at least one up.
    ///
    /// `1 − (1 − a)(1 − b)`; used when replicas back each other up.
    pub fn in_parallel(self, other: Reliability) -> Reliability {
        Reliability(1.0 - self.failure() * other.failure())
    }
}

impl Eq for Reliability {}

// Reliability is always a finite, non-NaN number, so total order is sound.
impl Ord for Reliability {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("reliability values are never NaN")
    }
}

impl PartialOrd for Reliability {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Reliability {
    type Error = TopologyError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Reliability::new(value)
    }
}

impl From<Reliability> for f64 {
    fn from(r: Reliability) -> f64 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_interval_only() {
        assert!(Reliability::new(0.5).is_ok());
        assert!(Reliability::new(1e-12).is_ok());
        assert!(Reliability::new(0.999_999).is_ok());
        assert!(Reliability::new(0.0).is_err());
        assert!(Reliability::new(1.0).is_err());
        assert!(Reliability::new(-0.3).is_err());
        assert!(Reliability::new(f64::NAN).is_err());
        assert!(Reliability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn failure_complements_value() {
        let r = Reliability::new(0.93).unwrap();
        assert!((r.value() + r.failure() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn ln_failure_is_negative() {
        let r = Reliability::new(0.9999).unwrap();
        assert!(r.ln_failure() < 0.0);
    }

    #[test]
    fn series_reduces_parallel_increases() {
        let a = Reliability::new(0.9).unwrap();
        let b = Reliability::new(0.8).unwrap();
        let s = a.in_series(b);
        let p = a.in_parallel(b);
        assert!(s < a && s < b);
        assert!(p > a && p > b);
        assert!((s.value() - 0.72).abs() < 1e-12);
        assert!((p.value() - 0.98).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Reliability::new(0.99).unwrap(),
            Reliability::new(0.9).unwrap(),
            Reliability::new(0.95).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].value(), 0.9);
        assert_eq!(v[2].value(), 0.99);
    }

    #[test]
    fn conversions_round_trip() {
        let r = Reliability::try_from(0.42).unwrap();
        let f: f64 = r.into();
        assert_eq!(f, 0.42);
    }
}
