//! Random topology generators for parameter sweeps.
//!
//! The paper evaluates on real topologies from the Internet Topology Zoo;
//! random generators complement them when an experiment needs to scale the
//! network size or control structural properties. All generators take an
//! explicit RNG so experiments are reproducible under a fixed seed.
//!
//! Every generator guarantees a *connected* graph: Erdős–Rényi and Waxman
//! graphs are patched by linking each non-initial component to a uniformly
//! random node already reached (adding the minimum number of extra edges).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::NetworkBuilder;
use crate::error::TopologyError;
use crate::graph::Network;
use crate::ids::NodeId;
use crate::reliability::Reliability;

/// How cloudlets are attached to a generated (or embedded) topology.
///
/// The paper co-locates a cloudlet with a subset of APs; capacities and
/// reliabilities are drawn uniformly, with the reliability interval
/// `[rc_min, rc_max]` directly implementing the `K = rc_max / rc_min`
/// sweep of Figure 2(b).
#[derive(Debug, Clone, PartialEq)]
pub struct CloudletPlacement {
    /// Fraction of APs that host a cloudlet, in `(0, 1]`.
    pub fraction: f64,
    /// Inclusive capacity range in computing units.
    pub capacity: (u64, u64),
    /// Inclusive reliability range `[rc_min, rc_max]`, both in `(0, 1)`.
    pub reliability: (f64, f64),
}

impl CloudletPlacement {
    /// A placement putting cloudlets on half the APs with moderate capacity
    /// and reliability in `[0.99, 0.9999]`.
    pub fn balanced() -> Self {
        CloudletPlacement {
            fraction: 0.5,
            capacity: (80, 120),
            reliability: (0.99, 0.9999),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::ReliabilityOutOfRange`] if the reliability
    /// interval leaves `(0, 1)` or is inverted,
    /// [`TopologyError::ZeroCapacity`] for a zero capacity bound,
    /// [`TopologyError::InvalidCapacityRange`] for an inverted capacity
    /// range, and [`TopologyError::InvalidFraction`] when the fraction is
    /// not in `(0, 1]` (NaN included).
    pub fn validate(&self) -> Result<(), TopologyError> {
        let (lo, hi) = self.reliability;
        if !(lo > 0.0 && hi < 1.0 && lo <= hi) {
            return Err(TopologyError::ReliabilityOutOfRange(if lo <= 0.0 {
                lo
            } else {
                hi
            }));
        }
        if self.capacity.0 == 0 {
            return Err(TopologyError::ZeroCapacity);
        }
        if self.capacity.0 > self.capacity.1 {
            return Err(TopologyError::InvalidCapacityRange(
                self.capacity.0,
                self.capacity.1,
            ));
        }
        if !(self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(TopologyError::InvalidFraction(self.fraction));
        }
        Ok(())
    }

    /// Applies this placement to a builder that already has its APs.
    pub(crate) fn apply<R: Rng + ?Sized>(
        &self,
        builder: &mut NetworkBuilder,
        rng: &mut R,
    ) -> Result<(), TopologyError> {
        self.validate()?;
        let n = builder.ap_count();
        // At least one cloudlet, otherwise no request can ever be admitted.
        let count = ((n as f64 * self.fraction).round() as usize).clamp(1, n);
        let mut nodes: Vec<usize> = (0..n).collect();
        nodes.shuffle(rng);
        for &v in nodes.iter().take(count) {
            let cap = rng.gen_range(self.capacity.0..=self.capacity.1);
            let rel = rng.gen_range(self.reliability.0..=self.reliability.1);
            builder.add_cloudlet(NodeId(v), cap, Reliability::new(rel)?)?;
        }
        Ok(())
    }
}

/// Ensures connectivity by wiring each unreached component to a random
/// already-reached node.
fn connect_components<R: Rng + ?Sized>(
    builder: &mut NetworkBuilder,
    adjacency: &mut [Vec<usize>],
    rng: &mut R,
) -> Result<(), TopologyError> {
    let n = adjacency.len();
    let mut seen = vec![false; n];
    let mut reached: Vec<usize> = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        if !reached.is_empty() {
            let anchor = *reached
                .get(rng.gen_range(0..reached.len()))
                .expect("reached is non-empty");
            builder.add_link(NodeId(anchor), NodeId(start), 1.0)?;
            adjacency[anchor].push(start);
            adjacency[start].push(anchor);
        }
        // DFS the component of `start`.
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            reached.push(v);
            for &u in &adjacency[v] {
                if !seen[u] {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
    }
    Ok(())
}

/// Generates a connected Erdős–Rényi graph `G(n, p)`.
///
/// Each of the `n·(n−1)/2` candidate links is present independently with
/// probability `p`; extra links are added afterwards if needed to connect
/// the graph. Latencies are drawn uniformly from `[0.5, 2.0)`.
///
/// # Errors
///
/// Propagates builder errors; returns [`TopologyError::EmptyNetwork`] when
/// `n == 0`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.add_ap(format!("er{i}"));
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_link(NodeId(i), NodeId(j), rng.gen_range(0.5..2.0))?;
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    connect_components(&mut b, &mut adj, rng)?;
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique of `m + 1` nodes; each subsequent node attaches to
/// `m` distinct existing nodes chosen proportionally to their degree. The
/// result is always connected.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when `n == 0`; `m` is clamped to
/// `[1, n−1]` internally.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let m = m.clamp(1, n.saturating_sub(1).max(1));
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.add_ap(format!("ba{i}"));
    }
    // `stubs` holds one entry per edge endpoint, so sampling uniformly from
    // it is degree-proportional sampling.
    let mut stubs: Vec<usize> = Vec::new();
    let seed = (m + 1).min(n);
    for i in 0..seed {
        for j in (i + 1)..seed {
            b.add_link(NodeId(i), NodeId(j), rng.gen_range(0.5..2.0))?;
            stubs.push(i);
            stubs.push(j);
        }
    }
    for v in seed..n {
        let mut targets = std::collections::HashSet::new();
        while targets.len() < m {
            let t = if stubs.is_empty() || rng.gen_bool(0.05) {
                // Small uniform component keeps isolated seeds reachable.
                rng.gen_range(0..v)
            } else {
                stubs[rng.gen_range(0..stubs.len())]
            };
            if t != v {
                targets.insert(t);
            }
        }
        for t in targets {
            b.add_link(NodeId(v), NodeId(t), rng.gen_range(0.5..2.0))?;
            stubs.push(v);
            stubs.push(t);
        }
    }
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a connected Waxman random geometric graph.
///
/// Nodes are placed uniformly in the unit square; an edge `(u, v)` appears
/// with probability `alpha · exp(−d(u,v) / (beta · L))` where `L = √2` is
/// the maximum distance. Latency equals Euclidean distance scaled to
/// `[0.5, ~1.9]`.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when `n == 0`.
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    alpha: f64,
    beta: f64,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            b.add_ap(format!("wx{i}"));
            (rng.gen::<f64>(), rng.gen::<f64>())
        })
        .collect();
    let l = 2f64.sqrt();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = ((pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2)).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_link(NodeId(i), NodeId(j), 0.5 + d)?;
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    connect_components(&mut b, &mut adj, rng)?;
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a rows×cols grid (each node linked to its right and down
/// neighbours), a common stand-in for metropolitan AP deployments.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when either dimension is zero.
pub fn grid<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if rows == 0 || cols == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    for r in 0..rows {
        for c in 0..cols {
            b.add_ap(format!("g{r}-{c}"));
        }
    }
    let id = |r: usize, c: usize| NodeId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_link(id(r, c), id(r, c + 1), 1.0)?;
            }
            if r + 1 < rows {
                b.add_link(id(r, c), id(r + 1, c), 1.0)?;
            }
        }
    }
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a Watts–Strogatz small-world graph: a ring lattice where
/// each node links to its `k/2` nearest neighbours on each side, with
/// every link rewired to a uniform random endpoint with probability
/// `beta`. Produces the "local clustering + short paths" structure of
/// metro access networks.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when `n == 0`; `k` is clamped
/// to `[2, n−1]` and rounded down to even internally.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.add_ap(format!("ws{i}"));
    }
    if n == 1 {
        placement.apply(&mut b, rng)?;
        return b.build();
    }
    // At least one ring step; never more than wraps around the ring.
    let half = (k / 2).max(1).min((n - 1) / 2 + 1);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for step in 1..=half {
            let mut j = (i + step) % n;
            // Rewire with probability beta to a random non-duplicate
            // endpoint.
            if rng.gen_bool(beta.clamp(0.0, 1.0)) {
                for _ in 0..n {
                    let cand = rng.gen_range(0..n);
                    if cand != i && !b.has_link(NodeId(i), NodeId(cand)) {
                        j = cand;
                        break;
                    }
                }
            }
            if i != j && !b.has_link(NodeId(i), NodeId(j)) {
                b.add_link(NodeId(i), NodeId(j), rng.gen_range(0.5..2.0))?;
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    connect_components(&mut b, &mut adj, rng)?;
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a ring of `n` nodes.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when `n == 0`.
pub fn ring<R: Rng + ?Sized>(
    n: usize,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.add_ap(format!("r{i}"));
    }
    for i in 0..n.saturating_sub(1) {
        b.add_link(NodeId(i), NodeId(i + 1), 1.0)?;
    }
    if n > 2 {
        b.add_link(NodeId(n - 1), NodeId(0), 1.0)?;
    }
    placement.apply(&mut b, rng)?;
    b.build()
}

/// Generates a star: node 0 is the hub.
///
/// # Errors
///
/// Returns [`TopologyError::EmptyNetwork`] when `n == 0`.
pub fn star<R: Rng + ?Sized>(
    n: usize,
    placement: &CloudletPlacement,
    rng: &mut R,
) -> Result<Network, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let mut b = NetworkBuilder::new();
    for i in 0..n {
        b.add_ap(format!("s{i}"));
    }
    for i in 1..n {
        b.add_link(NodeId(0), NodeId(i), 1.0)?;
    }
    placement.apply(&mut b, rng)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn place() -> CloudletPlacement {
        CloudletPlacement::balanced()
    }

    #[test]
    fn erdos_renyi_is_connected_even_when_sparse() {
        for seed in 0..5 {
            let net = erdos_renyi(40, 0.02, &place(), &mut rng(seed)).unwrap();
            assert!(net.is_connected(), "seed {seed} produced disconnected net");
            assert_eq!(net.ap_count(), 40);
            assert!(net.cloudlet_count() >= 1);
        }
    }

    #[test]
    fn erdos_renyi_dense_has_many_links() {
        let net = erdos_renyi(20, 0.9, &place(), &mut rng(1)).unwrap();
        assert!(net.link_count() > 20 * 19 / 4);
    }

    #[test]
    fn barabasi_albert_connected_and_right_size() {
        let net = barabasi_albert(50, 2, &place(), &mut rng(7)).unwrap();
        assert!(net.is_connected());
        assert_eq!(net.ap_count(), 50);
        // Clique on 3 seeds (3 links) + 47 nodes × 2 links.
        assert_eq!(net.link_count(), 3 + 47 * 2);
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let net = barabasi_albert(200, 2, &place(), &mut rng(3)).unwrap();
        let max_deg = net.nodes().map(|v| net.degree(v)).max().unwrap();
        // Preferential attachment produces a hub well above the mean degree.
        assert!(max_deg >= 8, "max degree {max_deg} too small for BA");
    }

    #[test]
    fn waxman_connected() {
        let net = waxman(30, 0.4, 0.2, &place(), &mut rng(11)).unwrap();
        assert!(net.is_connected());
    }

    #[test]
    fn grid_structure() {
        let net = grid(3, 4, &place(), &mut rng(2)).unwrap();
        assert_eq!(net.ap_count(), 12);
        // Links: 3 rows × 3 horizontal + 2 rows × 4 vertical = 9 + 8.
        assert_eq!(net.link_count(), 17);
        assert!(net.is_connected());
        assert_eq!(net.diameter_hops(), Some(3 - 1 + 4 - 1));
    }

    #[test]
    fn ring_and_star() {
        let net = ring(10, &place(), &mut rng(4)).unwrap();
        assert_eq!(net.link_count(), 10);
        assert!(net.is_connected());
        assert_eq!(net.diameter_hops(), Some(5));

        let net = star(10, &place(), &mut rng(4)).unwrap();
        assert_eq!(net.link_count(), 9);
        assert_eq!(net.diameter_hops(), Some(2));
    }

    #[test]
    fn watts_strogatz_connected_and_clustered() {
        for seed in 0..5 {
            let net = watts_strogatz(40, 4, 0.1, &place(), &mut rng(seed)).unwrap();
            assert!(net.is_connected(), "seed {seed}");
            assert_eq!(net.ap_count(), 40);
            // The lattice base gives ~2 links per node.
            assert!(
                net.link_count() >= 40,
                "too few links: {}",
                net.link_count()
            );
        }
        // beta = 0 is a pure lattice with high clustering.
        let lattice = watts_strogatz(30, 4, 0.0, &place(), &mut rng(1)).unwrap();
        let s = crate::stats::NetworkStats::compute(&lattice);
        assert!(s.clustering > 0.3, "lattice clustering {}", s.clustering);
        // Full rewiring behaves like a random graph: much less clustered.
        let random = watts_strogatz(30, 4, 1.0, &place(), &mut rng(1)).unwrap();
        let sr = crate::stats::NetworkStats::compute(&random);
        assert!(sr.clustering < s.clustering);
    }

    #[test]
    fn watts_strogatz_degenerate() {
        assert!(watts_strogatz(0, 4, 0.1, &place(), &mut rng(0)).is_err());
        let one = watts_strogatz(1, 4, 0.1, &place(), &mut rng(0)).unwrap();
        assert_eq!(one.ap_count(), 1);
        let two = watts_strogatz(2, 4, 0.5, &place(), &mut rng(0)).unwrap();
        assert!(two.is_connected());
    }

    #[test]
    fn degenerate_sizes() {
        assert!(erdos_renyi(0, 0.5, &place(), &mut rng(0)).is_err());
        assert!(grid(0, 5, &place(), &mut rng(0)).is_err());
        let one = ring(1, &place(), &mut rng(0)).unwrap();
        assert_eq!(one.ap_count(), 1);
        assert_eq!(one.link_count(), 0);
        let two = ring(2, &place(), &mut rng(0)).unwrap();
        assert_eq!(two.link_count(), 1);
    }

    #[test]
    fn placement_validation() {
        let mut p = place();
        p.reliability = (0.99, 0.9); // inverted
        assert!(p.validate().is_err());
        let mut p = place();
        p.capacity = (0, 10);
        assert_eq!(p.validate(), Err(TopologyError::ZeroCapacity));
        let mut p = place();
        p.capacity = (12, 8);
        assert_eq!(
            p.validate(),
            Err(TopologyError::InvalidCapacityRange(12, 8))
        );
        let mut p = place();
        p.fraction = 0.0;
        assert_eq!(p.validate(), Err(TopologyError::InvalidFraction(0.0)));
        let mut p = place();
        p.fraction = f64::NAN;
        assert!(matches!(
            p.validate(),
            Err(TopologyError::InvalidFraction(_))
        ));
    }

    #[test]
    fn placement_draws_within_ranges() {
        let p = CloudletPlacement {
            fraction: 1.0,
            capacity: (10, 20),
            reliability: (0.9, 0.95),
        };
        let net = grid(4, 4, &p, &mut rng(9)).unwrap();
        assert_eq!(net.cloudlet_count(), 16);
        for c in net.cloudlets() {
            assert!((10..=20).contains(&c.capacity()));
            let r = c.reliability().value();
            assert!((0.9..=0.95).contains(&r));
        }
    }

    #[test]
    fn same_seed_same_network() {
        let a = erdos_renyi(25, 0.15, &place(), &mut rng(42)).unwrap();
        let b = erdos_renyi(25, 0.15, &place(), &mut rng(42)).unwrap();
        assert_eq!(a.link_count(), b.link_count());
        let ca: Vec<_> = a.cloudlets().map(|c| (c.node(), c.capacity())).collect();
        let cb: Vec<_> = b.cloudlets().map(|c| (c.node(), c.capacity())).collect();
        assert_eq!(ca, cb);
    }
}
