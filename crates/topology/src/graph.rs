use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::cloudlet::Cloudlet;
use crate::ids::{CloudletId, LinkId, NodeId};

/// An undirected link between two access points.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    id: LinkId,
    endpoints: (NodeId, NodeId),
    latency: f64,
}

impl Link {
    pub(crate) fn new(id: LinkId, a: NodeId, b: NodeId, latency: f64) -> Self {
        Link {
            id,
            endpoints: (a, b),
            latency,
        }
    }

    /// The dense identifier of this link.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Both endpoints, in insertion order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        self.endpoints
    }

    /// Propagation latency of the link (arbitrary units, `≥ 0`).
    pub fn latency(&self) -> f64 {
        self.latency
    }

    /// Given one endpoint, returns the other.
    ///
    /// Returns `None` if `node` is not an endpoint of this link.
    pub fn opposite(&self, node: NodeId) -> Option<NodeId> {
        if node == self.endpoints.0 {
            Some(self.endpoints.1)
        } else if node == self.endpoints.1 {
            Some(self.endpoints.0)
        } else {
            None
        }
    }
}

/// Outcome of a shortest-path query.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Nodes along the path, source first, destination last.
    pub nodes: Vec<NodeId>,
    /// Total latency along the path.
    pub latency: f64,
    /// Number of hops (`nodes.len() - 1`).
    pub hops: usize,
}

/// An immutable MEC network: access points, links, and cloudlets.
///
/// Build one with [`NetworkBuilder`](crate::NetworkBuilder), from an
/// embedded Topology-Zoo graph ([`zoo`](crate::zoo)), or from a random
/// generator ([`generators`](crate::generators)).
#[derive(Debug, Clone)]
pub struct Network {
    names: Vec<String>,
    links: Vec<Link>,
    /// adjacency[v] = list of (neighbour, link) pairs.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
    cloudlets: Vec<Cloudlet>,
    /// cloudlet_at[v] = cloudlet hosted at node v, if any.
    cloudlet_at: Vec<Option<CloudletId>>,
}

impl Network {
    pub(crate) fn from_parts(
        names: Vec<String>,
        links: Vec<Link>,
        adjacency: Vec<Vec<(NodeId, LinkId)>>,
        cloudlets: Vec<Cloudlet>,
        cloudlet_at: Vec<Option<CloudletId>>,
    ) -> Self {
        Network {
            names,
            links,
            adjacency,
            cloudlets,
            cloudlet_at,
        }
    }

    /// Number of access points `|V|`.
    pub fn ap_count(&self) -> usize {
        self.names.len()
    }

    /// Number of links `|E|`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of cloudlets `m ≤ |V|`.
    pub fn cloudlet_count(&self) -> usize {
        self.cloudlets.len()
    }

    /// Human-readable name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> + '_ {
        self.links.iter()
    }

    /// Iterates over all cloudlets in id order.
    pub fn cloudlets(&self) -> impl Iterator<Item = &Cloudlet> + '_ {
        self.cloudlets.iter()
    }

    /// Looks up a cloudlet by id.
    pub fn cloudlet(&self, id: CloudletId) -> Option<&Cloudlet> {
        self.cloudlets.get(id.index())
    }

    /// The cloudlet hosted at `node`, if any.
    pub fn cloudlet_at(&self, node: NodeId) -> Option<&Cloudlet> {
        self.cloudlet_at
            .get(node.index())
            .copied()
            .flatten()
            .map(|id| &self.cloudlets[id.index()])
    }

    /// Neighbours of `node` as `(neighbour, link)` pairs.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, LinkId)] {
        &self.adjacency[node.index()]
    }

    /// Degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Looks up a link by id.
    pub fn link(&self, id: LinkId) -> Option<&Link> {
        self.links.get(id.index())
    }

    /// Whether every node can reach every other node.
    ///
    /// An empty network is vacuously connected; the builder refuses to
    /// construct one anyway.
    pub fn is_connected(&self) -> bool {
        let n = self.ap_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == n
    }

    /// Minimum-hop distances from `source` to every node (BFS).
    ///
    /// Unreachable nodes get `usize::MAX`.
    pub fn hop_distances(&self, source: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.ap_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v.index()];
            for &(u, _) in self.neighbors(v) {
                if dist[u.index()] == usize::MAX {
                    dist[u.index()] = dv + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Latency-weighted shortest path between two nodes (Dijkstra).
    ///
    /// Returns `None` if `to` is unreachable from `from`.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<PathResult> {
        #[derive(PartialEq)]
        struct Entry(f64, NodeId);
        impl Eq for Entry {}
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap on latency: reverse the comparison. Latencies are
                // finite non-negative by construction.
                other
                    .0
                    .partial_cmp(&self.0)
                    .expect("latencies are never NaN")
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.ap_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.index()] = 0.0;
        heap.push(Entry(0.0, from));
        while let Some(Entry(d, v)) = heap.pop() {
            if d > dist[v.index()] {
                continue;
            }
            if v == to {
                break;
            }
            for &(u, lid) in self.neighbors(v) {
                let w = self.links[lid.index()].latency();
                let nd = d + w;
                if nd < dist[u.index()] {
                    dist[u.index()] = nd;
                    prev[u.index()] = Some(v);
                    heap.push(Entry(nd, u));
                }
            }
        }
        if dist[to.index()].is_infinite() {
            return None;
        }
        let mut nodes = vec![to];
        let mut cur = to;
        while let Some(p) = prev[cur.index()] {
            nodes.push(p);
            cur = p;
        }
        nodes.reverse();
        let hops = nodes.len() - 1;
        Some(PathResult {
            nodes,
            latency: dist[to.index()],
            hops,
        })
    }

    /// Hop distance between a node and the nearest cloudlet-hosting node.
    ///
    /// Returns `None` if there are no cloudlets reachable from `node`.
    pub fn nearest_cloudlet(&self, node: NodeId) -> Option<(CloudletId, usize)> {
        let dist = self.hop_distances(node);
        self.cloudlets
            .iter()
            .filter_map(|c| {
                let d = dist[c.node().index()];
                (d != usize::MAX).then_some((c.id(), d))
            })
            .min_by_key(|&(_, d)| d)
    }

    /// Graph diameter in hops (longest shortest path over all pairs).
    ///
    /// Returns `None` for a disconnected network.
    pub fn diameter_hops(&self) -> Option<usize> {
        let mut best = 0;
        for v in self.nodes() {
            let dist = self.hop_distances(v);
            for &d in &dist {
                if d == usize::MAX {
                    return None;
                }
                best = best.max(d);
            }
        }
        Some(best)
    }

    /// Total computing capacity over all cloudlets.
    pub fn total_capacity(&self) -> u64 {
        self.cloudlets.iter().map(|c| c.capacity()).sum()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "network: {} APs, {} links, {} cloudlets ({} units)",
            self.ap_count(),
            self.link_count(),
            self.cloudlet_count(),
            self.total_capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::NetworkBuilder;
    use crate::ids::NodeId;
    use crate::reliability::Reliability;

    fn triangle_plus_tail() -> crate::Network {
        // 0 - 1 - 2 - 0 triangle, plus 2 - 3 tail. Cloudlets at 0 and 3.
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_ap(format!("ap{i}"))).collect();
        b.add_link(n[0], n[1], 1.0).unwrap();
        b.add_link(n[1], n[2], 2.0).unwrap();
        b.add_link(n[2], n[0], 10.0).unwrap();
        b.add_link(n[2], n[3], 1.0).unwrap();
        b.add_cloudlet(n[0], 100, Reliability::new(0.99).unwrap())
            .unwrap();
        b.add_cloudlet(n[3], 50, Reliability::new(0.95).unwrap())
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn counts_and_lookup() {
        let net = triangle_plus_tail();
        assert_eq!(net.ap_count(), 4);
        assert_eq!(net.link_count(), 4);
        assert_eq!(net.cloudlet_count(), 2);
        assert_eq!(net.total_capacity(), 150);
        assert_eq!(net.node_name(NodeId(2)), "ap2");
        assert!(net.cloudlet_at(NodeId(0)).is_some());
        assert!(net.cloudlet_at(NodeId(1)).is_none());
        assert_eq!(net.degree(NodeId(2)), 3);
    }

    #[test]
    fn connectivity_and_bfs() {
        let net = triangle_plus_tail();
        assert!(net.is_connected());
        let d = net.hop_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 1, 2]);
        assert_eq!(net.diameter_hops(), Some(2));
    }

    #[test]
    fn dijkstra_prefers_low_latency_detour() {
        let net = triangle_plus_tail();
        // Direct 0-2 link costs 10; the detour 0-1-2 costs 3.
        let p = net.shortest_path(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert!((p.latency - 3.0).abs() < 1e-12);
        assert_eq!(p.hops, 2);
    }

    #[test]
    fn dijkstra_trivial_path() {
        let net = triangle_plus_tail();
        let p = net.shortest_path(NodeId(1), NodeId(1)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(1)]);
        assert_eq!(p.hops, 0);
        assert_eq!(p.latency, 0.0);
    }

    #[test]
    fn disconnected_pair_returns_none() {
        let mut b = NetworkBuilder::new();
        let a = b.add_ap("a");
        let c = b.add_ap("b");
        let net = b.build().unwrap();
        assert!(!net.is_connected());
        assert!(net.shortest_path(a, c).is_none());
        assert_eq!(net.diameter_hops(), None);
    }

    #[test]
    fn nearest_cloudlet_finds_closest() {
        let net = triangle_plus_tail();
        // Node 1 is 1 hop from cloudlet c0 (node 0) and 2 hops from c1 (node 3).
        let (id, d) = net.nearest_cloudlet(NodeId(1)).unwrap();
        assert_eq!(id.index(), 0);
        assert_eq!(d, 1);
        // Node 3 hosts c1 itself.
        let (id, d) = net.nearest_cloudlet(NodeId(3)).unwrap();
        assert_eq!(id.index(), 1);
        assert_eq!(d, 0);
    }

    #[test]
    fn link_opposite_endpoint() {
        let net = triangle_plus_tail();
        let l = net.link(crate::LinkId(0)).unwrap();
        assert_eq!(l.opposite(NodeId(0)), Some(NodeId(1)));
        assert_eq!(l.opposite(NodeId(1)), Some(NodeId(0)));
        assert_eq!(l.opposite(NodeId(3)), None);
    }

    #[test]
    fn display_summarises() {
        let net = triangle_plus_tail();
        let s = net.to_string();
        assert!(s.contains("4 APs"));
        assert!(s.contains("2 cloudlets"));
    }
}
