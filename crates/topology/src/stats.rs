//! Structural statistics and export helpers for MEC networks.

use std::fmt;

use crate::graph::Network;

/// Summary of a network's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of APs.
    pub nodes: usize,
    /// Number of links.
    pub links: usize,
    /// Number of cloudlets.
    pub cloudlets: usize,
    /// Mean node degree.
    pub mean_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Global clustering coefficient (transitivity): `3·triangles /
    /// connected-triples`, 0 for degenerate graphs.
    pub clustering: f64,
    /// Diameter in hops (`None` when disconnected).
    pub diameter: Option<usize>,
    /// Total computing capacity across cloudlets.
    pub total_capacity: u64,
    /// Mean cloudlet reliability.
    pub mean_cloudlet_reliability: f64,
}

impl NetworkStats {
    /// Computes all statistics for a network.
    pub fn compute(network: &Network) -> Self {
        let nodes = network.ap_count();
        let links = network.link_count();
        let degrees: Vec<usize> = network.nodes().map(|v| network.degree(v)).collect();
        let mean_degree = if nodes == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / nodes as f64
        };
        let max_degree = degrees.iter().copied().max().unwrap_or(0);

        // Triangles / triples for global clustering.
        let mut triangles = 0usize;
        let mut triples = 0usize;
        for v in network.nodes() {
            let neigh: Vec<_> = network.neighbors(v).iter().map(|&(u, _)| u).collect();
            let d = neigh.len();
            triples += d.saturating_sub(1) * d / 2;
            for i in 0..neigh.len() {
                for j in (i + 1)..neigh.len() {
                    let a = neigh[i];
                    let b = neigh[j];
                    if network.neighbors(a).iter().any(|&(u, _)| u == b) {
                        triangles += 1;
                    }
                }
            }
        }
        // Each triangle is counted once per corner (3×).
        let clustering = if triples == 0 {
            0.0
        } else {
            triangles as f64 / triples as f64
        };

        let m = network.cloudlet_count();
        let mean_cloudlet_reliability = if m == 0 {
            0.0
        } else {
            network
                .cloudlets()
                .map(|c| c.reliability().value())
                .sum::<f64>()
                / m as f64
        };
        NetworkStats {
            nodes,
            links,
            cloudlets: m,
            mean_degree,
            max_degree,
            clustering,
            diameter: network.diameter_hops(),
            total_capacity: network.total_capacity(),
            mean_cloudlet_reliability,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} links, {} cloudlets ({} units, mean r {:.4}), \
             degree {:.2}/{} (mean/max), clustering {:.3}, diameter {}",
            self.nodes,
            self.links,
            self.cloudlets,
            self.total_capacity,
            self.mean_cloudlet_reliability,
            self.mean_degree,
            self.max_degree,
            self.clustering,
            self.diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "∞".into())
        )
    }
}

/// Renders the network in Graphviz DOT format.
///
/// Cloudlet-hosting APs are drawn as boxes labelled with capacity and
/// reliability; plain APs as circles. Link labels carry latencies.
pub fn to_dot(network: &Network) -> String {
    let mut out = String::from("graph mec {\n  layout=neato;\n");
    for v in network.nodes() {
        let name = network.node_name(v);
        match network.cloudlet_at(v) {
            Some(c) => out.push_str(&format!(
                "  n{} [shape=box, label=\"{}\\ncap={} r={}\"];\n",
                v.index(),
                name,
                c.capacity(),
                c.reliability()
            )),
            None => out.push_str(&format!(
                "  n{} [shape=circle, label=\"{name}\"];\n",
                v.index()
            )),
        }
    }
    for l in network.links() {
        let (a, b) = l.endpoints();
        out.push_str(&format!(
            "  n{} -- n{} [label=\"{}\"];\n",
            a.index(),
            b.index(),
            l.latency()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::reliability::Reliability;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_ap(format!("x{i}"))).collect();
        b.add_link(n[0], n[1], 1.0).unwrap();
        b.add_link(n[1], n[2], 1.0).unwrap();
        b.add_link(n[2], n[0], 1.0).unwrap();
        b.add_link(n[2], n[3], 2.0).unwrap();
        b.add_cloudlet(n[0], 10, Reliability::new(0.99).unwrap())
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_of_triangle_plus_tail() {
        let s = NetworkStats::compute(&triangle());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.links, 4);
        assert_eq!(s.cloudlets, 1);
        assert_eq!(s.max_degree, 3);
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
        // Triangles: 1 (counted at 3 corners) → 3; triples: node2 has
        // degree 3 → 3 triples; nodes 0,1 degree 2 → 1 each; total 5.
        assert!((s.clustering - 3.0 / 5.0).abs() < 1e-12);
        assert_eq!(s.diameter, Some(2));
        assert_eq!(s.total_capacity, 10);
        assert!((s.mean_cloudlet_reliability - 0.99).abs() < 1e-12);
        let txt = s.to_string();
        assert!(txt.contains("4 nodes"));
    }

    #[test]
    fn clustering_of_tree_is_zero() {
        let mut b = NetworkBuilder::new();
        let n: Vec<_> = (0..5).map(|i| b.add_ap(format!("t{i}"))).collect();
        for i in 1..5 {
            b.add_link(n[0], n[i], 1.0).unwrap();
        }
        let s = NetworkStats::compute(&b.build().unwrap());
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.max_degree, 4);
    }

    #[test]
    fn dot_output_is_wellformed() {
        let dot = to_dot(&triangle());
        assert!(dot.starts_with("graph mec {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("shape=box")); // the cloudlet node
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("n0 -- n1"));
        // One node line per AP + one edge line per link.
        assert_eq!(dot.matches("shape=").count(), 4);
        assert_eq!(dot.matches(" -- ").count(), 4);
    }

    #[test]
    fn stats_on_zoo_topologies_are_sane() {
        use crate::generators::CloudletPlacement;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for t in crate::zoo::all() {
            let net = t
                .into_network(&CloudletPlacement::balanced(), &mut rng)
                .unwrap();
            let s = NetworkStats::compute(&net);
            assert!(s.mean_degree >= 1.0, "{}: degree too low", t.name());
            assert!(s.diameter.is_some(), "{}: disconnected", t.name());
            assert!(s.clustering >= 0.0 && s.clustering <= 1.0);
        }
    }
}
