//! End-to-end failover drill through the installed binary: golden run,
//! primary+standby pair, SIGKILL mid-load, promotion, fencing, and the
//! state-parity verdict — the whole thing must PASS and write its
//! report file.

use std::process::Command;

#[test]
fn failover_drill_passes_and_writes_report() {
    let out = std::env::temp_dir().join(format!("vnfrel-drill-report-{}.txt", std::process::id()));
    let result = Command::new(env!("CARGO_BIN_EXE_vnfrel"))
        .args([
            "failover-drill",
            "--requests",
            "120",
            "--kill-at",
            "40",
            "--out",
        ])
        .arg(&out)
        .output()
        .expect("failover-drill spawns");
    let stdout = String::from_utf8_lossy(&result.stdout);
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        result.status.success(),
        "drill failed ({:?})\nstdout:\n{stdout}\nstderr:\n{stderr}",
        result.status.code()
    );
    assert!(
        stdout.contains("failover-drill: PASS"),
        "no PASS verdict in:\n{stdout}"
    );
    assert!(
        stdout.contains("exited with code 7"),
        "deposed primary's fenced exit not reported in:\n{stdout}"
    );
    let report = std::fs::read_to_string(&out).expect("report file written");
    assert!(
        report.contains("failover-drill: PASS"),
        "report file lacks the verdict:\n{report}"
    );
    let _ = std::fs::remove_file(&out);
}
