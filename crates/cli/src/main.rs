//! `vnfrel` — command-line front end for the reliability-aware VNF
//! scheduling library. Run `vnfrel help` for usage.
//!
//! Failures exit with a typed code (see [`error::CliError`]): 1
//! internal, 2 usage, 3 configuration, 4 file IO, 5 network, 6
//! snapshot, 7 fenced — so supervisors of `vnfrel serve` can tell a
//! busy port from a corrupt snapshot (or a deposed primary that must
//! not be restarted as-is) without parsing stderr.

mod args;
mod error;
mod runner;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(error::CliError::Usage(e.to_string()).exit_code());
        }
    };
    let mut stdout = std::io::stdout();
    let mut stderr = std::io::stderr();
    let result = match &command {
        args::Command::Help => {
            print!("{}", args::USAGE);
            Ok(())
        }
        args::Command::Simulate(sim_args) => runner::simulate(
            sim_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, sim_args.quiet),
        ),
        args::Command::Failures(failures_args) => runner::failures(
            failures_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, failures_args.sim.quiet),
        ),
        args::Command::Degradation(deg_args) => runner::degradation(
            deg_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, deg_args.failures.sim.quiet),
        ),
        args::Command::Serve(serve_args) => runner::serve(
            serve_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, serve_args.sim.quiet),
        ),
        args::Command::Loadgen(loadgen_args) => runner::loadgen(
            loadgen_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, loadgen_args.sim.quiet),
        ),
        args::Command::Explain {
            request,
            trace,
            quiet,
        } => runner::explain(
            *request,
            trace,
            &mut runner::Output::new(&mut stdout, &mut stderr, *quiet),
        ),
        args::Command::Promote { addr, quiet } => runner::promote(
            addr,
            &mut runner::Output::new(&mut stdout, &mut stderr, *quiet),
        ),
        args::Command::FailoverDrill(drill_args) => runner::failover_drill(
            drill_args,
            &mut runner::Output::new(&mut stdout, &mut stderr, drill_args.sim.quiet),
        ),
        args::Command::Topo {
            topology,
            dot,
            seed,
        } => runner::topo(topology, *dot, *seed, &mut stdout),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
