//! Minimal, dependency-free argument parsing for the `vnfrel` binary.

use std::fmt;

/// Which topology to build.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyChoice {
    /// An embedded Topology-Zoo network by name.
    Zoo(String),
    /// Erdős–Rényi with `n` nodes and edge probability `p`.
    ErdosRenyi {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Barabási–Albert with `n` nodes, `m` links per new node.
    BarabasiAlbert {
        /// Node count.
        n: usize,
        /// Links per new node.
        m: usize,
    },
    /// rows×cols grid.
    Grid {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

/// Scheduler selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// The paper's primal-dual algorithm (1 or 2 per scheme).
    PrimalDual,
    /// The paper's greedy baseline.
    Greedy,
    /// Uniform-random feasible placement.
    Random,
    /// Payment-density greedy (on-site only).
    Density,
}

/// Fully parsed `simulate` options.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateArgs {
    /// Network to build.
    pub topology: TopologyChoice,
    /// Number of requests.
    pub requests: usize,
    /// Backup scheme.
    pub scheme: vnfrel::Scheme,
    /// Scheduler.
    pub algorithm: AlgorithmChoice,
    /// RNG seed.
    pub seed: u64,
    /// Horizon length in slots.
    pub horizon: usize,
    /// Cloudlet capacity range.
    pub capacity: (u64, u64),
    /// Cloudlet reliability range.
    pub cloudlet_reliability: (f64, f64),
    /// Request reliability-requirement range.
    pub requirement: (f64, f64),
    /// Payment-rate range.
    pub payment_rate: (f64, f64),
    /// Fraction of APs hosting cloudlets.
    pub cloudlet_fraction: f64,
    /// Monte-Carlo failure trials (0 = skip).
    pub failure_trials: usize,
    /// Worker threads for the Monte-Carlo check (0 = all cores).
    pub threads: usize,
    /// JSONL decision/fault trace target (`--trace`).
    pub trace: Option<String>,
    /// Metrics snapshot target (`--metrics`); `.json`/`.jsonl` selects
    /// the JSONL snapshot format, anything else Prometheus text.
    pub metrics: Option<String>,
    /// Per-slot timeline CSV target (`--timeline-csv`).
    pub timeline_csv: Option<String>,
    /// Suppress progress/provenance notes on stderr (`--quiet`/`-q`).
    pub quiet: bool,
}

impl Default for SimulateArgs {
    fn default() -> Self {
        SimulateArgs {
            topology: TopologyChoice::Zoo("abilene".into()),
            requests: 200,
            scheme: vnfrel::Scheme::OnSite,
            algorithm: AlgorithmChoice::PrimalDual,
            seed: 1,
            horizon: 16,
            capacity: (8, 12),
            cloudlet_reliability: (0.99, 0.9999),
            requirement: (0.9, 0.95),
            payment_rate: (1.0, 10.0),
            cloudlet_fraction: 0.5,
            failure_trials: 0,
            threads: 0,
            trace: None,
            metrics: None,
            timeline_csv: None,
            quiet: false,
        }
    }
}

/// Fully parsed `failures` options: a simulation plus an outage trace
/// and a recovery policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FailuresArgs {
    /// The underlying simulation setup (same flags as `simulate`).
    pub sim: SimulateArgs,
    /// Cloudlet mean time to failure, in slots.
    pub mttf: f64,
    /// Cloudlet mean time to repair, in slots.
    pub mttr: f64,
    /// Per-slot single-instance kill probability.
    pub kill_rate: f64,
    /// Recovery policy applied to requests whose placement died.
    pub policy: mec_sim::RecoveryPolicy,
    /// Seed of the failure process (independent of the workload seed so
    /// the same outage trace can be replayed against different setups).
    pub failure_seed: u64,
    /// Per-request SLA ledger CSV target (`--sla-csv`).
    pub sla_csv: Option<String>,
}

impl Default for FailuresArgs {
    fn default() -> Self {
        FailuresArgs {
            sim: SimulateArgs::default(),
            mttf: 50.0,
            mttr: 3.0,
            kill_rate: 0.05,
            policy: mec_sim::RecoveryPolicy::SchemeMatching,
            failure_seed: 1000,
            sla_csv: None,
        }
    }
}

/// Fully parsed `degradation` options: a fault simulation with
/// correlated failure domains, an optional cascade overlay, and the
/// graceful-degradation layer (headroom admission, load shedding,
/// bounded retries, runtime auditing).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationArgs {
    /// The underlying fault simulation (same flags as `failures`).
    pub failures: FailuresArgs,
    /// Number of zone-partition failure domains the cloudlets are
    /// split into.
    pub domains: usize,
    /// Domain mean time to failure, in slots.
    pub domain_mttf: f64,
    /// Domain mean time to repair, in slots.
    pub domain_mttr: f64,
    /// Cascade overlay; `None` disables secondary failures.
    pub cascade: Option<mec_sim::CascadeConfig>,
    /// The graceful-degradation knobs.
    pub config: mec_sim::DegradationConfig,
}

impl Default for DegradationArgs {
    fn default() -> Self {
        DegradationArgs {
            failures: FailuresArgs::default(),
            domains: 2,
            domain_mttf: 24.0,
            domain_mttr: 2.0,
            cascade: Some(mec_sim::CascadeConfig::default()),
            config: mec_sim::DegradationConfig::default(),
        }
    }
}

/// Fully parsed `serve` options: the scenario that defines the
/// instance and scheduler (shared with `simulate`) plus the daemon's
/// listening, queueing, ticking and persistence knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Scenario and scheduler selection (same flags as `simulate`;
    /// `--requests` et al. are accepted but only the instance-defining
    /// fields matter to the daemon).
    pub sim: SimulateArgs,
    /// Listen address (`--addr`).
    pub addr: String,
    /// Ingress queue bound (`--queue`); submits beyond it get typed
    /// overload rejections.
    pub queue: usize,
    /// Connection worker threads (`--workers`).
    pub workers: usize,
    /// Snapshot file (`--snapshot`); `None` disables persistence.
    pub snapshot: Option<String>,
    /// Load the snapshot, if present, before serving (`--resume`).
    pub resume: bool,
    /// Advance the virtual slot clock every this many milliseconds
    /// (`--tick-ms`); `None` advances only on `advance-slot` controls.
    pub tick_ms: Option<u64>,
    /// Run as a passive standby awaiting replication (`--standby`).
    pub standby: bool,
    /// Stream the decision log to a standby at this address
    /// (`--replicate-to`); primary role, mutually exclusive with
    /// `--standby`.
    pub replicate_to: Option<String>,
    /// Never release a client ack before its frame reaches the standby
    /// socket (`--repl-strict`).
    pub repl_strict: bool,
    /// Standby self-promotes after this many ms without hearing from a
    /// primary it has seen (`--auto-promote-ms`); `None` promotes only
    /// on an explicit `promote` control.
    pub auto_promote_ms: Option<u64>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            sim: SimulateArgs::default(),
            addr: "127.0.0.1:7070".into(),
            queue: 256,
            workers: 4,
            snapshot: None,
            resume: false,
            tick_ms: None,
            standby: false,
            replicate_to: None,
            repl_strict: false,
            auto_promote_ms: None,
        }
    }
}

/// Fully parsed `loadgen` options: the scenario whose request stream is
/// replayed (must match the serving daemon's) plus client pacing.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenArgs {
    /// Scenario (same flags as `simulate`); `--requests` sets how many
    /// requests the closed loop replays.
    pub sim: SimulateArgs,
    /// Daemon address (`--addr`).
    pub addr: String,
    /// Target requests/second (`--rate`); 0 sends full speed.
    pub rate: f64,
    /// Skip requests with id below this (`--start-at`), to resume a
    /// partially served trace after a daemon restart.
    pub start_at: usize,
    /// Leave the daemon running when done (`--no-shutdown`); by default
    /// the generator sends a `shutdown` control and waits for the
    /// drain-then-snapshot ack.
    pub no_shutdown: bool,
    /// Write the admission-latency histogram artifact here
    /// (`--hist-out`).
    pub hist_out: Option<String>,
    /// Survive connection loss and `not-primary` refusals
    /// (`--reconnect`): rotate through the comma-separated `--addr`
    /// list with backoff and resubmit the in-flight request id.
    pub reconnect: bool,
}

impl Default for LoadgenArgs {
    fn default() -> Self {
        LoadgenArgs {
            sim: SimulateArgs::default(),
            addr: "127.0.0.1:7070".into(),
            rate: 0.0,
            start_at: 0,
            no_shutdown: false,
            hist_out: None,
            reconnect: false,
        }
    }
}

/// Fully parsed `failover-drill` options: the scenario shared by the
/// primary/standby pair plus the kill point and report target.
#[derive(Debug, Clone, PartialEq)]
pub struct FailoverDrillArgs {
    /// Scenario (same flags as `simulate`); `--requests` sets how many
    /// requests the drill replays across the failover.
    pub sim: SimulateArgs,
    /// Kill the primary once it has accepted at least this many
    /// submissions (`--kill-at`).
    pub kill_at: usize,
    /// Write the greppable drill report here as well as stdout
    /// (`--out`).
    pub out: Option<String>,
}

impl Default for FailoverDrillArgs {
    fn default() -> Self {
        FailoverDrillArgs {
            sim: SimulateArgs {
                requests: 120,
                ..SimulateArgs::default()
            },
            kill_at: 40,
            out: None,
        }
    }
}

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation and print metrics.
    Simulate(SimulateArgs),
    /// Run a fault-aware simulation with online recovery and SLA
    /// accounting.
    Failures(FailuresArgs),
    /// Run a fault-aware simulation with correlated failure domains,
    /// cascades, and graceful degradation.
    Degradation(DegradationArgs),
    /// Run the long-running admission daemon.
    Serve(ServeArgs),
    /// Drive a running daemon with the closed-loop load generator.
    Loadgen(LoadgenArgs),
    /// Promote a standby daemon to primary (fenced failover).
    Promote {
        /// The standby's address.
        addr: String,
        /// Suppress the provenance note on stderr.
        quiet: bool,
    },
    /// Run the kill-the-primary failover drill: primary + standby pair,
    /// SIGKILL mid-load, promotion, and state-parity assertions against
    /// a single-process golden run.
    FailoverDrill(FailoverDrillArgs),
    /// Replay a recorded trace and explain one request's decision.
    Explain {
        /// The request id to explain.
        request: usize,
        /// Path of the JSONL trace to replay.
        trace: String,
        /// Suppress the provenance note on stderr.
        quiet: bool,
    },
    /// Print stats (and optionally DOT) for a topology.
    Topo {
        /// Network to describe.
        topology: TopologyChoice,
        /// Emit Graphviz DOT instead of stats.
        dot: bool,
        /// Seed for cloudlet placement.
        seed: u64,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Usage text printed by `vnfrel help`.
pub const USAGE: &str = "\
vnfrel — reliability-aware VNF scheduling experiments

USAGE:
  vnfrel simulate [OPTIONS]     run one online-scheduling simulation
  vnfrel failures [OPTIONS]     simulate under dynamic outages with recovery
  vnfrel degradation [OPTIONS]  correlated domain outages, cascades, and
                                graceful degradation
  vnfrel serve [OPTIONS]        run the admission daemon (line-JSON over TCP)
  vnfrel loadgen [OPTIONS]      replay a generated trace against a daemon
  vnfrel promote <ADDR>         promote a standby daemon to primary
  vnfrel failover-drill [OPTIONS]  kill-the-primary replication drill
  vnfrel explain <ID> --trace <PATH>  replay a trace, explain one request
  vnfrel topo [OPTIONS]         describe a topology (--dot for Graphviz)
  vnfrel help                   show this text

Result tables go to stdout; provenance and progress notes go to stderr
(suppress them with --quiet/-q).

SIMULATE OPTIONS (defaults in brackets):
  --topology <T>        abilene|cesnet|nsfnet|aarnet|garr|att|geant|er:N:P|ba:N:M|grid:R:C [abilene]
  --requests <N>        number of requests [200]
  --scheme <S>          onsite|offsite [onsite]
  --algorithm <A>       primal-dual|greedy|random|density [primal-dual]
  --seed <U64>          RNG seed [1]
  --horizon <N>         slots in the monitoring period [16]
  --capacity <LO:HI>    cloudlet capacity range [8:12]
  --cloudlet-rel <LO:HI> cloudlet reliability range [0.99:0.9999]
  --requirement <LO:HI> request reliability requirements [0.9:0.95]
  --payment <LO:HI>     payment-rate band [1:10]
  --fraction <F>        fraction of APs hosting cloudlets [0.5]
  --failure-trials <N>  Monte-Carlo availability check (0 = off) [0]
  --threads <N>         worker threads for the Monte-Carlo check (0 = all cores) [0]
  --trace <PATH>        record one JSONL event per scheduling decision
                        (primal-dual and greedy algorithms only)
  --metrics <PATH>      write a metrics snapshot after the run;
                        .json/.jsonl selects JSONL, else Prometheus text
  --timeline-csv <PATH> write the per-slot timeline as CSV
  --quiet, -q           suppress stderr notes

FAILURES OPTIONS (all SIMULATE OPTIONS, plus):
  --mttf <F>            cloudlet mean time to failure, slots [50]
  --mttr <F>            cloudlet mean time to repair, slots [3]
  --kill-rate <F>       per-slot single-instance kill probability [0.05]
  --policy <P>          none|onsite|offsite|matching [matching]
  --failure-seed <U64>  seed of the outage trace [1000]
  --sla-csv <PATH>      write the per-request SLA ledger as CSV
                        (--trace also records outage/kill/breach/recovery
                        events here)

DEGRADATION OPTIONS (all FAILURES OPTIONS, plus):
  --domains <N>         zone-partition failure domains [2]
  --domain-mttf <F>     domain mean time to failure, slots [24]
  --domain-mttr <F>     domain mean time to repair, slots [2]
  --no-cascade          disable the secondary-failure overlay
  --cascade-threshold <F> utilization fraction that puts survivors at
                        risk [0.85]
  --cascade-hazard <F>  per-trigger cascade probability [0.3]
  --cascade-slots <N>   slots a cascade outage lasts [2]
  --headroom <F>        capacity fraction reserved while degraded [0.1]
  --max-retries <N>     re-placement attempts per failure episode [4]
  --backoff <N>         base of the exponential retry backoff, slots [1]
  --no-shed             disable the revenue-aware load shedder
  --no-audit            disable the runtime invariant auditor

SERVE OPTIONS (scenario flags as SIMULATE — topology, seed, horizon,
capacity, scheme, algorithm, … define the instance and must match the
loadgen side — plus):
  --addr <HOST:PORT>    listen address; port 0 picks a free port [127.0.0.1:7070]
  --queue <N>           ingress queue bound; submits beyond it get typed
                        overload rejections [256]
  --workers <N>         connection worker threads [4]
  --snapshot <PATH>     crash-consistent snapshot target (written on the
                        snapshot control and at shutdown)
  --resume              load the snapshot, if present, before serving
  --tick-ms <N>         advance the virtual slot clock every N ms
                        (default: only on advance-slot control messages)
  --trace <PATH>        tee every decision to a JSONL trace
  --replicate-to <ADDR> stream the decision log to a standby daemon;
                        client acks wait for the frame to reach the
                        standby socket (primary role)
  --repl-strict         never release an ack unreplicated — no
                        availability timeout (requires --replicate-to)
  --standby             apply a primary's log and refuse submits with
                        not-primary until promoted (vnfrel promote)
  --auto-promote-ms <N> standby self-promotes after N ms of primary
                        silence (requires --standby)
  (--algorithm primal-dual|greedy only; metrics are served over HTTP as
  GET /metrics on the same port, not written to a file; a fenced daemon
  — one whose standby was promoted behind its back — exits with code 7)

LOADGEN OPTIONS (scenario flags as SIMULATE; --requests sets the trace
length; plus):
  --addr <HOST:PORT>    daemon address [127.0.0.1:7070]
  --rate <F>            target requests/second (0 = full speed) [0]
  --start-at <ID>       skip requests below this id (resume a
                        partially served trace) [0]
  --no-shutdown         leave the daemon running when done
  --hist-out <PATH>     write the admission-latency histogram artifact
  --reconnect           survive failover: --addr may list several
                        daemons (comma-separated); connection loss and
                        not-primary refusals rotate with backoff and
                        resubmit the in-flight id (deduped server-side)

PROMOTE OPTIONS:
  vnfrel promote <ADDR> | --addr <ADDR>
                        sends the promote control and waits for the new
                        epoch's ack

FAILOVER-DRILL OPTIONS (scenario flags as SIMULATE; --requests sets the
trace length; plus):
  --kill-at <N>         SIGKILL the primary once it has accepted N
                        submissions (strictly inside the trace) [40]
  --out <PATH>          also write the greppable drill report here

EXPLAIN OPTIONS:
  --trace <PATH>        the JSONL trace to replay (required)
  --quiet, -q           suppress stderr notes

TOPO OPTIONS:
  --topology <T>        as above [abilene]
  --seed <U64>          cloudlet placement seed [1]
  --dot                 emit Graphviz DOT
";

/// Parses a full argument vector (excluding the program name).
///
/// # Errors
///
/// Returns [`ParseError`] with a message suitable for direct printing.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "simulate" => parse_simulate(rest),
        "failures" => parse_failures(rest),
        "degradation" => parse_degradation(rest),
        "serve" => parse_serve(rest),
        "loadgen" => parse_loadgen(rest),
        "promote" => parse_promote(rest),
        "failover-drill" => parse_failover_drill(rest),
        "explain" => parse_explain(rest),
        "topo" => parse_topo(rest),
        other => Err(ParseError(format!(
            "unknown command `{other}` (try `vnfrel help`)"
        ))),
    }
}

/// Tries to consume one `simulate`-family flag (shared between the
/// `simulate` and `failures` commands). Returns `Ok(false)` when the
/// flag is not a simulate flag, leaving `it` untouched.
fn apply_sim_flag(
    out: &mut SimulateArgs,
    flag: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> Result<bool, ParseError> {
    let mut value = |name: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{name} expects a value")))
    };
    match flag {
        "--topology" => out.topology = parse_topology(&value("--topology")?)?,
        "--requests" => out.requests = parse_num(&value("--requests")?, "--requests")?,
        "--scheme" => {
            out.scheme = match value("--scheme")?.as_str() {
                "onsite" | "on-site" => vnfrel::Scheme::OnSite,
                "offsite" | "off-site" => vnfrel::Scheme::OffSite,
                s => return Err(ParseError(format!("unknown scheme `{s}`"))),
            }
        }
        "--algorithm" => {
            out.algorithm = match value("--algorithm")?.as_str() {
                "primal-dual" | "pd" => AlgorithmChoice::PrimalDual,
                "greedy" => AlgorithmChoice::Greedy,
                "random" => AlgorithmChoice::Random,
                "density" => AlgorithmChoice::Density,
                s => return Err(ParseError(format!("unknown algorithm `{s}`"))),
            }
        }
        "--seed" => out.seed = parse_num(&value("--seed")?, "--seed")?,
        "--horizon" => out.horizon = parse_num(&value("--horizon")?, "--horizon")?,
        "--capacity" => out.capacity = parse_range_u64(&value("--capacity")?)?,
        "--cloudlet-rel" => out.cloudlet_reliability = parse_range_f64(&value("--cloudlet-rel")?)?,
        "--requirement" => out.requirement = parse_range_f64(&value("--requirement")?)?,
        "--payment" => out.payment_rate = parse_range_f64(&value("--payment")?)?,
        "--fraction" => {
            out.cloudlet_fraction = value("--fraction")?
                .parse()
                .map_err(|_| ParseError("--fraction expects a float".into()))?
        }
        "--failure-trials" => {
            out.failure_trials = parse_num(&value("--failure-trials")?, "--failure-trials")?
        }
        "--threads" => out.threads = parse_num(&value("--threads")?, "--threads")?,
        "--trace" => out.trace = Some(value("--trace")?),
        "--metrics" => out.metrics = Some(value("--metrics")?),
        "--timeline-csv" => out.timeline_csv = Some(value("--timeline-csv")?),
        "--quiet" | "-q" => out.quiet = true,
        _ => return Ok(false),
    }
    Ok(true)
}

fn check_sim(out: &SimulateArgs) -> Result<(), ParseError> {
    if out.algorithm == AlgorithmChoice::Density && out.scheme == vnfrel::Scheme::OffSite {
        return Err(ParseError("--algorithm density is on-site only".into()));
    }
    Ok(())
}

fn parse_simulate(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = SimulateArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if !apply_sim_flag(&mut out, flag, &mut it)? {
            return Err(ParseError(format!("unknown option `{flag}`")));
        }
    }
    check_sim(&out)?;
    Ok(Command::Simulate(out))
}

/// Tries to consume one `failures`-family flag (shared between the
/// `failures` and `degradation` commands), falling through to the
/// simulate flags. Returns `Ok(false)` when the flag belongs to neither
/// family.
fn apply_failures_flag(
    out: &mut FailuresArgs,
    flag: &str,
    it: &mut std::slice::Iter<'_, String>,
) -> Result<bool, ParseError> {
    let mut value = |name: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{name} expects a value")))
    };
    match flag {
        "--mttf" => out.mttf = parse_num(&value("--mttf")?, "--mttf")?,
        "--mttr" => out.mttr = parse_num(&value("--mttr")?, "--mttr")?,
        "--kill-rate" => out.kill_rate = parse_num(&value("--kill-rate")?, "--kill-rate")?,
        "--policy" => {
            out.policy = match value("--policy")?.as_str() {
                "none" => mec_sim::RecoveryPolicy::None,
                "onsite" | "on-site" => mec_sim::RecoveryPolicy::OnSite,
                "offsite" | "off-site" => mec_sim::RecoveryPolicy::OffSite,
                "matching" | "scheme-matching" => mec_sim::RecoveryPolicy::SchemeMatching,
                s => return Err(ParseError(format!("unknown recovery policy `{s}`"))),
            }
        }
        "--failure-seed" => {
            out.failure_seed = parse_num(&value("--failure-seed")?, "--failure-seed")?
        }
        "--sla-csv" => out.sla_csv = Some(value("--sla-csv")?),
        _ => return apply_sim_flag(&mut out.sim, flag, it),
    }
    Ok(true)
}

fn parse_failures(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = FailuresArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if !apply_failures_flag(&mut out, flag, &mut it)? {
            return Err(ParseError(format!("unknown option `{flag}`")));
        }
    }
    check_sim(&out.sim)?;
    Ok(Command::Failures(out))
}

fn parse_degradation(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = DegradationArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--domains" => out.domains = parse_num(&value("--domains")?, "--domains")?,
            "--domain-mttf" => {
                out.domain_mttf = parse_num(&value("--domain-mttf")?, "--domain-mttf")?
            }
            "--domain-mttr" => {
                out.domain_mttr = parse_num(&value("--domain-mttr")?, "--domain-mttr")?
            }
            "--no-cascade" => out.cascade = None,
            "--cascade-threshold" => {
                out.cascade
                    .get_or_insert_with(Default::default)
                    .utilization_threshold =
                    parse_num(&value("--cascade-threshold")?, "--cascade-threshold")?
            }
            "--cascade-hazard" => {
                out.cascade.get_or_insert_with(Default::default).hazard =
                    parse_num(&value("--cascade-hazard")?, "--cascade-hazard")?
            }
            "--cascade-slots" => {
                out.cascade
                    .get_or_insert_with(Default::default)
                    .outage_slots = parse_num(&value("--cascade-slots")?, "--cascade-slots")?
            }
            "--headroom" => out.config.headroom = parse_num(&value("--headroom")?, "--headroom")?,
            "--max-retries" => {
                out.config.max_retries = parse_num(&value("--max-retries")?, "--max-retries")?
            }
            "--backoff" => out.config.backoff_base = parse_num(&value("--backoff")?, "--backoff")?,
            "--no-shed" => out.config.shed = false,
            "--no-audit" => out.config.audit = false,
            _ => {
                if !apply_failures_flag(&mut out.failures, flag, &mut it)? {
                    return Err(ParseError(format!("unknown option `{flag}`")));
                }
            }
        }
    }
    if out.domains == 0 {
        return Err(ParseError("--domains must be at least 1".into()));
    }
    check_sim(&out.failures.sim)?;
    Ok(Command::Degradation(out))
}

fn parse_serve(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = ServeArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--queue" => out.queue = parse_num(&value("--queue")?, "--queue")?,
            "--workers" => out.workers = parse_num(&value("--workers")?, "--workers")?,
            "--snapshot" => out.snapshot = Some(value("--snapshot")?),
            "--resume" => out.resume = true,
            "--tick-ms" => out.tick_ms = Some(parse_num(&value("--tick-ms")?, "--tick-ms")?),
            "--standby" => out.standby = true,
            "--replicate-to" => out.replicate_to = Some(value("--replicate-to")?),
            "--repl-strict" => out.repl_strict = true,
            "--auto-promote-ms" => {
                out.auto_promote_ms = Some(parse_num(
                    &value("--auto-promote-ms")?,
                    "--auto-promote-ms",
                )?)
            }
            _ => {
                if !apply_sim_flag(&mut out.sim, flag, &mut it)? {
                    return Err(ParseError(format!("unknown option `{flag}`")));
                }
            }
        }
    }
    if out.queue == 0 {
        return Err(ParseError("--queue must be at least 1".into()));
    }
    if out.standby && out.replicate_to.is_some() {
        return Err(ParseError(
            "--standby and --replicate-to are mutually exclusive (chained replication is not \
             supported)"
                .into(),
        ));
    }
    if out.repl_strict && out.replicate_to.is_none() {
        return Err(ParseError("--repl-strict requires --replicate-to".into()));
    }
    if out.auto_promote_ms.is_some() && !out.standby {
        return Err(ParseError("--auto-promote-ms requires --standby".into()));
    }
    if !matches!(
        out.sim.algorithm,
        AlgorithmChoice::PrimalDual | AlgorithmChoice::Greedy
    ) {
        return Err(ParseError(
            "serve supports the primal-dual and greedy algorithms only".into(),
        ));
    }
    check_sim(&out.sim)?;
    Ok(Command::Serve(out))
}

fn parse_loadgen(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = LoadgenArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--rate" => out.rate = parse_num(&value("--rate")?, "--rate")?,
            "--start-at" => out.start_at = parse_num(&value("--start-at")?, "--start-at")?,
            "--no-shutdown" => out.no_shutdown = true,
            "--hist-out" => out.hist_out = Some(value("--hist-out")?),
            "--reconnect" => out.reconnect = true,
            _ => {
                if !apply_sim_flag(&mut out.sim, flag, &mut it)? {
                    return Err(ParseError(format!("unknown option `{flag}`")));
                }
            }
        }
    }
    if out.rate < 0.0 || !out.rate.is_finite() {
        return Err(ParseError(
            "--rate must be a finite non-negative rate".into(),
        ));
    }
    check_sim(&out.sim)?;
    Ok(Command::Loadgen(out))
}

fn parse_promote(rest: &[String]) -> Result<Command, ParseError> {
    let mut addr: Option<String> = None;
    let mut quiet = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--addr expects a value".into()))?;
                addr = Some(v.clone());
            }
            "--quiet" | "-q" => quiet = true,
            s if !s.starts_with('-') && addr.is_none() => addr = Some(s.to_string()),
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    Ok(Command::Promote {
        addr: addr
            .ok_or_else(|| ParseError("promote needs an address (vnfrel promote <ADDR>)".into()))?,
        quiet,
    })
}

fn parse_failover_drill(rest: &[String]) -> Result<Command, ParseError> {
    let mut out = FailoverDrillArgs::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--kill-at" => out.kill_at = parse_num(&value("--kill-at")?, "--kill-at")?,
            "--out" => out.out = Some(value("--out")?),
            _ => {
                if !apply_sim_flag(&mut out.sim, flag, &mut it)? {
                    return Err(ParseError(format!("unknown option `{flag}`")));
                }
            }
        }
    }
    if out.kill_at == 0 || out.kill_at >= out.sim.requests {
        return Err(ParseError(format!(
            "--kill-at must fall strictly inside the trace (1..{})",
            out.sim.requests
        )));
    }
    if !matches!(
        out.sim.algorithm,
        AlgorithmChoice::PrimalDual | AlgorithmChoice::Greedy
    ) {
        return Err(ParseError(
            "failover-drill supports the primal-dual and greedy algorithms only".into(),
        ));
    }
    check_sim(&out.sim)?;
    Ok(Command::FailoverDrill(out))
}

fn parse_explain(rest: &[String]) -> Result<Command, ParseError> {
    let mut request: Option<usize> = None;
    let mut trace: Option<String> = None;
    let mut quiet = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--trace expects a value".into()))?;
                trace = Some(v.clone());
            }
            "--quiet" | "-q" => quiet = true,
            s if !s.starts_with('-') && request.is_none() => {
                request = Some(parse_num(s, "request id")?);
            }
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    Ok(Command::Explain {
        request: request
            .ok_or_else(|| ParseError("explain needs a request id (vnfrel explain <ID>)".into()))?,
        trace: trace.ok_or_else(|| ParseError("explain needs --trace <PATH>".into()))?,
        quiet,
    })
}

fn parse_topo(rest: &[String]) -> Result<Command, ParseError> {
    let mut topology = TopologyChoice::Zoo("abilene".into());
    let mut dot = false;
    let mut seed = 1u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--topology" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--topology expects a value".into()))?;
                topology = parse_topology(v)?;
            }
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--seed expects a value".into()))?;
                seed = parse_num(v, "--seed")?;
            }
            "--dot" => dot = true,
            other => return Err(ParseError(format!("unknown option `{other}`"))),
        }
    }
    Ok(Command::Topo {
        topology,
        dot,
        seed,
    })
}

fn parse_topology(s: &str) -> Result<TopologyChoice, ParseError> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "abilene" | "nsfnet" | "aarnet" | "att" | "att-na" | "geant" | "garr" | "cesnet" => {
            Ok(TopologyChoice::Zoo(lower))
        }
        _ if lower.starts_with("er:") => {
            let parts: Vec<&str> = lower.splitn(3, ':').collect();
            if parts.len() != 3 {
                return Err(ParseError("er topology needs er:N:P".into()));
            }
            Ok(TopologyChoice::ErdosRenyi {
                n: parse_num(parts[1], "er node count")?,
                p: parts[2]
                    .parse()
                    .map_err(|_| ParseError("er probability must be a float".into()))?,
            })
        }
        _ if lower.starts_with("ba:") => {
            let parts: Vec<&str> = lower.splitn(3, ':').collect();
            if parts.len() != 3 {
                return Err(ParseError("ba topology needs ba:N:M".into()));
            }
            Ok(TopologyChoice::BarabasiAlbert {
                n: parse_num(parts[1], "ba node count")?,
                m: parse_num(parts[2], "ba attachment count")?,
            })
        }
        _ if lower.starts_with("grid:") => {
            let parts: Vec<&str> = lower.splitn(3, ':').collect();
            if parts.len() != 3 {
                return Err(ParseError("grid topology needs grid:R:C".into()));
            }
            Ok(TopologyChoice::Grid {
                rows: parse_num(parts[1], "grid rows")?,
                cols: parse_num(parts[2], "grid cols")?,
            })
        }
        other => Err(ParseError(format!("unknown topology `{other}`"))),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{what}: `{s}` is not a valid number")))
}

fn parse_range_u64(s: &str) -> Result<(u64, u64), ParseError> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| ParseError(format!("range `{s}` must look like LO:HI")))?;
    Ok((parse_num(a, "range low")?, parse_num(b, "range high")?))
}

fn parse_range_f64(s: &str) -> Result<(f64, f64), ParseError> {
    let (a, b) = s
        .split_once(':')
        .ok_or_else(|| ParseError(format!("range `{s}` must look like LO:HI")))?;
    Ok((parse_num(a, "range low")?, parse_num(b, "range high")?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&sv(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_and_flags() {
        assert!(parse(&sv(&["frobnicate"])).is_err());
        assert!(parse(&sv(&["simulate", "--bogus"])).is_err());
        assert!(parse(&sv(&["simulate", "--requests"])).is_err()); // missing value
        assert!(parse(&sv(&["topo", "--nope"])).is_err());
    }

    #[test]
    fn simulate_defaults() {
        let Command::Simulate(a) = parse(&sv(&["simulate"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, SimulateArgs::default());
    }

    #[test]
    fn simulate_full_flags() {
        let Command::Simulate(a) = parse(&sv(&[
            "simulate",
            "--topology",
            "nsfnet",
            "--requests",
            "500",
            "--scheme",
            "offsite",
            "--algorithm",
            "greedy",
            "--seed",
            "9",
            "--horizon",
            "24",
            "--capacity",
            "10:20",
            "--cloudlet-rel",
            "0.95:0.999",
            "--requirement",
            "0.9:0.93",
            "--payment",
            "2:8",
            "--fraction",
            "0.7",
            "--failure-trials",
            "1000",
            "--threads",
            "4",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.topology, TopologyChoice::Zoo("nsfnet".into()));
        assert_eq!(a.requests, 500);
        assert_eq!(a.scheme, vnfrel::Scheme::OffSite);
        assert_eq!(a.algorithm, AlgorithmChoice::Greedy);
        assert_eq!(a.seed, 9);
        assert_eq!(a.horizon, 24);
        assert_eq!(a.capacity, (10, 20));
        assert_eq!(a.cloudlet_reliability, (0.95, 0.999));
        assert_eq!(a.requirement, (0.9, 0.93));
        assert_eq!(a.payment_rate, (2.0, 8.0));
        assert_eq!(a.cloudlet_fraction, 0.7);
        assert_eq!(a.failure_trials, 1000);
        assert_eq!(a.threads, 4);
    }

    #[test]
    fn generated_topologies() {
        assert_eq!(
            parse_topology("er:30:0.1").unwrap(),
            TopologyChoice::ErdosRenyi { n: 30, p: 0.1 }
        );
        assert_eq!(
            parse_topology("ba:50:2").unwrap(),
            TopologyChoice::BarabasiAlbert { n: 50, m: 2 }
        );
        assert_eq!(
            parse_topology("grid:3:4").unwrap(),
            TopologyChoice::Grid { rows: 3, cols: 4 }
        );
        assert!(parse_topology("er:30").is_err());
        assert!(parse_topology("mystery").is_err());
    }

    #[test]
    fn failures_defaults_and_flags() {
        let Command::Failures(a) = parse(&sv(&["failures"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, FailuresArgs::default());

        let Command::Failures(a) = parse(&sv(&[
            "failures",
            "--scheme",
            "offsite",
            "--requests",
            "80",
            "--mttf",
            "20",
            "--mttr",
            "4",
            "--kill-rate",
            "0.1",
            "--policy",
            "none",
            "--failure-seed",
            "7",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.sim.scheme, vnfrel::Scheme::OffSite);
        assert_eq!(a.sim.requests, 80);
        assert_eq!(a.mttf, 20.0);
        assert_eq!(a.mttr, 4.0);
        assert_eq!(a.kill_rate, 0.1);
        assert_eq!(a.policy, mec_sim::RecoveryPolicy::None);
        assert_eq!(a.failure_seed, 7);

        for (name, policy) in [
            ("onsite", mec_sim::RecoveryPolicy::OnSite),
            ("offsite", mec_sim::RecoveryPolicy::OffSite),
            ("matching", mec_sim::RecoveryPolicy::SchemeMatching),
        ] {
            let Command::Failures(a) = parse(&sv(&["failures", "--policy", name])).unwrap() else {
                panic!()
            };
            assert_eq!(a.policy, policy);
        }
        assert!(parse(&sv(&["failures", "--policy", "prayer"])).is_err());
        assert!(parse(&sv(&["failures", "--mttf"])).is_err());
        assert!(parse(&sv(&["failures", "--bogus"])).is_err());
        assert!(parse(&sv(&[
            "failures",
            "--scheme",
            "offsite",
            "--algorithm",
            "density"
        ]))
        .is_err());
    }

    #[test]
    fn degradation_defaults_and_flags() {
        let Command::Degradation(a) = parse(&sv(&["degradation"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, DegradationArgs::default());

        let Command::Degradation(a) = parse(&sv(&[
            "degradation",
            "--domains",
            "3",
            "--domain-mttf",
            "12",
            "--domain-mttr",
            "4",
            "--cascade-threshold",
            "0.6",
            "--cascade-hazard",
            "0.5",
            "--cascade-slots",
            "3",
            "--headroom",
            "0.2",
            "--max-retries",
            "2",
            "--backoff",
            "2",
            "--no-shed",
            "--mttf",
            "20",
            "--requests",
            "80",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.domains, 3);
        assert_eq!(a.domain_mttf, 12.0);
        assert_eq!(a.domain_mttr, 4.0);
        let cascade = a.cascade.unwrap();
        assert_eq!(cascade.utilization_threshold, 0.6);
        assert_eq!(cascade.hazard, 0.5);
        assert_eq!(cascade.outage_slots, 3);
        assert_eq!(a.config.headroom, 0.2);
        assert_eq!(a.config.max_retries, 2);
        assert_eq!(a.config.backoff_base, 2);
        assert!(!a.config.shed);
        assert!(a.config.audit);
        // Inherited failures and simulate flags still apply.
        assert_eq!(a.failures.mttf, 20.0);
        assert_eq!(a.failures.sim.requests, 80);

        let Command::Degradation(a) =
            parse(&sv(&["degradation", "--no-cascade", "--no-audit"])).unwrap()
        else {
            panic!()
        };
        assert!(a.cascade.is_none());
        assert!(!a.config.audit);

        assert!(parse(&sv(&["degradation", "--domains", "0"])).is_err());
        assert!(parse(&sv(&["degradation", "--bogus"])).is_err());
        assert!(parse(&sv(&["degradation", "--headroom"])).is_err());
    }

    #[test]
    fn observability_flags() {
        let Command::Simulate(a) = parse(&sv(&[
            "simulate",
            "--trace",
            "out/trace.jsonl",
            "--metrics",
            "out/metrics.prom",
            "--timeline-csv",
            "out/timeline.csv",
            "-q",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.trace.as_deref(), Some("out/trace.jsonl"));
        assert_eq!(a.metrics.as_deref(), Some("out/metrics.prom"));
        assert_eq!(a.timeline_csv.as_deref(), Some("out/timeline.csv"));
        assert!(a.quiet);

        let Command::Failures(a) = parse(&sv(&[
            "failures",
            "--sla-csv",
            "sla.csv",
            "--trace",
            "t.jsonl",
            "--quiet",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.sla_csv.as_deref(), Some("sla.csv"));
        assert_eq!(a.sim.trace.as_deref(), Some("t.jsonl"));
        assert!(a.sim.quiet);
    }

    #[test]
    fn explain_parsing() {
        let Command::Explain {
            request,
            trace,
            quiet,
        } = parse(&sv(&["explain", "17", "--trace", "run.jsonl", "-q"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(request, 17);
        assert_eq!(trace, "run.jsonl");
        assert!(quiet);
        // Both the id and the trace path are mandatory.
        assert!(parse(&sv(&["explain", "--trace", "run.jsonl"])).is_err());
        assert!(parse(&sv(&["explain", "17"])).is_err());
        assert!(parse(&sv(&["explain", "17", "--bogus"])).is_err());
    }

    #[test]
    fn density_is_onsite_only() {
        assert!(parse(&sv(&[
            "simulate",
            "--scheme",
            "offsite",
            "--algorithm",
            "density"
        ]))
        .is_err());
    }

    #[test]
    fn topo_flags() {
        let Command::Topo {
            topology,
            dot,
            seed,
        } = parse(&sv(&[
            "topo",
            "--topology",
            "geant",
            "--dot",
            "--seed",
            "4",
        ]))
        .unwrap()
        else {
            panic!()
        };
        assert_eq!(topology, TopologyChoice::Zoo("geant".into()));
        assert!(dot);
        assert_eq!(seed, 4);
    }

    #[test]
    fn bad_ranges() {
        assert!(parse(&sv(&["simulate", "--capacity", "10-20"])).is_err());
        assert!(parse(&sv(&["simulate", "--payment", "abc:2"])).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let Command::Serve(a) = parse(&sv(&["serve"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, ServeArgs::default());

        let Command::Serve(a) = parse(&sv(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--queue",
            "64",
            "--workers",
            "2",
            "--snapshot",
            "state.snap",
            "--resume",
            "--tick-ms",
            "250",
            "--scheme",
            "offsite",
            "--seed",
            "9",
            "--trace",
            "serve.jsonl",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.addr, "0.0.0.0:9000");
        assert_eq!(a.queue, 64);
        assert_eq!(a.workers, 2);
        assert_eq!(a.snapshot.as_deref(), Some("state.snap"));
        assert!(a.resume);
        assert_eq!(a.tick_ms, Some(250));
        // Scenario flags fall through to the shared simulate parser.
        assert_eq!(a.sim.scheme, vnfrel::Scheme::OffSite);
        assert_eq!(a.sim.seed, 9);
        assert_eq!(a.sim.trace.as_deref(), Some("serve.jsonl"));

        assert!(parse(&sv(&["serve", "--queue", "0"])).is_err());
        assert!(parse(&sv(&["serve", "--algorithm", "random"])).is_err());
        assert!(parse(&sv(&["serve", "--bogus"])).is_err());
        assert!(parse(&sv(&["serve", "--addr"])).is_err());
    }

    #[test]
    fn serve_replication_flags() {
        let Command::Serve(a) = parse(&sv(&[
            "serve",
            "--replicate-to",
            "127.0.0.1:7071",
            "--repl-strict",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.replicate_to.as_deref(), Some("127.0.0.1:7071"));
        assert!(a.repl_strict);
        assert!(!a.standby);

        let Command::Serve(a) =
            parse(&sv(&["serve", "--standby", "--auto-promote-ms", "750"])).unwrap()
        else {
            panic!()
        };
        assert!(a.standby);
        assert_eq!(a.auto_promote_ms, Some(750));

        // Role and knob combinations that make no sense are refused.
        assert!(parse(&sv(&["serve", "--standby", "--replicate-to", "x:1"])).is_err());
        assert!(parse(&sv(&["serve", "--repl-strict"])).is_err());
        assert!(parse(&sv(&["serve", "--auto-promote-ms", "500"])).is_err());
    }

    #[test]
    fn promote_parsing() {
        let Command::Promote { addr, quiet } =
            parse(&sv(&["promote", "127.0.0.1:7071", "-q"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:7071");
        assert!(quiet);
        let Command::Promote { addr, .. } =
            parse(&sv(&["promote", "--addr", "10.0.0.2:9000"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(addr, "10.0.0.2:9000");
        assert!(parse(&sv(&["promote"])).is_err());
        assert!(parse(&sv(&["promote", "--bogus"])).is_err());
    }

    #[test]
    fn failover_drill_parsing() {
        let Command::FailoverDrill(a) = parse(&sv(&["failover-drill"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, FailoverDrillArgs::default());

        let Command::FailoverDrill(a) = parse(&sv(&[
            "failover-drill",
            "--requests",
            "200",
            "--kill-at",
            "77",
            "--out",
            "results/failover_drill.txt",
            "--seed",
            "5",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.sim.requests, 200);
        assert_eq!(a.kill_at, 77);
        assert_eq!(a.out.as_deref(), Some("results/failover_drill.txt"));
        assert_eq!(a.sim.seed, 5);

        // The kill point must fall strictly inside the trace.
        assert!(parse(&sv(&["failover-drill", "--kill-at", "0"])).is_err());
        assert!(parse(&sv(&[
            "failover-drill",
            "--requests",
            "50",
            "--kill-at",
            "50"
        ]))
        .is_err());
        assert!(parse(&sv(&["failover-drill", "--algorithm", "random"])).is_err());
    }

    #[test]
    fn loadgen_defaults_and_flags() {
        let Command::Loadgen(a) = parse(&sv(&["loadgen"])).unwrap() else {
            panic!()
        };
        assert_eq!(a, LoadgenArgs::default());

        let Command::Loadgen(a) = parse(&sv(&[
            "loadgen",
            "--addr",
            "127.0.0.1:9000",
            "--rate",
            "500",
            "--start-at",
            "100",
            "--no-shutdown",
            "--hist-out",
            "hist.txt",
            "--requests",
            "10000",
        ]))
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.addr, "127.0.0.1:9000");
        assert_eq!(a.rate, 500.0);
        assert_eq!(a.start_at, 100);
        assert!(a.no_shutdown);
        assert_eq!(a.hist_out.as_deref(), Some("hist.txt"));
        assert_eq!(a.sim.requests, 10000);

        assert!(parse(&sv(&["loadgen", "--rate", "-1"])).is_err());
        assert!(parse(&sv(&["loadgen", "--rate", "inf"])).is_err());
        assert!(parse(&sv(&["loadgen", "--bogus"])).is_err());

        let Command::Loadgen(a) = parse(&sv(&[
            "loadgen",
            "--addr",
            "127.0.0.1:9000,127.0.0.1:9001",
            "--reconnect",
        ]))
        .unwrap() else {
            panic!()
        };
        assert!(a.reconnect);
        assert_eq!(a.addr, "127.0.0.1:9000,127.0.0.1:9001");
    }
}
