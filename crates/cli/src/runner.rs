//! Executes parsed commands.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::mpsc;
use std::time::Duration;

use mec_obs::{
    DecisionMetricIds, JsonlSink, MetricsRegistry, MetricsSink, NoopSink, Outcome, TraceEvent,
    TraceSink,
};
use mec_sim::{
    export, failure, EngineMetricIds, EngineMetrics, FailureConfig, FailureProcess,
    InjectionMetricIds, IntraSlotOrder, RecoveryPolicy, Simulation,
};
use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::stats::{to_dot, NetworkStats};
use mec_topology::{zoo, FailureDomainSet, Network};
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::baselines::{DensityGreedy, RandomPlacement};
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

use mec_serve::{
    run_loadgen, serve as serve_daemon, DecisionTap, LoadgenConfig, ServeConfig, ServeMetricIds,
};

use crate::args::{
    AlgorithmChoice, DegradationArgs, FailuresArgs, LoadgenArgs, ServeArgs, SimulateArgs,
    TopologyChoice,
};
use crate::error::CliError;

/// Split output channels: result tables go to `out` (stdout), progress
/// and provenance notes go to `err` (stderr) so tables stay pipeable.
/// `quiet` suppresses the notes entirely.
pub struct Output<'w> {
    out: &'w mut dyn Write,
    err: &'w mut dyn Write,
    quiet: bool,
}

impl<'w> Output<'w> {
    /// Bundles the two streams.
    pub fn new(out: &'w mut dyn Write, err: &'w mut dyn Write, quiet: bool) -> Self {
        Output { out, err, quiet }
    }

    /// Writes one line of result output (stdout).
    fn table(&mut self, s: impl std::fmt::Display) -> Result<(), CliError> {
        writeln!(self.out, "{s}").map_err(CliError::io)
    }

    /// Writes one line of progress/provenance output (stderr), unless
    /// `--quiet`.
    fn note(&mut self, s: impl std::fmt::Display) -> Result<(), CliError> {
        if self.quiet {
            return Ok(());
        }
        writeln!(self.err, "{s}").map_err(CliError::io)
    }
}

/// The sink the CLI hands to schedulers and the fault-aware engine:
/// folds decision events into a metrics registry (when `--metrics`) and
/// streams every event as JSONL (when `--trace`). Both parts optional,
/// and the sink is only constructed when at least one flag is present —
/// flag-less runs keep the compile-away [`NoopSink`] path.
struct CliTraceSink<'r> {
    metrics: Option<MetricsSink<'r, NoopSink>>,
    jsonl: Option<JsonlSink<BufWriter<File>>>,
}

impl TraceSink for CliTraceSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        match (&mut self.metrics, &mut self.jsonl) {
            (Some(m), Some(j)) => {
                m.record(event.clone());
                j.record(event);
            }
            (Some(m), None) => m.record(event),
            (None, Some(j)) => j.record(event),
            (None, None) => {}
        }
    }
}

type SharedSink<'r> = Rc<RefCell<CliTraceSink<'r>>>;

fn open_trace(path: &str) -> Result<JsonlSink<BufWriter<File>>, CliError> {
    let file = File::create(path)
        .map_err(|e| CliError::Io(format!("failed to create trace {path}: {e}")))?;
    Ok(JsonlSink::new(BufWriter::new(file)))
}

/// Unwraps the shared sink after a run, flushes the JSONL stream, and
/// surfaces any IO error with the target path.
fn finish_trace(
    sink: SharedSink<'_>,
    path: Option<&str>,
    io: &mut Output<'_>,
) -> Result<(), CliError> {
    let sink = Rc::try_unwrap(sink)
        .map_err(|_| {
            CliError::Internal("internal error: trace sink still shared after the run".into())
        })?
        .into_inner();
    if let Some(jsonl) = sink.jsonl {
        let path = path.unwrap_or("<trace>");
        let written = jsonl.written();
        jsonl
            .finish()
            .map_err(|e| CliError::Io(format!("failed to write trace {path}: {e}")))?;
        io.note(format!("trace: {written} events -> {path}"))?;
    }
    Ok(())
}

/// Creates `path` and streams a CSV table into it, reporting any mid-table
/// write failure (rather than leaving a silently truncated file behind).
fn write_csv_file(
    path: &str,
    render: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> Result<(), CliError> {
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("failed to create {path}: {e}")))?;
    let mut w = BufWriter::new(file);
    render(&mut w)
        .and_then(|()| w.flush())
        .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))
}

/// Writes a metrics snapshot; `.json`/`.jsonl` extensions select the
/// JSONL format, anything else the Prometheus text exposition format.
fn write_metrics_snapshot(registry: &MetricsRegistry, path: &str) -> Result<(), CliError> {
    let body = if path.ends_with(".json") || path.ends_with(".jsonl") {
        registry.to_jsonl()
    } else {
        registry.to_prometheus()
    };
    std::fs::write(path, body)
        .map_err(|e| CliError::Io(format!("failed to write metrics {path}: {e}")))
}

/// Builds a network from a topology choice.
///
/// # Errors
///
/// Returns a human-readable message for invalid parameter combinations.
pub fn build_network(
    choice: &TopologyChoice,
    placement: &CloudletPlacement,
    rng: &mut ChaCha8Rng,
) -> Result<Network, CliError> {
    let net = match choice {
        TopologyChoice::Zoo(name) => {
            let topo = match name.as_str() {
                "abilene" => zoo::abilene(),
                "nsfnet" => zoo::nsfnet(),
                "aarnet" => zoo::aarnet(),
                "att" | "att-na" => zoo::att_na(),
                "geant" => zoo::geant(),
                "garr" => zoo::garr(),
                "cesnet" => zoo::cesnet(),
                other => return Err(CliError::Config(format!("unknown zoo topology `{other}`"))),
            };
            topo.into_network(placement, rng)
        }
        TopologyChoice::ErdosRenyi { n, p } => generators::erdos_renyi(*n, *p, placement, rng),
        TopologyChoice::BarabasiAlbert { n, m } => {
            generators::barabasi_albert(*n, *m, placement, rng)
        }
        TopologyChoice::Grid { rows, cols } => generators::grid(*rows, *cols, placement, rng),
    };
    net.map_err(|e| CliError::Config(format!("failed to build topology: {e}")))
}

/// Builds the instance and request stream a `simulate`-family command
/// operates on. The returned RNG has consumed the topology and workload
/// draws and may be reused for downstream sampling.
fn build_setup(
    args: &SimulateArgs,
) -> Result<(ProblemInstance, Vec<Request>, ChaCha8Rng), CliError> {
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let placement = CloudletPlacement {
        fraction: args.cloudlet_fraction,
        capacity: args.capacity,
        reliability: args.cloudlet_reliability,
    };
    let network = build_network(&args.topology, &placement, &mut rng)?;
    let instance =
        ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(args.horizon))
            .map_err(CliError::config)?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(args.requirement.0, args.requirement.1)
        .map_err(CliError::config)?
        .payment_rate_band(args.payment_rate.0, args.payment_rate.1)
        .map_err(CliError::config)?
        .generate(args.requests, instance.catalog(), &mut rng)
        .map_err(CliError::config)?;
    Ok((instance, requests, rng))
}

/// Instantiates the scheduler selected by `args`, borrowing `instance`.
fn make_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::new(instance, CapacityPolicy::Enforce).map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => Box::new(OnsiteGreedy::new(instance)),
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::new(instance))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => Box::new(OffsiteGreedy::new(instance)),
        (scheme, AlgorithmChoice::Random) => {
            Box::new(RandomPlacement::new(instance, scheme, args.seed))
        }
        (Scheme::OnSite, AlgorithmChoice::Density) => {
            Box::new(DensityGreedy::new(instance, 0.0).map_err(CliError::config)?)
        }
        (Scheme::OffSite, AlgorithmChoice::Density) => {
            return Err(CliError::Usage("density greedy is on-site only".into()))
        }
    })
}

/// Like [`make_scheduler`], but wires the shared CLI sink into the
/// scheduler so every `decide()` emits one decision event. Only the four
/// instrumented schedulers (primal-dual and greedy, each scheme) support
/// this.
fn make_traced_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
    sink: SharedSink<'a>,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::with_sink(instance, CapacityPolicy::Enforce, sink)
                .map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => {
            Box::new(OnsiteGreedy::with_sink(instance, sink))
        }
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::with_sink(instance, sink))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => {
            Box::new(OffsiteGreedy::with_sink(instance, sink))
        }
        (_, AlgorithmChoice::Random | AlgorithmChoice::Density) => {
            return Err(CliError::Usage(
                "--trace/--metrics support the primal-dual and greedy algorithms only".into(),
            ))
        }
    })
}

/// Runs the `simulate` command.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn simulate(args: &SimulateArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, requests, _rng) = build_setup(args)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;

    let want_metrics = args.metrics.is_some();
    let mut registry = MetricsRegistry::new();
    let decision_ids = want_metrics.then(|| DecisionMetricIds::register(&mut registry));
    let engine_ids =
        want_metrics.then(|| EngineMetricIds::register(&mut registry, instance.cloudlet_count()));
    let inject_ids = (want_metrics && args.failure_trials > 0)
        .then(|| InjectionMetricIds::register(&mut registry));
    let registry = &registry;
    let engine_metrics = engine_ids.map(|ids| EngineMetrics::new(registry, ids));

    let report = if args.trace.is_some() || want_metrics {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: decision_ids.map(|ids| MetricsSink::new(registry, ids)),
            jsonl: args.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, args, Rc::clone(&sink))?;
        let report = sim
            .run_ordered_metered(
                scheduler.as_mut(),
                IntraSlotOrder::Arrival,
                engine_metrics.as_ref(),
            )
            .map_err(CliError::internal)?;
        drop(scheduler);
        finish_trace(sink, args.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, args)?;
        sim.run(scheduler.as_mut()).map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.table(&report.metrics)?;
    io.table(format!(
        "feasible: {} ({} reliability / {} capacity violations)",
        report.validation.is_feasible(),
        report.validation.reliability_violations(),
        report.validation.capacity_violations()
    ))?;

    if args.failure_trials > 0 {
        // Trials are chunk-seeded from the workload seed, so the report
        // is identical for any --threads value.
        let fr = match inject_ids {
            Some(ids) => failure::inject_failures_parallel_metered(
                &instance,
                &requests,
                &report.schedule,
                args.failure_trials,
                args.seed,
                args.threads,
                (registry, ids),
            ),
            None => failure::inject_failures_parallel(
                &instance,
                &requests,
                &report.schedule,
                args.failure_trials,
                args.seed,
                args.threads,
            ),
        }
        .map_err(CliError::internal)?;
        io.table(format!(
            "failure injection: {} trials, worst margin {:+.4}, statistical violations {}",
            fr.trials,
            fr.worst_margin().unwrap_or(f64::NAN),
            fr.statistical_violations(3.0).len()
        ))?;
    }

    if let Some(path) = &args.timeline_csv {
        write_csv_file(path, |w| export::write_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &args.metrics {
        write_metrics_snapshot(registry, path)?;
        io.note(format!("metrics snapshot -> {path}"))?;
    }
    Ok(())
}

/// Runs the `failures` command: a fault-aware simulation under a seeded
/// outage trace, with SLA accounting and (unless the policy already is
/// `none`) a same-trace no-recovery baseline for comparison. With
/// `--trace`, fault-lifecycle events (outages, kills, breaches,
/// recoveries) are interleaved with the scheduler's decision events in
/// one stream.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn failures(args: &FailuresArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, requests, _) = build_setup(&args.sim)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;
    let config = FailureConfig {
        cloudlet_mttf: args.mttf,
        cloudlet_mttr: args.mttr,
        instance_kill_rate: args.kill_rate,
    };
    let trace = FailureProcess::generate(
        instance.network(),
        &config,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(args.failure_seed),
    )
    .map_err(CliError::config)?;

    let want_metrics = args.sim.metrics.is_some();
    let mut registry = MetricsRegistry::new();
    let decision_ids = want_metrics.then(|| DecisionMetricIds::register(&mut registry));
    let registry = &registry;

    let report = if args.sim.trace.is_some() || want_metrics {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: decision_ids.map(|ids| MetricsSink::new(registry, ids)),
            jsonl: args.sim.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, &args.sim, Rc::clone(&sink))?;
        // The engine appends fault-lifecycle events through its own
        // handle to the same stream.
        let mut engine_sink = Rc::clone(&sink);
        let report = sim
            .run_with_failures_traced(scheduler.as_mut(), &trace, args.policy, &mut engine_sink)
            .map_err(CliError::internal)?;
        drop(scheduler);
        drop(engine_sink);
        finish_trace(sink, args.sim.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, &args.sim)?;
        sim.run_with_failures(scheduler.as_mut(), &trace, args.policy)
            .map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.note(format!(
        "failure process: mttf {} mttr {} kill-rate {} seed {} -> {} events",
        args.mttf,
        args.mttr,
        args.kill_rate,
        args.failure_seed,
        trace.total_events()
    ))?;
    io.table(&report.metrics)?;
    io.table(format!("policy {}: {}", report.policy, report.sla))?;
    if let Some(latency) = report.sla.mean_repair_latency() {
        io.table(format!("mean repair latency: {latency:.2} slots"))?;
    }
    io.table(format!(
        "unrecovered requests: {}",
        report.sla.unrecovered_requests()
    ))?;

    if args.policy != RecoveryPolicy::None {
        let mut baseline = make_scheduler(&instance, &args.sim)?;
        let base = sim
            .run_with_failures(baseline.as_mut(), &trace, RecoveryPolicy::None)
            .map_err(CliError::internal)?;
        io.table(format!("baseline {}: {}", base.policy, base.sla))?;
        io.table(format!(
            "violated request-slots: {} -> {}",
            base.sla.violated_request_slots(),
            report.sla.violated_request_slots()
        ))?;
    }

    if let Some(path) = &args.sim.timeline_csv {
        write_csv_file(path, |w| export::write_fault_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &args.sla_csv {
        write_csv_file(path, |w| export::write_sla_csv(w, &report))?;
        io.note(format!("SLA CSV -> {path}"))?;
    }
    if let Some(path) = &args.sim.metrics {
        write_metrics_snapshot(registry, path)?;
        io.note(format!("metrics snapshot -> {path}"))?;
    }
    Ok(())
}

/// Runs the `degradation` command: a fault-aware simulation whose
/// outage trace carries correlated failure domains (zone partitions of
/// the cloudlet fleet) and an optional cascade overlay, replayed through
/// the graceful-degradation layer — headroom-reserving admission, a
/// revenue-aware load shedder, bounded retries with exponential backoff,
/// and the runtime invariant auditor. A same-trace no-recovery baseline
/// quantifies what the layer buys.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn degradation(args: &DegradationArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let fargs = &args.failures;
    let (instance, requests, _) = build_setup(&fargs.sim)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;
    let config = FailureConfig {
        cloudlet_mttf: fargs.mttf,
        cloudlet_mttr: fargs.mttr,
        instance_kill_rate: fargs.kill_rate,
    };
    let domains = FailureDomainSet::zones(
        instance.network(),
        args.domains,
        args.domain_mttf,
        args.domain_mttr,
    )
    .map_err(CliError::config)?;
    let trace = FailureProcess::generate_with_domains(
        instance.network(),
        &config,
        &domains,
        args.cascade,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(fargs.failure_seed),
    )
    .map_err(CliError::config)?;

    let report = if fargs.sim.trace.is_some() {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: None,
            jsonl: fargs.sim.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, &fargs.sim, Rc::clone(&sink))?;
        let mut engine_sink = Rc::clone(&sink);
        let report = sim
            .run_degraded_traced(
                scheduler.as_mut(),
                &trace,
                fargs.policy,
                &args.config,
                &mut engine_sink,
            )
            .map_err(CliError::internal)?;
        drop(scheduler);
        drop(engine_sink);
        finish_trace(sink, fargs.sim.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, &fargs.sim)?;
        sim.run_degraded(scheduler.as_mut(), &trace, fargs.policy, &args.config)
            .map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.note(format!(
        "failure process: mttf {} mttr {} kill-rate {} seed {} -> {} events",
        fargs.mttf,
        fargs.mttr,
        fargs.kill_rate,
        fargs.failure_seed,
        trace.total_events()
    ))?;
    io.note(format!(
        "failure domains: {} zones, mttf {} mttr {} -> {} domain events{}",
        args.domains,
        args.domain_mttf,
        args.domain_mttr,
        trace.total_domain_events(),
        match &args.cascade {
            Some(c) => format!(
                "; cascades above {:.0}% utilization (hazard {}, {} slots)",
                c.utilization_threshold * 100.0,
                c.hazard,
                c.outage_slots
            ),
            None => "; cascades off".into(),
        }
    ))?;
    io.table(&report.metrics)?;
    io.table(format!("policy {}: {}", report.policy, report.sla))?;
    if let Some(stats) = &report.degradation {
        io.table(format!(
            "degradation: {} degraded slots, {} vetoed admissions, {} evictions, \
             {} cascades, {} retry episodes exhausted",
            stats.degraded_slots,
            stats.vetoed_admissions,
            stats.evictions,
            stats.cascades,
            stats.retries_exhausted
        ))?;
    }
    match &report.audit {
        Some(audit) if audit.is_clean() => {
            io.table(format!("audit: clean over {} slots", audit.slots_checked))?
        }
        Some(audit) => {
            io.table(format!("audit: {audit}"))?;
        }
        None => io.note("audit: off".to_string())?,
    }

    // Same-trace baseline without recovery or degradation: what the
    // layer buys in violated slots and retained revenue.
    let mut baseline = make_scheduler(&instance, &fargs.sim)?;
    let base = sim
        .run_with_failures(baseline.as_mut(), &trace, RecoveryPolicy::None)
        .map_err(CliError::config)?;
    io.table(format!("baseline {}: {}", base.policy, base.sla))?;
    io.table(format!(
        "violated request-slots: {} -> {}",
        base.sla.violated_request_slots(),
        report.sla.violated_request_slots()
    ))?;
    io.table(format!(
        "revenue retained: {:.2} -> {:.2}",
        base.sla.revenue_retained(),
        report.sla.revenue_retained()
    ))?;

    if let Some(path) = &fargs.sim.timeline_csv {
        write_csv_file(path, |w| export::write_fault_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &fargs.sla_csv {
        write_csv_file(path, |w| export::write_sla_csv(w, &report))?;
        io.note(format!("SLA CSV -> {path}"))?;
    }
    Ok(())
}

/// Like [`make_traced_scheduler`], but wires the daemon's
/// [`DecisionTap`] in as the sink so [`serve_daemon`] can pop each
/// decision right after `decide()` returns.
fn make_tapped_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
    tap: DecisionTap,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::with_sink(instance, CapacityPolicy::Enforce, tap)
                .map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => {
            Box::new(OnsiteGreedy::with_sink(instance, tap))
        }
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::with_sink(instance, tap))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => {
            Box::new(OffsiteGreedy::with_sink(instance, tap))
        }
        (_, AlgorithmChoice::Random | AlgorithmChoice::Density) => {
            return Err(CliError::Usage(
                "serve supports the primal-dual and greedy algorithms only".into(),
            ))
        }
    })
}

/// A canonical string of everything that defines the daemon's instance
/// and scheduler. Stored in snapshots and validated on resume, so a
/// daemon only resumes state produced by an identical scenario.
fn scenario_fingerprint(args: &SimulateArgs) -> String {
    format!(
        "v1|topo={:?}|scheme={:?}|algo={:?}|seed={}|horizon={}|cap={}:{}|crel={}:{}|frac={}",
        args.topology,
        args.scheme,
        args.algorithm,
        args.seed,
        args.horizon,
        args.capacity.0,
        args.capacity.1,
        args.cloudlet_reliability.0,
        args.cloudlet_reliability.1,
        args.cloudlet_fraction,
    )
}

/// Runs the `serve` command: builds the scenario's instance, wires the
/// selected scheduler to the daemon's decision tap, and blocks serving
/// line-JSON admission requests until a shutdown control or signal.
///
/// # Errors
///
/// [`CliError::Net`] when the address cannot be bound (bad address,
/// busy port), [`CliError::Snapshot`] when `--resume` finds a corrupt
/// or mismatched snapshot, [`CliError::Config`] on invalid scenarios.
pub fn serve(args: &ServeArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, _requests, _rng) = build_setup(&args.sim)?;
    let tap = DecisionTap::new();
    let mut scheduler = make_tapped_scheduler(&instance, &args.sim, tap.clone())?;
    let mut registry = MetricsRegistry::new();
    let ids = ServeMetricIds::register(&mut registry, instance.cloudlet_count());

    let mut config = ServeConfig::new(args.addr.clone());
    config.queue_capacity = args.queue;
    config.workers = args.workers;
    config.snapshot_path = args.snapshot.as_ref().map(PathBuf::from);
    config.resume = args.resume;
    config.tick = args.tick_ms.map(Duration::from_millis);
    config.fingerprint = scenario_fingerprint(&args.sim);
    config.trace_path = args.sim.trace.as_ref().map(PathBuf::from);
    config.install_signal_handlers = true;

    io.note(format!("{instance}"))?;
    io.note(format!(
        "serving {:?} {:?} (fingerprint {})",
        args.sim.scheme, args.sim.algorithm, config.fingerprint
    ))?;
    // The daemon blocks this thread; announce the bound address from a
    // helper thread so `--addr 127.0.0.1:0` runs still print where they
    // actually listen.
    let (tx, rx) = mpsc::channel();
    let quiet = args.sim.quiet;
    let announce = std::thread::spawn(move || {
        if let Ok(addr) = rx.recv() {
            if !quiet {
                eprintln!(
                    "listening on {addr} (GET /metrics for Prometheus text; \
                     SIGINT/SIGTERM for drain-then-snapshot shutdown)"
                );
            }
        }
    });
    let result = serve_daemon(scheduler.as_mut(), &tap, &registry, &ids, &config, Some(tx));
    announce.join().ok();
    let report = result?;

    io.table(format!(
        "served: revenue {:.2}, admitted {}/{} ({} rejected, {} overloads), final slot {}",
        report.stats.revenue,
        report.stats.admitted,
        report.stats.decided,
        report.stats.rejected,
        report.stats.overloaded,
        report.slot
    ))?;
    if report.snapshot_written {
        io.note(format!(
            "snapshot -> {}",
            args.snapshot.as_deref().unwrap_or("<none>")
        ))?;
    }
    Ok(())
}

/// Polls until the daemon accepts connections — serve and loadgen are
/// typically started back-to-back — bounded to ~5 s, then lets
/// [`run_loadgen`] surface the real connect error.
fn wait_for_daemon(addr: &str) {
    for _ in 0..50 {
        if std::net::TcpStream::connect(addr).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs the `loadgen` command: regenerates the scenario's request
/// stream and replays it against a running daemon, closed-loop, then
/// prints client-side bookkeeping next to the daemon's own counters
/// (from the shutdown ack) so parity with `vnfrel simulate` is a
/// string comparison.
///
/// # Errors
///
/// [`CliError::Net`] when the daemon is unreachable or the connection
/// drops, [`CliError::Io`] when `--hist-out` cannot be written.
pub fn loadgen(args: &LoadgenArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (_instance, requests, _rng) = build_setup(&args.sim)?;
    let mut config = LoadgenConfig::new(args.addr.clone());
    if args.rate > 0.0 {
        config.rate = args.rate;
    }
    config.start_at = args.start_at;
    config.shutdown_when_done = !args.no_shutdown;

    io.note(format!(
        "replaying {} generated requests against {}",
        requests.len(),
        args.addr
    ))?;
    wait_for_daemon(&args.addr);
    let report = run_loadgen(&requests, &config)?;

    io.table(format!(
        "loadgen: revenue {:.2}, admitted {}/{} ({} rejected, {} overloaded, {} errors)",
        report.revenue,
        report.admitted,
        report.sent,
        report.rejected,
        report.overloaded,
        report.errors
    ))?;
    io.table(format!(
        "throughput {:.0} decisions/s over {:.2}s; latency p50 {:.1}us p90 {:.1}us \
         p99 {:.1}us max {:.1}us",
        report.throughput(),
        report.elapsed.as_secs_f64(),
        report.latency.p50 * 1e6,
        report.latency.p90 * 1e6,
        report.latency.p99 * 1e6,
        report.latency.max * 1e6
    ))?;
    if let Some(stats) = &report.final_stats {
        io.table(format!(
            "daemon: revenue {:.2}, admitted {}/{} (clean drain-and-shutdown acked)",
            stats.revenue, stats.admitted, stats.decided
        ))?;
    }
    if let Some(path) = &args.hist_out {
        std::fs::write(path, report.latency.to_text())
            .map_err(|e| CliError::Io(format!("failed to write histogram {path}: {e}")))?;
        io.note(format!("latency histogram -> {path}"))?;
    }
    Ok(())
}

/// Runs the `explain` command: replays a recorded JSONL trace and prints
/// every event concerning one request, re-deriving the dual-cost
/// arithmetic of its decision as a consistency check.
///
/// The checks: an admission's total dual cost must equal the sum of its
/// per-site dual costs, and wherever both a dual cost and a margin were
/// recorded the identity `margin = payment − dual cost` must hold (the
/// off-site primal-dual's admission margin is its δ_i bookkeeping value,
/// which follows a different formula and is skipped).
///
/// # Errors
///
/// Returns a printable message when the trace cannot be read or parsed,
/// the request does not appear in it, or the arithmetic does not check
/// out.
pub fn explain(request: usize, trace_path: &str, io: &mut Output<'_>) -> Result<(), CliError> {
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| CliError::Io(format!("failed to read trace {trace_path}: {e}")))?;
    let events =
        mec_obs::parse_trace(&text).map_err(|e| CliError::Io(format!("{trace_path}: {e}")))?;
    io.note(format!("trace {trace_path}: {} events", events.len()))?;

    let mine: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.request() == Some(request))
        .collect();
    if mine.is_empty() {
        return Err(CliError::Config(format!(
            "request {request} does not appear in {trace_path} ({} events scanned)",
            events.len()
        )));
    }

    let mut mismatches = 0usize;
    for event in mine {
        match event {
            TraceEvent::Decision(d) => {
                io.table(format!(
                    "slot {}: {} ({} scheme) decided on request {} (payment {})",
                    d.slot, d.algorithm, d.scheme, d.request, d.payment
                ))?;
                match &d.outcome {
                    Outcome::Admit {
                        dual_cost,
                        margin,
                        sites,
                    } => {
                        io.table(format!(
                            "  ADMITTED: dual cost {dual_cost}, margin {margin}"
                        ))?;
                        for s in sites {
                            io.table(format!(
                                "    cloudlet {}: {} instance(s), dual cost {}",
                                s.cloudlet, s.instances, s.dual_cost
                            ))?;
                        }
                        let site_sum: f64 = sites.iter().map(|s| s.dual_cost).sum();
                        if approx(site_sum, *dual_cost) {
                            io.table(format!(
                                "  check: site dual costs sum to {site_sum} = recorded total [ok]"
                            ))?;
                        } else {
                            mismatches += 1;
                            io.table(format!(
                                "  check: site dual costs sum to {site_sum} but total is \
                                 {dual_cost} [MISMATCH]"
                            ))?;
                        }
                        // Algorithm 2's margin is δ_i (Eq. 66 bookkeeping),
                        // not payment − cost; skip the identity there.
                        if d.algorithm != "alg2-primal-dual" {
                            check_margin(io, d.payment, *dual_cost, *margin, &mut mismatches)?;
                        }
                    }
                    Outcome::Reject {
                        reason,
                        dual_cost,
                        margin,
                    } => {
                        io.table(format!("  REJECTED: {}", reason.as_str()))?;
                        if let Some(c) = dual_cost {
                            io.table(format!("    cheapest dual cost seen: {c}"))?;
                        }
                        if let Some(m) = margin {
                            io.table(format!("    payment margin: {m}"))?;
                        }
                        if let (Some(c), Some(m)) = (dual_cost, margin) {
                            check_margin(io, d.payment, *c, *m, &mut mismatches)?;
                        }
                    }
                }
            }
            TraceEvent::InstanceKill { slot, cloudlet, .. } => {
                io.table(format!(
                    "slot {slot}: one instance killed on cloudlet {cloudlet}"
                ))?;
            }
            TraceEvent::SlaBreach { slot, .. } => {
                io.table(format!(
                    "slot {slot}: surviving placement fell below the requirement (SLA breach)"
                ))?;
            }
            TraceEvent::Recovery {
                slot,
                success,
                cloudlets,
                ..
            } => {
                if *success {
                    io.table(format!(
                        "slot {slot}: recovered onto cloudlet(s) {cloudlets:?}"
                    ))?;
                } else {
                    io.table(format!("slot {slot}: recovery attempt failed"))?;
                }
            }
            TraceEvent::Eviction { slot, density, .. } => {
                io.table(format!(
                    "slot {slot}: evicted by the load shedder (payment density {density})"
                ))?;
            }
            // Fleet-level events carry no request id and never pass the
            // `request()` filter above.
            TraceEvent::OutageStart { .. }
            | TraceEvent::OutageEnd { .. }
            | TraceEvent::DomainOutageStart { .. }
            | TraceEvent::DomainOutageEnd { .. }
            | TraceEvent::Cascade { .. }
            | TraceEvent::DegradedEnter { .. }
            | TraceEvent::DegradedExit { .. }
            | TraceEvent::AuditViolation { .. } => {}
        }
    }
    if mismatches > 0 {
        return Err(CliError::Internal(format!(
            "{mismatches} dual-cost arithmetic mismatch(es) in {trace_path}"
        )));
    }
    Ok(())
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

fn check_margin(
    io: &mut Output<'_>,
    payment: f64,
    dual_cost: f64,
    margin: f64,
    mismatches: &mut usize,
) -> Result<(), CliError> {
    let derived = payment - dual_cost;
    if approx(derived, margin) {
        io.table(format!(
            "  check: payment − dual cost = {derived} = recorded margin [ok]"
        ))?;
    } else {
        *mismatches += 1;
        io.table(format!(
            "  check: payment − dual cost = {derived} but recorded margin is {margin} [MISMATCH]"
        ))?;
    }
    Ok(())
}

/// Runs the `topo` command.
///
/// # Errors
///
/// Returns a printable message on invalid configurations.
pub fn topo(
    choice: &TopologyChoice,
    dot: bool,
    seed: u64,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement::balanced();
    let network = build_network(choice, &placement, &mut rng)?;
    if dot {
        write!(out, "{}", to_dot(&network)).map_err(CliError::io)?;
    } else {
        writeln!(out, "{}", NetworkStats::compute(&network)).map_err(CliError::io)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::SimulateArgs;

    /// Runs `simulate`, returning (stdout, stderr).
    fn run_simulate(args: &SimulateArgs) -> Result<(String, String), CliError> {
        let mut out = Vec::new();
        let mut err = Vec::new();
        simulate(args, &mut Output::new(&mut out, &mut err, args.quiet))?;
        Ok((
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        ))
    }

    fn run_failures(args: &FailuresArgs) -> Result<(String, String), CliError> {
        let mut out = Vec::new();
        let mut err = Vec::new();
        failures(args, &mut Output::new(&mut out, &mut err, args.sim.quiet))?;
        Ok((
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        ))
    }

    fn temp_path(tag: &str) -> String {
        let dir = std::env::temp_dir().join("vnfrel-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{tag}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn simulate_runs_every_algorithm() {
        for (scheme, algo) in [
            (Scheme::OnSite, AlgorithmChoice::PrimalDual),
            (Scheme::OnSite, AlgorithmChoice::Greedy),
            (Scheme::OnSite, AlgorithmChoice::Random),
            (Scheme::OnSite, AlgorithmChoice::Density),
            (Scheme::OffSite, AlgorithmChoice::PrimalDual),
            (Scheme::OffSite, AlgorithmChoice::Greedy),
            (Scheme::OffSite, AlgorithmChoice::Random),
        ] {
            let args = SimulateArgs {
                requests: 40,
                scheme,
                algorithm: algo,
                failure_trials: 200,
                ..SimulateArgs::default()
            };
            let (out, err) =
                run_simulate(&args).unwrap_or_else(|e| panic!("{scheme} {algo:?}: {e}"));
            assert!(out.contains("revenue"), "{out}");
            assert!(out.contains("feasible: true"), "{out}");
            assert!(out.contains("failure injection"), "{out}");
            // The instance banner is provenance, not a result table.
            assert!(err.contains("cloudlets"), "{err}");
            assert!(!out.contains("cloudlets,"), "{out}");
        }
    }

    #[test]
    fn quiet_suppresses_stderr_notes() {
        let args = SimulateArgs {
            requests: 20,
            quiet: true,
            ..SimulateArgs::default()
        };
        let (out, err) = run_simulate(&args).unwrap();
        assert!(out.contains("revenue"));
        assert!(err.is_empty(), "{err}");
    }

    #[test]
    fn simulate_with_trace_and_metrics_exports_both() {
        let trace_path = temp_path("sim-trace.jsonl");
        let metrics_path = temp_path("sim-metrics.prom");
        let args = SimulateArgs {
            requests: 50,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
            ..SimulateArgs::default()
        };
        let (out, err) = run_simulate(&args).unwrap();
        assert!(out.contains("revenue"));
        assert!(err.contains("trace: "), "{err}");

        // Exactly one decision event per request, and the admit/reject
        // split matches the printed metrics.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events = mec_obs::parse_trace(&text).unwrap();
        assert_eq!(events.len(), 50);
        let admits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision(d) if d.outcome.is_admit()))
            .count();
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(
            prom.contains(&format!("vnfrel_admissions_total {admits}")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("vnfrel_rejections_total {}", 50 - admits)),
            "{prom}"
        );
        assert!(
            prom.contains("vnfrel_decide_latency_seconds_count 50"),
            "{prom}"
        );

        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn explain_replays_a_recorded_trace() {
        let trace_path = temp_path("explain-trace.jsonl");
        let args = SimulateArgs {
            requests: 30,
            trace: Some(trace_path.clone()),
            ..SimulateArgs::default()
        };
        run_simulate(&args).unwrap();

        // Every recorded request must explain cleanly (arithmetic checks
        // included — explain() errors on any mismatch).
        for id in [0usize, 7, 29] {
            let mut out = Vec::new();
            let mut err = Vec::new();
            explain(id, &trace_path, &mut Output::new(&mut out, &mut err, false))
                .unwrap_or_else(|e| panic!("request {id}: {e}"));
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(&format!("request {id} ")), "{text}");
            assert!(
                text.contains("ADMITTED") || text.contains("REJECTED"),
                "{text}"
            );
        }
        // Unknown ids are an error, not silence.
        let mut out = Vec::new();
        let mut err = Vec::new();
        let missing = explain(
            10_000,
            &trace_path,
            &mut Output::new(&mut out, &mut err, false),
        );
        assert!(missing.is_err());

        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn export_errors_name_the_target_path() {
        let bad = "/nonexistent-dir-for-vnfrel-test/trace.jsonl";
        let args = SimulateArgs {
            requests: 5,
            trace: Some(bad.into()),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(matches!(e, CliError::Io(_)), "{e}");
        assert!(e.to_string().contains(bad), "{e}");

        let args = SimulateArgs {
            requests: 5,
            timeline_csv: Some("/nonexistent-dir-for-vnfrel-test/t.csv".into()),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(
            e.to_string()
                .contains("/nonexistent-dir-for-vnfrel-test/t.csv"),
            "{e}"
        );
    }

    #[test]
    fn trace_and_metrics_reject_uninstrumented_algorithms() {
        let args = SimulateArgs {
            algorithm: AlgorithmChoice::Random,
            trace: Some(temp_path("never-written.jsonl")),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        assert!(e.to_string().contains("primal-dual and greedy"), "{e}");
    }

    #[test]
    fn failures_runs_every_policy_and_compares() {
        for policy in [
            RecoveryPolicy::None,
            RecoveryPolicy::OnSite,
            RecoveryPolicy::OffSite,
            RecoveryPolicy::SchemeMatching,
        ] {
            let args = FailuresArgs {
                sim: SimulateArgs {
                    requests: 60,
                    ..SimulateArgs::default()
                },
                mttf: 10.0,
                mttr: 3.0,
                kill_rate: 0.05,
                policy,
                failure_seed: 5,
                sla_csv: None,
            };
            let (out, err) = run_failures(&args).unwrap_or_else(|e| panic!("{policy}: {e}"));
            assert!(err.contains("failure process"), "{err}");
            assert!(out.contains(&format!("policy {policy}")), "{out}");
            if policy == RecoveryPolicy::None {
                assert!(!out.contains("baseline"), "{out}");
            } else {
                assert!(out.contains("baseline none"), "{out}");
                assert!(out.contains("violated request-slots"), "{out}");
            }
        }
    }

    #[test]
    fn failures_trace_interleaves_faults_and_exports_csvs() {
        let trace_path = temp_path("fault-trace.jsonl");
        let timeline_path = temp_path("fault-timeline.csv");
        let sla_path = temp_path("fault-sla.csv");
        let args = FailuresArgs {
            sim: SimulateArgs {
                requests: 60,
                trace: Some(trace_path.clone()),
                timeline_csv: Some(timeline_path.clone()),
                ..SimulateArgs::default()
            },
            mttf: 10.0,
            mttr: 3.0,
            kill_rate: 0.05,
            policy: RecoveryPolicy::SchemeMatching,
            failure_seed: 5,
            sla_csv: Some(sla_path.clone()),
        };
        let (out, _err) = run_failures(&args).unwrap();
        assert!(out.contains("policy scheme-matching"), "{out}");

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events = mec_obs::parse_trace(&text).unwrap();
        // One decision per request plus at least one fault event (the
        // aggressive mttf guarantees outages in 16 slots).
        let decisions = events.iter().filter(|e| e.kind() == "decision").count();
        assert_eq!(decisions, 60);
        assert!(events.len() > 60, "no fault events in {}", events.len());

        let timeline = std::fs::read_to_string(&timeline_path).unwrap();
        assert!(timeline.starts_with("slot,arrivals,admitted,active,events"));
        let sla = std::fs::read_to_string(&sla_path).unwrap();
        assert!(sla.starts_with("request,payment,duration"));

        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&timeline_path).ok();
        std::fs::remove_file(&sla_path).ok();
    }

    #[test]
    fn simulate_rejects_offsite_density() {
        // The parser already blocks this; the runner must too.
        let args = SimulateArgs {
            scheme: Scheme::OffSite,
            algorithm: AlgorithmChoice::Density,
            ..SimulateArgs::default()
        };
        assert!(run_simulate(&args).is_err());
    }

    #[test]
    fn topo_stats_and_dot() {
        let mut buf = Vec::new();
        topo(&TopologyChoice::Zoo("nsfnet".into()), false, 1, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("14 nodes"), "{text}");

        let mut buf = Vec::new();
        topo(
            &TopologyChoice::Grid { rows: 2, cols: 2 },
            true,
            1,
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph mec {"));
    }

    #[test]
    fn build_network_variants() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = CloudletPlacement::balanced();
        for choice in [
            TopologyChoice::Zoo("geant".into()),
            TopologyChoice::ErdosRenyi { n: 20, p: 0.2 },
            TopologyChoice::BarabasiAlbert { n: 20, m: 2 },
            TopologyChoice::Grid { rows: 3, cols: 3 },
        ] {
            let net = build_network(&choice, &p, &mut rng).unwrap();
            assert!(net.is_connected());
        }
        assert!(build_network(&TopologyChoice::Zoo("nope".into()), &p, &mut rng).is_err());
    }
}
