//! Executes parsed commands.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::mpsc;
use std::time::Duration;

use mec_obs::{
    DecisionMetricIds, JsonlSink, MetricsRegistry, MetricsSink, NoopSink, Outcome, TraceEvent,
    TraceSink,
};
use mec_sim::{
    export, failure, EngineMetricIds, EngineMetrics, FailureConfig, FailureProcess,
    InjectionMetricIds, IntraSlotOrder, RecoveryPolicy, Simulation,
};
use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::stats::{to_dot, NetworkStats};
use mec_topology::{zoo, FailureDomainSet, Network};
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::baselines::{DensityGreedy, RandomPlacement};
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

use mec_serve::{
    encode_client, parse_server, run_loadgen, serve as serve_daemon, ClientMsg, ControlAck,
    ControlAction, DecisionTap, LoadgenConfig, ServeConfig, ServeMetricIds, ServerMsg, Snapshot,
};

use crate::args::{
    AlgorithmChoice, DegradationArgs, FailoverDrillArgs, FailuresArgs, LoadgenArgs, ServeArgs,
    SimulateArgs, TopologyChoice,
};
use crate::error::CliError;

/// Split output channels: result tables go to `out` (stdout), progress
/// and provenance notes go to `err` (stderr) so tables stay pipeable.
/// `quiet` suppresses the notes entirely.
pub struct Output<'w> {
    out: &'w mut dyn Write,
    err: &'w mut dyn Write,
    quiet: bool,
}

impl<'w> Output<'w> {
    /// Bundles the two streams.
    pub fn new(out: &'w mut dyn Write, err: &'w mut dyn Write, quiet: bool) -> Self {
        Output { out, err, quiet }
    }

    /// Writes one line of result output (stdout).
    fn table(&mut self, s: impl std::fmt::Display) -> Result<(), CliError> {
        writeln!(self.out, "{s}").map_err(CliError::io)
    }

    /// Writes one line of progress/provenance output (stderr), unless
    /// `--quiet`.
    fn note(&mut self, s: impl std::fmt::Display) -> Result<(), CliError> {
        if self.quiet {
            return Ok(());
        }
        writeln!(self.err, "{s}").map_err(CliError::io)
    }
}

/// The sink the CLI hands to schedulers and the fault-aware engine:
/// folds decision events into a metrics registry (when `--metrics`) and
/// streams every event as JSONL (when `--trace`). Both parts optional,
/// and the sink is only constructed when at least one flag is present —
/// flag-less runs keep the compile-away [`NoopSink`] path.
struct CliTraceSink<'r> {
    metrics: Option<MetricsSink<'r, NoopSink>>,
    jsonl: Option<JsonlSink<BufWriter<File>>>,
}

impl TraceSink for CliTraceSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        match (&mut self.metrics, &mut self.jsonl) {
            (Some(m), Some(j)) => {
                m.record(event.clone());
                j.record(event);
            }
            (Some(m), None) => m.record(event),
            (None, Some(j)) => j.record(event),
            (None, None) => {}
        }
    }
}

type SharedSink<'r> = Rc<RefCell<CliTraceSink<'r>>>;

fn open_trace(path: &str) -> Result<JsonlSink<BufWriter<File>>, CliError> {
    let file = File::create(path)
        .map_err(|e| CliError::Io(format!("failed to create trace {path}: {e}")))?;
    Ok(JsonlSink::new(BufWriter::new(file)))
}

/// Unwraps the shared sink after a run, flushes the JSONL stream, and
/// surfaces any IO error with the target path.
fn finish_trace(
    sink: SharedSink<'_>,
    path: Option<&str>,
    io: &mut Output<'_>,
) -> Result<(), CliError> {
    let sink = Rc::try_unwrap(sink)
        .map_err(|_| {
            CliError::Internal("internal error: trace sink still shared after the run".into())
        })?
        .into_inner();
    if let Some(jsonl) = sink.jsonl {
        let path = path.unwrap_or("<trace>");
        let written = jsonl.written();
        jsonl
            .finish()
            .map_err(|e| CliError::Io(format!("failed to write trace {path}: {e}")))?;
        io.note(format!("trace: {written} events -> {path}"))?;
    }
    Ok(())
}

/// Creates `path` and streams a CSV table into it, reporting any mid-table
/// write failure (rather than leaving a silently truncated file behind).
fn write_csv_file(
    path: &str,
    render: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
) -> Result<(), CliError> {
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("failed to create {path}: {e}")))?;
    let mut w = BufWriter::new(file);
    render(&mut w)
        .and_then(|()| w.flush())
        .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))
}

/// Writes a metrics snapshot; `.json`/`.jsonl` extensions select the
/// JSONL format, anything else the Prometheus text exposition format.
fn write_metrics_snapshot(registry: &MetricsRegistry, path: &str) -> Result<(), CliError> {
    let body = if path.ends_with(".json") || path.ends_with(".jsonl") {
        registry.to_jsonl()
    } else {
        registry.to_prometheus()
    };
    std::fs::write(path, body)
        .map_err(|e| CliError::Io(format!("failed to write metrics {path}: {e}")))
}

/// Builds a network from a topology choice.
///
/// # Errors
///
/// Returns a human-readable message for invalid parameter combinations.
pub fn build_network(
    choice: &TopologyChoice,
    placement: &CloudletPlacement,
    rng: &mut ChaCha8Rng,
) -> Result<Network, CliError> {
    let net = match choice {
        TopologyChoice::Zoo(name) => {
            let topo = match name.as_str() {
                "abilene" => zoo::abilene(),
                "nsfnet" => zoo::nsfnet(),
                "aarnet" => zoo::aarnet(),
                "att" | "att-na" => zoo::att_na(),
                "geant" => zoo::geant(),
                "garr" => zoo::garr(),
                "cesnet" => zoo::cesnet(),
                other => return Err(CliError::Config(format!("unknown zoo topology `{other}`"))),
            };
            topo.into_network(placement, rng)
        }
        TopologyChoice::ErdosRenyi { n, p } => generators::erdos_renyi(*n, *p, placement, rng),
        TopologyChoice::BarabasiAlbert { n, m } => {
            generators::barabasi_albert(*n, *m, placement, rng)
        }
        TopologyChoice::Grid { rows, cols } => generators::grid(*rows, *cols, placement, rng),
    };
    net.map_err(|e| CliError::Config(format!("failed to build topology: {e}")))
}

/// Builds the instance and request stream a `simulate`-family command
/// operates on. The returned RNG has consumed the topology and workload
/// draws and may be reused for downstream sampling.
fn build_setup(
    args: &SimulateArgs,
) -> Result<(ProblemInstance, Vec<Request>, ChaCha8Rng), CliError> {
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let placement = CloudletPlacement {
        fraction: args.cloudlet_fraction,
        capacity: args.capacity,
        reliability: args.cloudlet_reliability,
    };
    let network = build_network(&args.topology, &placement, &mut rng)?;
    let instance =
        ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(args.horizon))
            .map_err(CliError::config)?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(args.requirement.0, args.requirement.1)
        .map_err(CliError::config)?
        .payment_rate_band(args.payment_rate.0, args.payment_rate.1)
        .map_err(CliError::config)?
        .generate(args.requests, instance.catalog(), &mut rng)
        .map_err(CliError::config)?;
    Ok((instance, requests, rng))
}

/// Instantiates the scheduler selected by `args`, borrowing `instance`.
fn make_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::new(instance, CapacityPolicy::Enforce).map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => Box::new(OnsiteGreedy::new(instance)),
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::new(instance))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => Box::new(OffsiteGreedy::new(instance)),
        (scheme, AlgorithmChoice::Random) => {
            Box::new(RandomPlacement::new(instance, scheme, args.seed))
        }
        (Scheme::OnSite, AlgorithmChoice::Density) => {
            Box::new(DensityGreedy::new(instance, 0.0).map_err(CliError::config)?)
        }
        (Scheme::OffSite, AlgorithmChoice::Density) => {
            return Err(CliError::Usage("density greedy is on-site only".into()))
        }
    })
}

/// Like [`make_scheduler`], but wires the shared CLI sink into the
/// scheduler so every `decide()` emits one decision event. Only the four
/// instrumented schedulers (primal-dual and greedy, each scheme) support
/// this.
fn make_traced_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
    sink: SharedSink<'a>,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::with_sink(instance, CapacityPolicy::Enforce, sink)
                .map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => {
            Box::new(OnsiteGreedy::with_sink(instance, sink))
        }
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::with_sink(instance, sink))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => {
            Box::new(OffsiteGreedy::with_sink(instance, sink))
        }
        (_, AlgorithmChoice::Random | AlgorithmChoice::Density) => {
            return Err(CliError::Usage(
                "--trace/--metrics support the primal-dual and greedy algorithms only".into(),
            ))
        }
    })
}

/// Runs the `simulate` command.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn simulate(args: &SimulateArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, requests, _rng) = build_setup(args)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;

    let want_metrics = args.metrics.is_some();
    let mut registry = MetricsRegistry::new();
    let decision_ids = want_metrics.then(|| DecisionMetricIds::register(&mut registry));
    let engine_ids =
        want_metrics.then(|| EngineMetricIds::register(&mut registry, instance.cloudlet_count()));
    let inject_ids = (want_metrics && args.failure_trials > 0)
        .then(|| InjectionMetricIds::register(&mut registry));
    let registry = &registry;
    let engine_metrics = engine_ids.map(|ids| EngineMetrics::new(registry, ids));

    let report = if args.trace.is_some() || want_metrics {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: decision_ids.map(|ids| MetricsSink::new(registry, ids)),
            jsonl: args.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, args, Rc::clone(&sink))?;
        let report = sim
            .run_ordered_metered(
                scheduler.as_mut(),
                IntraSlotOrder::Arrival,
                engine_metrics.as_ref(),
            )
            .map_err(CliError::internal)?;
        drop(scheduler);
        finish_trace(sink, args.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, args)?;
        sim.run(scheduler.as_mut()).map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.table(&report.metrics)?;
    io.table(format!(
        "feasible: {} ({} reliability / {} capacity violations)",
        report.validation.is_feasible(),
        report.validation.reliability_violations(),
        report.validation.capacity_violations()
    ))?;

    if args.failure_trials > 0 {
        // Trials are chunk-seeded from the workload seed, so the report
        // is identical for any --threads value.
        let fr = match inject_ids {
            Some(ids) => failure::inject_failures_parallel_metered(
                &instance,
                &requests,
                &report.schedule,
                args.failure_trials,
                args.seed,
                args.threads,
                (registry, ids),
            ),
            None => failure::inject_failures_parallel(
                &instance,
                &requests,
                &report.schedule,
                args.failure_trials,
                args.seed,
                args.threads,
            ),
        }
        .map_err(CliError::internal)?;
        io.table(format!(
            "failure injection: {} trials, worst margin {:+.4}, statistical violations {}",
            fr.trials,
            fr.worst_margin().unwrap_or(f64::NAN),
            fr.statistical_violations(3.0).len()
        ))?;
    }

    if let Some(path) = &args.timeline_csv {
        write_csv_file(path, |w| export::write_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &args.metrics {
        write_metrics_snapshot(registry, path)?;
        io.note(format!("metrics snapshot -> {path}"))?;
    }
    Ok(())
}

/// Runs the `failures` command: a fault-aware simulation under a seeded
/// outage trace, with SLA accounting and (unless the policy already is
/// `none`) a same-trace no-recovery baseline for comparison. With
/// `--trace`, fault-lifecycle events (outages, kills, breaches,
/// recoveries) are interleaved with the scheduler's decision events in
/// one stream.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn failures(args: &FailuresArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, requests, _) = build_setup(&args.sim)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;
    let config = FailureConfig {
        cloudlet_mttf: args.mttf,
        cloudlet_mttr: args.mttr,
        instance_kill_rate: args.kill_rate,
    };
    let trace = FailureProcess::generate(
        instance.network(),
        &config,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(args.failure_seed),
    )
    .map_err(CliError::config)?;

    let want_metrics = args.sim.metrics.is_some();
    let mut registry = MetricsRegistry::new();
    let decision_ids = want_metrics.then(|| DecisionMetricIds::register(&mut registry));
    let registry = &registry;

    let report = if args.sim.trace.is_some() || want_metrics {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: decision_ids.map(|ids| MetricsSink::new(registry, ids)),
            jsonl: args.sim.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, &args.sim, Rc::clone(&sink))?;
        // The engine appends fault-lifecycle events through its own
        // handle to the same stream.
        let mut engine_sink = Rc::clone(&sink);
        let report = sim
            .run_with_failures_traced(scheduler.as_mut(), &trace, args.policy, &mut engine_sink)
            .map_err(CliError::internal)?;
        drop(scheduler);
        drop(engine_sink);
        finish_trace(sink, args.sim.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, &args.sim)?;
        sim.run_with_failures(scheduler.as_mut(), &trace, args.policy)
            .map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.note(format!(
        "failure process: mttf {} mttr {} kill-rate {} seed {} -> {} events",
        args.mttf,
        args.mttr,
        args.kill_rate,
        args.failure_seed,
        trace.total_events()
    ))?;
    io.table(&report.metrics)?;
    io.table(format!("policy {}: {}", report.policy, report.sla))?;
    if let Some(latency) = report.sla.mean_repair_latency() {
        io.table(format!("mean repair latency: {latency:.2} slots"))?;
    }
    io.table(format!(
        "unrecovered requests: {}",
        report.sla.unrecovered_requests()
    ))?;

    if args.policy != RecoveryPolicy::None {
        let mut baseline = make_scheduler(&instance, &args.sim)?;
        let base = sim
            .run_with_failures(baseline.as_mut(), &trace, RecoveryPolicy::None)
            .map_err(CliError::internal)?;
        io.table(format!("baseline {}: {}", base.policy, base.sla))?;
        io.table(format!(
            "violated request-slots: {} -> {}",
            base.sla.violated_request_slots(),
            report.sla.violated_request_slots()
        ))?;
    }

    if let Some(path) = &args.sim.timeline_csv {
        write_csv_file(path, |w| export::write_fault_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &args.sla_csv {
        write_csv_file(path, |w| export::write_sla_csv(w, &report))?;
        io.note(format!("SLA CSV -> {path}"))?;
    }
    if let Some(path) = &args.sim.metrics {
        write_metrics_snapshot(registry, path)?;
        io.note(format!("metrics snapshot -> {path}"))?;
    }
    Ok(())
}

/// Runs the `degradation` command: a fault-aware simulation whose
/// outage trace carries correlated failure domains (zone partitions of
/// the cloudlet fleet) and an optional cascade overlay, replayed through
/// the graceful-degradation layer — headroom-reserving admission, a
/// revenue-aware load shedder, bounded retries with exponential backoff,
/// and the runtime invariant auditor. A same-trace no-recovery baseline
/// quantifies what the layer buys.
///
/// # Errors
///
/// Returns a printable message on invalid configurations or failed
/// exports (always naming the target path).
pub fn degradation(args: &DegradationArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let fargs = &args.failures;
    let (instance, requests, _) = build_setup(&fargs.sim)?;
    let sim = Simulation::new(&instance, &requests).map_err(CliError::config)?;
    let config = FailureConfig {
        cloudlet_mttf: fargs.mttf,
        cloudlet_mttr: fargs.mttr,
        instance_kill_rate: fargs.kill_rate,
    };
    let domains = FailureDomainSet::zones(
        instance.network(),
        args.domains,
        args.domain_mttf,
        args.domain_mttr,
    )
    .map_err(CliError::config)?;
    let trace = FailureProcess::generate_with_domains(
        instance.network(),
        &config,
        &domains,
        args.cascade,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(fargs.failure_seed),
    )
    .map_err(CliError::config)?;

    let report = if fargs.sim.trace.is_some() {
        let sink = Rc::new(RefCell::new(CliTraceSink {
            metrics: None,
            jsonl: fargs.sim.trace.as_deref().map(open_trace).transpose()?,
        }));
        let mut scheduler = make_traced_scheduler(&instance, &fargs.sim, Rc::clone(&sink))?;
        let mut engine_sink = Rc::clone(&sink);
        let report = sim
            .run_degraded_traced(
                scheduler.as_mut(),
                &trace,
                fargs.policy,
                &args.config,
                &mut engine_sink,
            )
            .map_err(CliError::internal)?;
        drop(scheduler);
        drop(engine_sink);
        finish_trace(sink, fargs.sim.trace.as_deref(), io)?;
        report
    } else {
        let mut scheduler = make_scheduler(&instance, &fargs.sim)?;
        sim.run_degraded(scheduler.as_mut(), &trace, fargs.policy, &args.config)
            .map_err(CliError::internal)?
    };

    io.note(format!("{instance}"))?;
    io.note(format!(
        "failure process: mttf {} mttr {} kill-rate {} seed {} -> {} events",
        fargs.mttf,
        fargs.mttr,
        fargs.kill_rate,
        fargs.failure_seed,
        trace.total_events()
    ))?;
    io.note(format!(
        "failure domains: {} zones, mttf {} mttr {} -> {} domain events{}",
        args.domains,
        args.domain_mttf,
        args.domain_mttr,
        trace.total_domain_events(),
        match &args.cascade {
            Some(c) => format!(
                "; cascades above {:.0}% utilization (hazard {}, {} slots)",
                c.utilization_threshold * 100.0,
                c.hazard,
                c.outage_slots
            ),
            None => "; cascades off".into(),
        }
    ))?;
    io.table(&report.metrics)?;
    io.table(format!("policy {}: {}", report.policy, report.sla))?;
    if let Some(stats) = &report.degradation {
        io.table(format!(
            "degradation: {} degraded slots, {} vetoed admissions, {} evictions, \
             {} cascades, {} retry episodes exhausted",
            stats.degraded_slots,
            stats.vetoed_admissions,
            stats.evictions,
            stats.cascades,
            stats.retries_exhausted
        ))?;
    }
    match &report.audit {
        Some(audit) if audit.is_clean() => {
            io.table(format!("audit: clean over {} slots", audit.slots_checked))?
        }
        Some(audit) => {
            io.table(format!("audit: {audit}"))?;
        }
        None => io.note("audit: off".to_string())?,
    }

    // Same-trace baseline without recovery or degradation: what the
    // layer buys in violated slots and retained revenue.
    let mut baseline = make_scheduler(&instance, &fargs.sim)?;
    let base = sim
        .run_with_failures(baseline.as_mut(), &trace, RecoveryPolicy::None)
        .map_err(CliError::config)?;
    io.table(format!("baseline {}: {}", base.policy, base.sla))?;
    io.table(format!(
        "violated request-slots: {} -> {}",
        base.sla.violated_request_slots(),
        report.sla.violated_request_slots()
    ))?;
    io.table(format!(
        "revenue retained: {:.2} -> {:.2}",
        base.sla.revenue_retained(),
        report.sla.revenue_retained()
    ))?;

    if let Some(path) = &fargs.sim.timeline_csv {
        write_csv_file(path, |w| export::write_fault_timeline_csv(w, &report))?;
        io.note(format!("timeline CSV -> {path}"))?;
    }
    if let Some(path) = &fargs.sla_csv {
        write_csv_file(path, |w| export::write_sla_csv(w, &report))?;
        io.note(format!("SLA CSV -> {path}"))?;
    }
    Ok(())
}

/// Like [`make_traced_scheduler`], but wires the daemon's
/// [`DecisionTap`] in as the sink so [`serve_daemon`] can pop each
/// decision right after `decide()` returns.
fn make_tapped_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
    tap: DecisionTap,
) -> Result<Box<dyn OnlineScheduler + 'a>, CliError> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::with_sink(instance, CapacityPolicy::Enforce, tap)
                .map_err(CliError::config)?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => {
            Box::new(OnsiteGreedy::with_sink(instance, tap))
        }
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::with_sink(instance, tap))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => {
            Box::new(OffsiteGreedy::with_sink(instance, tap))
        }
        (_, AlgorithmChoice::Random | AlgorithmChoice::Density) => {
            return Err(CliError::Usage(
                "serve supports the primal-dual and greedy algorithms only".into(),
            ))
        }
    })
}

/// A canonical string of everything that defines the daemon's instance
/// and scheduler. Stored in snapshots and validated on resume, so a
/// daemon only resumes state produced by an identical scenario.
fn scenario_fingerprint(args: &SimulateArgs) -> String {
    format!(
        "v1|topo={:?}|scheme={:?}|algo={:?}|seed={}|horizon={}|cap={}:{}|crel={}:{}|frac={}",
        args.topology,
        args.scheme,
        args.algorithm,
        args.seed,
        args.horizon,
        args.capacity.0,
        args.capacity.1,
        args.cloudlet_reliability.0,
        args.cloudlet_reliability.1,
        args.cloudlet_fraction,
    )
}

/// Runs the `serve` command: builds the scenario's instance, wires the
/// selected scheduler to the daemon's decision tap, and blocks serving
/// line-JSON admission requests until a shutdown control or signal.
///
/// # Errors
///
/// [`CliError::Net`] when the address cannot be bound (bad address,
/// busy port), [`CliError::Snapshot`] when `--resume` finds a corrupt
/// or mismatched snapshot, [`CliError::Config`] on invalid scenarios.
pub fn serve(args: &ServeArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, _requests, _rng) = build_setup(&args.sim)?;
    let tap = DecisionTap::new();
    let mut scheduler = make_tapped_scheduler(&instance, &args.sim, tap.clone())?;
    let mut registry = MetricsRegistry::new();
    let ids = ServeMetricIds::register(&mut registry, instance.cloudlet_count());

    let mut config = ServeConfig::new(args.addr.clone());
    config.queue_capacity = args.queue;
    config.workers = args.workers;
    config.snapshot_path = args.snapshot.as_ref().map(PathBuf::from);
    config.resume = args.resume;
    config.tick = args.tick_ms.map(Duration::from_millis);
    config.fingerprint = scenario_fingerprint(&args.sim);
    config.trace_path = args.sim.trace.as_ref().map(PathBuf::from);
    config.install_signal_handlers = true;
    config.standby = args.standby;
    config.replicate_to = args.replicate_to.clone();
    config.repl_strict = args.repl_strict;
    config.auto_promote_after = args.auto_promote_ms.map(Duration::from_millis);

    io.note(format!("{instance}"))?;
    io.note(format!(
        "serving {:?} {:?} as {} (fingerprint {})",
        args.sim.scheme,
        args.sim.algorithm,
        if args.standby { "standby" } else { "primary" },
        config.fingerprint
    ))?;
    if let Some(peer) = &args.replicate_to {
        io.note(format!(
            "replicating the decision log to {peer}{}",
            if args.repl_strict {
                " (strict: acks wait for the standby)"
            } else {
                ""
            }
        ))?;
    }
    // The daemon blocks this thread; announce the bound address from a
    // helper thread so `--addr 127.0.0.1:0` runs still print where they
    // actually listen.
    let (tx, rx) = mpsc::channel();
    let quiet = args.sim.quiet;
    let announce = std::thread::spawn(move || {
        if let Ok(addr) = rx.recv() {
            if !quiet {
                eprintln!(
                    "listening on {addr} (GET /metrics for Prometheus text; \
                     SIGINT/SIGTERM for drain-then-snapshot shutdown)"
                );
            }
        }
    });
    let result = serve_daemon(scheduler.as_mut(), &tap, &registry, &ids, &config, Some(tx));
    announce.join().ok();
    let report = result?;

    io.table(format!(
        "served: revenue {:.2}, admitted {}/{} ({} rejected, {} overloads), final slot {}, \
         epoch {}, role {}",
        report.stats.revenue,
        report.stats.admitted,
        report.stats.decided,
        report.stats.rejected,
        report.stats.overloaded,
        report.slot,
        report.epoch,
        report.role.as_str()
    ))?;
    if report.snapshot_written {
        io.note(format!(
            "snapshot -> {}",
            args.snapshot.as_deref().unwrap_or("<none>")
        ))?;
    }
    Ok(())
}

/// Polls until the daemon accepts connections — serve and loadgen are
/// typically started back-to-back — bounded to ~5 s, then lets
/// [`run_loadgen`] surface the real connect error.
fn wait_for_daemon(addr: &str) {
    for _ in 0..50 {
        if std::net::TcpStream::connect(addr).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Runs the `loadgen` command: regenerates the scenario's request
/// stream and replays it against a running daemon, closed-loop, then
/// prints client-side bookkeeping next to the daemon's own counters
/// (from the shutdown ack) so parity with `vnfrel simulate` is a
/// string comparison.
///
/// # Errors
///
/// [`CliError::Net`] when the daemon is unreachable or the connection
/// drops, [`CliError::Io`] when `--hist-out` cannot be written.
pub fn loadgen(args: &LoadgenArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (_instance, requests, _rng) = build_setup(&args.sim)?;
    let mut config = LoadgenConfig::new(args.addr.clone());
    if args.rate > 0.0 {
        config.rate = args.rate;
    }
    config.start_at = args.start_at;
    config.shutdown_when_done = !args.no_shutdown;
    config.reconnect = args.reconnect;

    io.note(format!(
        "replaying {} generated requests against {}",
        requests.len(),
        args.addr
    ))?;
    if let Some(first) = args.addr.split(',').next() {
        wait_for_daemon(first.trim());
    }
    let report = run_loadgen(&requests, &config)?;

    io.table(format!(
        "loadgen: revenue {:.2}, admitted {}/{} ({} rejected, {} overloaded, {} errors)",
        report.revenue,
        report.admitted,
        report.sent,
        report.rejected,
        report.overloaded,
        report.errors
    ))?;
    io.table(format!(
        "throughput {:.0} decisions/s over {:.2}s; latency p50 {:.1}us p90 {:.1}us \
         p99 {:.1}us max {:.1}us",
        report.throughput(),
        report.elapsed.as_secs_f64(),
        report.latency.p50 * 1e6,
        report.latency.p90 * 1e6,
        report.latency.p99 * 1e6,
        report.latency.max * 1e6
    ))?;
    if args.reconnect {
        io.table(format!(
            "resilience: {} reconnects, {} resubmits, {} not-primary refusals absorbed",
            report.reconnects, report.resubmits, report.not_primary
        ))?;
    }
    if let Some(stats) = &report.final_stats {
        io.table(format!(
            "daemon: revenue {:.2}, admitted {}/{} (clean drain-and-shutdown acked)",
            stats.revenue, stats.admitted, stats.decided
        ))?;
    }
    if let Some(path) = &args.hist_out {
        std::fs::write(path, report.latency.to_text())
            .map_err(|e| CliError::Io(format!("failed to write histogram {path}: {e}")))?;
        io.note(format!("latency histogram -> {path}"))?;
    }
    Ok(())
}

/// Runs the `explain` command: replays a recorded JSONL trace and prints
/// every event concerning one request, re-deriving the dual-cost
/// arithmetic of its decision as a consistency check.
///
/// The checks: an admission's total dual cost must equal the sum of its
/// per-site dual costs, and wherever both a dual cost and a margin were
/// recorded the identity `margin = payment − dual cost` must hold (the
/// off-site primal-dual's admission margin is its δ_i bookkeeping value,
/// which follows a different formula and is skipped).
///
/// # Errors
///
/// Returns a printable message when the trace cannot be read or parsed,
/// the request does not appear in it, or the arithmetic does not check
/// out.
pub fn explain(request: usize, trace_path: &str, io: &mut Output<'_>) -> Result<(), CliError> {
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| CliError::Io(format!("failed to read trace {trace_path}: {e}")))?;
    let events =
        mec_obs::parse_trace(&text).map_err(|e| CliError::Io(format!("{trace_path}: {e}")))?;
    io.note(format!("trace {trace_path}: {} events", events.len()))?;

    let mine: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| e.request() == Some(request))
        .collect();
    if mine.is_empty() {
        return Err(CliError::Config(format!(
            "request {request} does not appear in {trace_path} ({} events scanned)",
            events.len()
        )));
    }

    let mut mismatches = 0usize;
    for event in mine {
        match event {
            TraceEvent::Decision(d) => {
                io.table(format!(
                    "slot {}: {} ({} scheme) decided on request {} (payment {})",
                    d.slot, d.algorithm, d.scheme, d.request, d.payment
                ))?;
                match &d.outcome {
                    Outcome::Admit {
                        dual_cost,
                        margin,
                        sites,
                    } => {
                        io.table(format!(
                            "  ADMITTED: dual cost {dual_cost}, margin {margin}"
                        ))?;
                        for s in sites {
                            io.table(format!(
                                "    cloudlet {}: {} instance(s), dual cost {}",
                                s.cloudlet, s.instances, s.dual_cost
                            ))?;
                        }
                        let site_sum: f64 = sites.iter().map(|s| s.dual_cost).sum();
                        if approx(site_sum, *dual_cost) {
                            io.table(format!(
                                "  check: site dual costs sum to {site_sum} = recorded total [ok]"
                            ))?;
                        } else {
                            mismatches += 1;
                            io.table(format!(
                                "  check: site dual costs sum to {site_sum} but total is \
                                 {dual_cost} [MISMATCH]"
                            ))?;
                        }
                        // Algorithm 2's margin is δ_i (Eq. 66 bookkeeping),
                        // not payment − cost; skip the identity there.
                        if d.algorithm != "alg2-primal-dual" {
                            check_margin(io, d.payment, *dual_cost, *margin, &mut mismatches)?;
                        }
                    }
                    Outcome::Reject {
                        reason,
                        dual_cost,
                        margin,
                    } => {
                        io.table(format!("  REJECTED: {}", reason.as_str()))?;
                        if let Some(c) = dual_cost {
                            io.table(format!("    cheapest dual cost seen: {c}"))?;
                        }
                        if let Some(m) = margin {
                            io.table(format!("    payment margin: {m}"))?;
                        }
                        if let (Some(c), Some(m)) = (dual_cost, margin) {
                            check_margin(io, d.payment, *c, *m, &mut mismatches)?;
                        }
                    }
                }
            }
            TraceEvent::InstanceKill { slot, cloudlet, .. } => {
                io.table(format!(
                    "slot {slot}: one instance killed on cloudlet {cloudlet}"
                ))?;
            }
            TraceEvent::SlaBreach { slot, .. } => {
                io.table(format!(
                    "slot {slot}: surviving placement fell below the requirement (SLA breach)"
                ))?;
            }
            TraceEvent::Recovery {
                slot,
                success,
                cloudlets,
                ..
            } => {
                if *success {
                    io.table(format!(
                        "slot {slot}: recovered onto cloudlet(s) {cloudlets:?}"
                    ))?;
                } else {
                    io.table(format!("slot {slot}: recovery attempt failed"))?;
                }
            }
            TraceEvent::Eviction { slot, density, .. } => {
                io.table(format!(
                    "slot {slot}: evicted by the load shedder (payment density {density})"
                ))?;
            }
            // Fleet-level events carry no request id and never pass the
            // `request()` filter above.
            TraceEvent::OutageStart { .. }
            | TraceEvent::OutageEnd { .. }
            | TraceEvent::DomainOutageStart { .. }
            | TraceEvent::DomainOutageEnd { .. }
            | TraceEvent::Cascade { .. }
            | TraceEvent::DegradedEnter { .. }
            | TraceEvent::DegradedExit { .. }
            | TraceEvent::AuditViolation { .. }
            | TraceEvent::Promotion { .. }
            | TraceEvent::Fenced { .. }
            | TraceEvent::ReplCatchup { .. } => {}
        }
    }
    if mismatches > 0 {
        return Err(CliError::Internal(format!(
            "{mismatches} dual-cost arithmetic mismatch(es) in {trace_path}"
        )));
    }
    Ok(())
}

fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
}

fn check_margin(
    io: &mut Output<'_>,
    payment: f64,
    dual_cost: f64,
    margin: f64,
    mismatches: &mut usize,
) -> Result<(), CliError> {
    let derived = payment - dual_cost;
    if approx(derived, margin) {
        io.table(format!(
            "  check: payment − dual cost = {derived} = recorded margin [ok]"
        ))?;
    } else {
        *mismatches += 1;
        io.table(format!(
            "  check: payment − dual cost = {derived} but recorded margin is {margin} [MISMATCH]"
        ))?;
    }
    Ok(())
}

/// Runs the `topo` command.
///
/// # Errors
///
/// Returns a printable message on invalid configurations.
pub fn topo(
    choice: &TopologyChoice,
    dot: bool,
    seed: u64,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement::balanced();
    let network = build_network(choice, &placement, &mut rng)?;
    if dot {
        write!(out, "{}", to_dot(&network)).map_err(CliError::io)?;
    } else {
        writeln!(out, "{}", NetworkStats::compute(&network)).map_err(CliError::io)?;
    }
    Ok(())
}

/// Opens one connection, sends one control message, and returns the
/// daemon's ack. Used by `promote` and the failover drill; a control is
/// one request/one reply, so a throwaway connection keeps it simple.
fn send_control(addr: &str, action: ControlAction) -> Result<ControlAck, CliError> {
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::Net(format!("failed to connect to {addr}: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Net(format!("failed to clone the connection to {addr}: {e}")))?;
    let mut reader = BufReader::new(stream);
    writer
        .write_all(encode_client(&ClientMsg::Control(action)).as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::Net(format!("failed to send the control to {addr}: {e}")))?;
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| CliError::Net(format!("failed to read the ack from {addr}: {e}")))?;
    if n == 0 {
        return Err(CliError::Net(format!(
            "{addr} closed the connection before acking the control"
        )));
    }
    match parse_server(reply.trim_end()).map_err(CliError::from)? {
        ServerMsg::Ack(ack) => Ok(ack),
        ServerMsg::Error(e) => Err(CliError::Net(format!("{addr} refused the control: {e}"))),
        other => Err(CliError::Net(format!(
            "unexpected reply to the control from {addr}: {other:?}"
        ))),
    }
}

/// Runs the `promote` command: asks a standby daemon to promote itself
/// to primary. The daemon drains its replication channel first, so the
/// ack arriving means every decision the old primary managed to stream
/// is already applied.
///
/// # Errors
///
/// [`CliError::Net`] when the standby is unreachable or refuses (it is
/// already mid-promotion, or the address points at something else).
pub fn promote(addr: &str, io: &mut Output<'_>) -> Result<(), CliError> {
    io.note(format!("requesting promotion of {addr}"))?;
    let ack = send_control(addr, ControlAction::Promote)?;
    io.table(format!(
        "promoted: {addr} is now {} at epoch {} (slot {}, {} decided, revenue {:.2})",
        ack.role, ack.epoch, ack.slot, ack.stats.decided, ack.stats.revenue
    ))?;
    Ok(())
}

/// A daemon subprocess that is SIGKILLed (and reaped) when dropped, so
/// a failing drill never leaks daemons.
struct ChildGuard {
    child: std::process::Child,
    name: &'static str,
}

impl ChildGuard {
    /// Kills the child with SIGKILL — no signal handler runs, no drain,
    /// no snapshot. This IS the drill's failure injection.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits (bounded) for the child to exit on its own and returns its
    /// exit code.
    fn wait_exit(&mut self, timeout: Duration) -> Result<Option<i32>, CliError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return Ok(status.code()),
                Ok(None) if std::time::Instant::now() >= deadline => {
                    return Err(CliError::Internal(format!(
                        "the {} did not exit within {timeout:?}",
                        self.name
                    )));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => {
                    return Err(CliError::Internal(format!(
                        "waiting on the {}: {e}",
                        self.name
                    )))
                }
            }
        }
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Reserves a free loopback port by binding to port 0 and immediately
/// releasing it. A daemon spawned right after re-binds the same port;
/// the race window is acceptable for a drill on loopback.
fn free_addr() -> Result<String, CliError> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")
        .map_err(|e| CliError::Net(format!("failed to reserve a loopback port: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Net(format!("failed to read the reserved port: {e}")))?;
    Ok(addr.to_string())
}

/// Renders a [`TopologyChoice`] back into the `--topology` syntax.
fn topology_flag(t: &TopologyChoice) -> String {
    match t {
        TopologyChoice::Zoo(name) => name.clone(),
        TopologyChoice::ErdosRenyi { n, p } => format!("er:{n}:{p}"),
        TopologyChoice::BarabasiAlbert { n, m } => format!("ba:{n}:{m}"),
        TopologyChoice::Grid { rows, cols } => format!("grid:{rows}:{cols}"),
    }
}

/// Renders the scenario-defining simulate flags for a daemon
/// subprocess. `f64` `Display` round-trips exactly, so the subprocess
/// parses back bit-identical values and computes the same scenario
/// fingerprint.
fn sim_flags(sim: &SimulateArgs) -> Vec<String> {
    let algorithm = match sim.algorithm {
        AlgorithmChoice::PrimalDual => "primal-dual",
        AlgorithmChoice::Greedy => "greedy",
        AlgorithmChoice::Random => "random",
        AlgorithmChoice::Density => "density",
    };
    let scheme = match sim.scheme {
        Scheme::OnSite => "on-site",
        Scheme::OffSite => "off-site",
    };
    [
        "--topology",
        &topology_flag(&sim.topology),
        "--requests",
        &sim.requests.to_string(),
        "--scheme",
        scheme,
        "--algorithm",
        algorithm,
        "--seed",
        &sim.seed.to_string(),
        "--horizon",
        &sim.horizon.to_string(),
        "--capacity",
        &format!("{}:{}", sim.capacity.0, sim.capacity.1),
        "--cloudlet-rel",
        &format!(
            "{}:{}",
            sim.cloudlet_reliability.0, sim.cloudlet_reliability.1
        ),
        "--requirement",
        &format!("{}:{}", sim.requirement.0, sim.requirement.1),
        "--payment",
        &format!("{}:{}", sim.payment_rate.0, sim.payment_rate.1),
        "--fraction",
        &sim.cloudlet_fraction.to_string(),
        "--quiet",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// Spawns `vnfrel serve` as a subprocess with this scenario, an
/// address, and role-specific extra flags, logging both streams to
/// `log` for post-mortems.
fn spawn_daemon(
    exe: &Path,
    flags: &[String],
    addr: &str,
    extra: &[&str],
    log: &Path,
    name: &'static str,
) -> Result<ChildGuard, CliError> {
    let log_file = File::create(log)
        .map_err(|e| CliError::Io(format!("failed to create {}: {e}", log.display())))?;
    let err_file = log_file
        .try_clone()
        .map_err(|e| CliError::Io(format!("failed to clone the log handle: {e}")))?;
    let child = std::process::Command::new(exe)
        .arg("serve")
        .args(flags)
        .arg("--addr")
        .arg(addr)
        .args(extra)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::from(log_file))
        .stderr(std::process::Stdio::from(err_file))
        .spawn()
        .map_err(|e| CliError::Internal(format!("failed to spawn the {name}: {e}")))?;
    Ok(ChildGuard { child, name })
}

/// Runs the `failover-drill` command: a deterministic kill-the-primary
/// exercise that must end bit-identical to a run where nothing failed.
///
/// Phases:
/// 1. **Golden**: one daemon, no replication, serve every request,
///    clean shutdown — its snapshot is the reference answer.
/// 2. **Pair**: a standby and a strict-replication primary. Replay the
///    first `--kill-at` requests, start the rest on a reconnecting
///    load generator, then SIGKILL the primary mid-load.
/// 3. **Promote**: ask the standby to promote (it drains the
///    replication channel first); the load generator rides the
///    `not-primary` refusals until the ack and finishes the stream.
/// 4. **Fence**: boot a stale epoch-1 "deposed primary" pointed at the
///    survivor and assert it exits with code 7 without acking anything.
/// 5. **Parity**: shut the survivor down and compare its snapshot with
///    the golden one — scheduler state byte-equal, same next id, slot
///    and counters. The epochs differ by exactly the one promotion.
///
/// # Errors
///
/// [`CliError::Internal`] with a `failover-drill: FAIL` report when any
/// invariant does not hold; spawn/connect problems map to their usual
/// categories.
pub fn failover_drill(args: &FailoverDrillArgs, io: &mut Output<'_>) -> Result<(), CliError> {
    let (instance, requests, _rng) = build_setup(&args.sim)?;
    if args.kill_at == 0 || args.kill_at >= requests.len() {
        return Err(CliError::Usage(format!(
            "--kill-at must be in 1..{} (got {})",
            requests.len(),
            args.kill_at
        )));
    }
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Internal(format!("failed to locate the vnfrel binary: {e}")))?;
    let dir = std::env::temp_dir().join(format!("vnfrel-drill-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| CliError::Io(format!("failed to create {}: {e}", dir.display())))?;
    let flags = sim_flags(&args.sim);
    io.note(format!("{instance}"))?;
    io.note(format!(
        "drill scratch dir {} (kept on failure for the daemon logs)",
        dir.display()
    ))?;

    let mut report: Vec<String> = Vec::new();
    report.push(format!(
        "failover-drill: scenario {:?} {:?} seed {} requests {} kill-at {}",
        args.sim.scheme,
        args.sim.algorithm,
        args.sim.seed,
        requests.len(),
        args.kill_at
    ));

    // Phase 1 — golden run: the answer a failure-free daemon produces.
    let golden_snap = dir.join("golden.snap");
    let golden_addr = free_addr()?;
    {
        let mut golden = spawn_daemon(
            &exe,
            &flags,
            &golden_addr,
            &["--snapshot", &golden_snap.to_string_lossy()],
            &dir.join("golden.log"),
            "golden daemon",
        )?;
        wait_for_daemon(&golden_addr);
        let mut config = LoadgenConfig::new(golden_addr.clone());
        config.shutdown_when_done = true;
        let golden_report = run_loadgen(&requests, &config)?;
        report.push(format!(
            "failover-drill: golden revenue {:.2} admitted {}/{}",
            golden_report.revenue, golden_report.admitted, golden_report.sent
        ));
        let code = golden.wait_exit(Duration::from_secs(20))?;
        if code != Some(0) {
            return drill_fail(
                args,
                io,
                dir,
                report,
                format!("the golden daemon exited with {code:?} instead of 0"),
            );
        }
    }
    let golden = Snapshot::load(&golden_snap)?;

    // Phase 2 — the replicated pair. Standby first: the primary dials
    // it on boot.
    let standby_snap = dir.join("standby.snap");
    let standby_addr = free_addr()?;
    let primary_addr = free_addr()?;
    let mut standby = spawn_daemon(
        &exe,
        &flags,
        &standby_addr,
        &["--standby", "--snapshot", &standby_snap.to_string_lossy()],
        &dir.join("standby.log"),
        "standby daemon",
    )?;
    wait_for_daemon(&standby_addr);
    let mut primary = spawn_daemon(
        &exe,
        &flags,
        &primary_addr,
        &["--replicate-to", &standby_addr, "--repl-strict"],
        &dir.join("primary.log"),
        "primary daemon",
    )?;
    wait_for_daemon(&primary_addr);

    // Replay [0, kill_at) so the kill lands on a warmed-up pair.
    let mut phase1_cfg = LoadgenConfig::new(primary_addr.clone());
    phase1_cfg.shutdown_when_done = false;
    let phase1 = run_loadgen(&requests[..args.kill_at], &phase1_cfg)?;
    if phase1.decided != args.kill_at {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!(
                "phase 1 decided {}/{} requests before the kill",
                phase1.decided, args.kill_at
            ),
        );
    }

    // Phase 3 — the remaining requests on a reconnecting generator that
    // knows both addresses, then SIGKILL the primary mid-load and
    // promote the standby underneath it.
    let mut phase2_cfg = LoadgenConfig::new(format!("{primary_addr},{standby_addr}"));
    phase2_cfg.start_at = args.kill_at;
    phase2_cfg.shutdown_when_done = false;
    phase2_cfg.reconnect = true;
    // Full speed on loopback would finish the whole tail before the
    // kill lands; pace the sends so the stream spans the failover and
    // the SIGKILL interrupts live traffic.
    phase2_cfg.rate = 400.0;
    let (phase2, promote_ack, promote_time) = std::thread::scope(|scope| -> Result<_, CliError> {
        let loadgen = scope.spawn(|| run_loadgen(&requests, &phase2_cfg));
        // Let a handful of post-kill_at requests through so the kill
        // interrupts live traffic, not an idle daemon.
        std::thread::sleep(Duration::from_millis(50));
        primary.kill();
        let started = std::time::Instant::now();
        let ack = send_control(&standby_addr, ControlAction::Promote)?;
        let promote_time = started.elapsed();
        let phase2 = loadgen
            .join()
            .map_err(|_| CliError::Internal("the phase-2 load generator panicked".into()))??;
        Ok((phase2, ack, promote_time))
    })?;
    report.push(format!(
        "failover-drill: killed the primary (SIGKILL) after {} acked submissions",
        args.kill_at
    ));
    report.push(format!(
        "failover-drill: promoted the standby in {:.1}ms -> role {} epoch {}",
        promote_time.as_secs_f64() * 1e3,
        promote_ack.role,
        promote_ack.epoch
    ));
    report.push(format!(
        "failover-drill: survivor absorbed {} reconnects, {} resubmits, {} not-primary refusals",
        phase2.reconnects, phase2.resubmits, phase2.not_primary
    ));
    if promote_ack.role != "primary" || promote_ack.epoch != 2 {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!(
                "promotion acked role {} epoch {} (wanted primary at epoch 2)",
                promote_ack.role, promote_ack.epoch
            ),
        );
    }
    if phase2.decided != requests.len() - args.kill_at {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!(
                "phase 2 decided {}/{} requests across the failover",
                phase2.decided,
                requests.len() - args.kill_at
            ),
        );
    }

    // Phase 4 — fencing: a deposed primary at the old epoch must shoot
    // itself (exit 7) the moment the promoted survivor answers it.
    let fence_addr = free_addr()?;
    let mut deposed = spawn_daemon(
        &exe,
        &flags,
        &fence_addr,
        &["--replicate-to", &standby_addr, "--repl-strict"],
        &dir.join("deposed.log"),
        "deposed primary",
    )?;
    let fence_code = deposed.wait_exit(Duration::from_secs(20))?;
    report.push(format!(
        "failover-drill: deposed epoch-1 primary exited with code {}",
        fence_code.map_or_else(|| "<signal>".into(), |c| c.to_string())
    ));
    if fence_code != Some(7) {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!("the deposed primary exited with {fence_code:?}, not the fenced code 7"),
        );
    }

    // Phase 5 — drain the survivor and compare snapshots.
    let final_ack = send_control(&standby_addr, ControlAction::Shutdown)?;
    let survivor_code = standby.wait_exit(Duration::from_secs(20))?;
    if survivor_code != Some(0) {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!("the survivor exited with {survivor_code:?} instead of 0"),
        );
    }
    let survivor = Snapshot::load(&standby_snap)?;
    let checks = [
        ("state", golden.state == survivor.state),
        ("next-id", golden.next_id == survivor.next_id),
        ("slot", golden.slot == survivor.slot),
        ("stats", golden.stats == survivor.stats),
        ("fingerprint", golden.config == survivor.config),
        ("golden-epoch", golden.epoch == 1),
        ("survivor-epoch", survivor.epoch == 2),
        (
            "acked-admits-preserved",
            final_ack.stats.decided as usize == requests.len(),
        ),
        // The kill must have interrupted live traffic: the generator
        // either lost a connection or was told `not-primary` at least
        // once. All-zero means the tail finished before the SIGKILL and
        // the drill exercised nothing.
        (
            "failover-crossed-live-traffic",
            phase2.reconnects + phase2.not_primary > 0,
        ),
    ];
    let verdicts: Vec<String> = checks
        .iter()
        .map(|(name, ok)| format!("{name}={}", if *ok { "ok" } else { "MISMATCH" }))
        .collect();
    report.push(format!("failover-drill: parity {}", verdicts.join(" ")));
    report.push(format!(
        "failover-drill: survivor revenue {:.2} admitted {}/{} (golden revenue {:.2})",
        survivor.stats.revenue,
        survivor.stats.admitted,
        survivor.stats.decided,
        golden.stats.revenue
    ));
    if let Some((name, _)) = checks.iter().find(|(_, ok)| !ok) {
        return drill_fail(
            args,
            io,
            dir,
            report,
            format!("parity check `{name}` failed (survivor diverged from the golden run)"),
        );
    }

    report.push("failover-drill: PASS".into());
    emit_drill_report(args, io, &report)?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Prints (and optionally writes) the drill report lines.
fn emit_drill_report(
    args: &FailoverDrillArgs,
    io: &mut Output<'_>,
    report: &[String],
) -> Result<(), CliError> {
    for line in report {
        io.table(line)?;
    }
    if let Some(path) = &args.out {
        let mut text = report.join("\n");
        text.push('\n');
        std::fs::write(path, text)
            .map_err(|e| CliError::Io(format!("failed to write {path}: {e}")))?;
        io.note(format!("drill report -> {path}"))?;
    }
    Ok(())
}

/// Finishes a failed drill: appends the FAIL line, emits the report
/// (keeping the scratch dir with the daemon logs), and returns the
/// typed error.
fn drill_fail(
    args: &FailoverDrillArgs,
    io: &mut Output<'_>,
    dir: PathBuf,
    mut report: Vec<String>,
    why: String,
) -> Result<(), CliError> {
    report.push(format!("failover-drill: FAIL ({why})"));
    emit_drill_report(args, io, &report)?;
    Err(CliError::Internal(format!(
        "failover drill failed: {why} (daemon logs in {})",
        dir.display()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::SimulateArgs;

    /// Runs `simulate`, returning (stdout, stderr).
    fn run_simulate(args: &SimulateArgs) -> Result<(String, String), CliError> {
        let mut out = Vec::new();
        let mut err = Vec::new();
        simulate(args, &mut Output::new(&mut out, &mut err, args.quiet))?;
        Ok((
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        ))
    }

    fn run_failures(args: &FailuresArgs) -> Result<(String, String), CliError> {
        let mut out = Vec::new();
        let mut err = Vec::new();
        failures(args, &mut Output::new(&mut out, &mut err, args.sim.quiet))?;
        Ok((
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        ))
    }

    fn temp_path(tag: &str) -> String {
        let dir = std::env::temp_dir().join("vnfrel-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{tag}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn simulate_runs_every_algorithm() {
        for (scheme, algo) in [
            (Scheme::OnSite, AlgorithmChoice::PrimalDual),
            (Scheme::OnSite, AlgorithmChoice::Greedy),
            (Scheme::OnSite, AlgorithmChoice::Random),
            (Scheme::OnSite, AlgorithmChoice::Density),
            (Scheme::OffSite, AlgorithmChoice::PrimalDual),
            (Scheme::OffSite, AlgorithmChoice::Greedy),
            (Scheme::OffSite, AlgorithmChoice::Random),
        ] {
            let args = SimulateArgs {
                requests: 40,
                scheme,
                algorithm: algo,
                failure_trials: 200,
                ..SimulateArgs::default()
            };
            let (out, err) =
                run_simulate(&args).unwrap_or_else(|e| panic!("{scheme} {algo:?}: {e}"));
            assert!(out.contains("revenue"), "{out}");
            assert!(out.contains("feasible: true"), "{out}");
            assert!(out.contains("failure injection"), "{out}");
            // The instance banner is provenance, not a result table.
            assert!(err.contains("cloudlets"), "{err}");
            assert!(!out.contains("cloudlets,"), "{out}");
        }
    }

    #[test]
    fn quiet_suppresses_stderr_notes() {
        let args = SimulateArgs {
            requests: 20,
            quiet: true,
            ..SimulateArgs::default()
        };
        let (out, err) = run_simulate(&args).unwrap();
        assert!(out.contains("revenue"));
        assert!(err.is_empty(), "{err}");
    }

    #[test]
    fn simulate_with_trace_and_metrics_exports_both() {
        let trace_path = temp_path("sim-trace.jsonl");
        let metrics_path = temp_path("sim-metrics.prom");
        let args = SimulateArgs {
            requests: 50,
            trace: Some(trace_path.clone()),
            metrics: Some(metrics_path.clone()),
            ..SimulateArgs::default()
        };
        let (out, err) = run_simulate(&args).unwrap();
        assert!(out.contains("revenue"));
        assert!(err.contains("trace: "), "{err}");

        // Exactly one decision event per request, and the admit/reject
        // split matches the printed metrics.
        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events = mec_obs::parse_trace(&text).unwrap();
        assert_eq!(events.len(), 50);
        let admits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision(d) if d.outcome.is_admit()))
            .count();
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(
            prom.contains(&format!("vnfrel_admissions_total {admits}")),
            "{prom}"
        );
        assert!(
            prom.contains(&format!("vnfrel_rejections_total {}", 50 - admits)),
            "{prom}"
        );
        assert!(
            prom.contains("vnfrel_decide_latency_seconds_count 50"),
            "{prom}"
        );

        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&metrics_path).ok();
    }

    #[test]
    fn explain_replays_a_recorded_trace() {
        let trace_path = temp_path("explain-trace.jsonl");
        let args = SimulateArgs {
            requests: 30,
            trace: Some(trace_path.clone()),
            ..SimulateArgs::default()
        };
        run_simulate(&args).unwrap();

        // Every recorded request must explain cleanly (arithmetic checks
        // included — explain() errors on any mismatch).
        for id in [0usize, 7, 29] {
            let mut out = Vec::new();
            let mut err = Vec::new();
            explain(id, &trace_path, &mut Output::new(&mut out, &mut err, false))
                .unwrap_or_else(|e| panic!("request {id}: {e}"));
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(&format!("request {id} ")), "{text}");
            assert!(
                text.contains("ADMITTED") || text.contains("REJECTED"),
                "{text}"
            );
        }
        // Unknown ids are an error, not silence.
        let mut out = Vec::new();
        let mut err = Vec::new();
        let missing = explain(
            10_000,
            &trace_path,
            &mut Output::new(&mut out, &mut err, false),
        );
        assert!(missing.is_err());

        std::fs::remove_file(&trace_path).ok();
    }

    #[test]
    fn export_errors_name_the_target_path() {
        let bad = "/nonexistent-dir-for-vnfrel-test/trace.jsonl";
        let args = SimulateArgs {
            requests: 5,
            trace: Some(bad.into()),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(matches!(e, CliError::Io(_)), "{e}");
        assert!(e.to_string().contains(bad), "{e}");

        let args = SimulateArgs {
            requests: 5,
            timeline_csv: Some("/nonexistent-dir-for-vnfrel-test/t.csv".into()),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(
            e.to_string()
                .contains("/nonexistent-dir-for-vnfrel-test/t.csv"),
            "{e}"
        );
    }

    #[test]
    fn trace_and_metrics_reject_uninstrumented_algorithms() {
        let args = SimulateArgs {
            algorithm: AlgorithmChoice::Random,
            trace: Some(temp_path("never-written.jsonl")),
            ..SimulateArgs::default()
        };
        let e = run_simulate(&args).unwrap_err();
        assert!(matches!(e, CliError::Usage(_)), "{e}");
        assert!(e.to_string().contains("primal-dual and greedy"), "{e}");
    }

    #[test]
    fn failures_runs_every_policy_and_compares() {
        for policy in [
            RecoveryPolicy::None,
            RecoveryPolicy::OnSite,
            RecoveryPolicy::OffSite,
            RecoveryPolicy::SchemeMatching,
        ] {
            let args = FailuresArgs {
                sim: SimulateArgs {
                    requests: 60,
                    ..SimulateArgs::default()
                },
                mttf: 10.0,
                mttr: 3.0,
                kill_rate: 0.05,
                policy,
                failure_seed: 5,
                sla_csv: None,
            };
            let (out, err) = run_failures(&args).unwrap_or_else(|e| panic!("{policy}: {e}"));
            assert!(err.contains("failure process"), "{err}");
            assert!(out.contains(&format!("policy {policy}")), "{out}");
            if policy == RecoveryPolicy::None {
                assert!(!out.contains("baseline"), "{out}");
            } else {
                assert!(out.contains("baseline none"), "{out}");
                assert!(out.contains("violated request-slots"), "{out}");
            }
        }
    }

    #[test]
    fn failures_trace_interleaves_faults_and_exports_csvs() {
        let trace_path = temp_path("fault-trace.jsonl");
        let timeline_path = temp_path("fault-timeline.csv");
        let sla_path = temp_path("fault-sla.csv");
        let args = FailuresArgs {
            sim: SimulateArgs {
                requests: 60,
                trace: Some(trace_path.clone()),
                timeline_csv: Some(timeline_path.clone()),
                ..SimulateArgs::default()
            },
            mttf: 10.0,
            mttr: 3.0,
            kill_rate: 0.05,
            policy: RecoveryPolicy::SchemeMatching,
            failure_seed: 5,
            sla_csv: Some(sla_path.clone()),
        };
        let (out, _err) = run_failures(&args).unwrap();
        assert!(out.contains("policy scheme-matching"), "{out}");

        let text = std::fs::read_to_string(&trace_path).unwrap();
        let events = mec_obs::parse_trace(&text).unwrap();
        // One decision per request plus at least one fault event (the
        // aggressive mttf guarantees outages in 16 slots).
        let decisions = events.iter().filter(|e| e.kind() == "decision").count();
        assert_eq!(decisions, 60);
        assert!(events.len() > 60, "no fault events in {}", events.len());

        let timeline = std::fs::read_to_string(&timeline_path).unwrap();
        assert!(timeline.starts_with("slot,arrivals,admitted,active,events"));
        let sla = std::fs::read_to_string(&sla_path).unwrap();
        assert!(sla.starts_with("request,payment,duration"));

        std::fs::remove_file(&trace_path).ok();
        std::fs::remove_file(&timeline_path).ok();
        std::fs::remove_file(&sla_path).ok();
    }

    #[test]
    fn simulate_rejects_offsite_density() {
        // The parser already blocks this; the runner must too.
        let args = SimulateArgs {
            scheme: Scheme::OffSite,
            algorithm: AlgorithmChoice::Density,
            ..SimulateArgs::default()
        };
        assert!(run_simulate(&args).is_err());
    }

    #[test]
    fn topo_stats_and_dot() {
        let mut buf = Vec::new();
        topo(&TopologyChoice::Zoo("nsfnet".into()), false, 1, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("14 nodes"), "{text}");

        let mut buf = Vec::new();
        topo(
            &TopologyChoice::Grid { rows: 2, cols: 2 },
            true,
            1,
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph mec {"));
    }

    #[test]
    fn build_network_variants() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = CloudletPlacement::balanced();
        for choice in [
            TopologyChoice::Zoo("geant".into()),
            TopologyChoice::ErdosRenyi { n: 20, p: 0.2 },
            TopologyChoice::BarabasiAlbert { n: 20, m: 2 },
            TopologyChoice::Grid { rows: 3, cols: 3 },
        ] {
            let net = build_network(&choice, &p, &mut rng).unwrap();
            assert!(net.is_connected());
        }
        assert!(build_network(&TopologyChoice::Zoo("nope".into()), &p, &mut rng).is_err());
    }
}
