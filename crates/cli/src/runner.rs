//! Executes parsed commands.

use mec_sim::{failure, FailureConfig, FailureProcess, RecoveryPolicy, Simulation};
use mec_topology::generators::{self, CloudletPlacement};
use mec_topology::stats::{to_dot, NetworkStats};
use mec_topology::{zoo, Network};
use mec_workload::{Horizon, Request, RequestGenerator, VnfCatalog};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vnfrel::baselines::{DensityGreedy, RandomPlacement};
use vnfrel::offsite::{OffsiteGreedy, OffsitePrimalDual};
use vnfrel::onsite::{CapacityPolicy, OnsiteGreedy, OnsitePrimalDual};
use vnfrel::{OnlineScheduler, ProblemInstance, Scheme};

use crate::args::{AlgorithmChoice, FailuresArgs, SimulateArgs, TopologyChoice};

/// Builds a network from a topology choice.
///
/// # Errors
///
/// Returns a human-readable message for invalid parameter combinations.
pub fn build_network(
    choice: &TopologyChoice,
    placement: &CloudletPlacement,
    rng: &mut ChaCha8Rng,
) -> Result<Network, String> {
    let net = match choice {
        TopologyChoice::Zoo(name) => {
            let topo = match name.as_str() {
                "abilene" => zoo::abilene(),
                "nsfnet" => zoo::nsfnet(),
                "aarnet" => zoo::aarnet(),
                "att" | "att-na" => zoo::att_na(),
                "geant" => zoo::geant(),
                "garr" => zoo::garr(),
                "cesnet" => zoo::cesnet(),
                other => return Err(format!("unknown zoo topology `{other}`")),
            };
            topo.into_network(placement, rng)
        }
        TopologyChoice::ErdosRenyi { n, p } => generators::erdos_renyi(*n, *p, placement, rng),
        TopologyChoice::BarabasiAlbert { n, m } => {
            generators::barabasi_albert(*n, *m, placement, rng)
        }
        TopologyChoice::Grid { rows, cols } => generators::grid(*rows, *cols, placement, rng),
    };
    net.map_err(|e| format!("failed to build topology: {e}"))
}

/// Builds the instance and request stream a `simulate`-family command
/// operates on. The returned RNG has consumed the topology and workload
/// draws and may be reused for downstream sampling.
fn build_setup(args: &SimulateArgs) -> Result<(ProblemInstance, Vec<Request>, ChaCha8Rng), String> {
    let mut rng = ChaCha8Rng::seed_from_u64(args.seed);
    let placement = CloudletPlacement {
        fraction: args.cloudlet_fraction,
        capacity: args.capacity,
        reliability: args.cloudlet_reliability,
    };
    let network = build_network(&args.topology, &placement, &mut rng)?;
    let instance =
        ProblemInstance::new(network, VnfCatalog::standard(), Horizon::new(args.horizon))
            .map_err(|e| e.to_string())?;
    let requests = RequestGenerator::new(instance.horizon())
        .reliability_band(args.requirement.0, args.requirement.1)
        .map_err(|e| e.to_string())?
        .payment_rate_band(args.payment_rate.0, args.payment_rate.1)
        .map_err(|e| e.to_string())?
        .generate(args.requests, instance.catalog(), &mut rng)
        .map_err(|e| e.to_string())?;
    Ok((instance, requests, rng))
}

/// Instantiates the scheduler selected by `args`, borrowing `instance`.
fn make_scheduler<'a>(
    instance: &'a ProblemInstance,
    args: &SimulateArgs,
) -> Result<Box<dyn OnlineScheduler + 'a>, String> {
    Ok(match (args.scheme, args.algorithm) {
        (Scheme::OnSite, AlgorithmChoice::PrimalDual) => Box::new(
            OnsitePrimalDual::new(instance, CapacityPolicy::Enforce).map_err(|e| e.to_string())?,
        ),
        (Scheme::OnSite, AlgorithmChoice::Greedy) => Box::new(OnsiteGreedy::new(instance)),
        (Scheme::OffSite, AlgorithmChoice::PrimalDual) => {
            Box::new(OffsitePrimalDual::new(instance))
        }
        (Scheme::OffSite, AlgorithmChoice::Greedy) => Box::new(OffsiteGreedy::new(instance)),
        (scheme, AlgorithmChoice::Random) => {
            Box::new(RandomPlacement::new(instance, scheme, args.seed))
        }
        (Scheme::OnSite, AlgorithmChoice::Density) => {
            Box::new(DensityGreedy::new(instance, 0.0).map_err(|e| e.to_string())?)
        }
        (Scheme::OffSite, AlgorithmChoice::Density) => {
            return Err("density greedy is on-site only".into())
        }
    })
}

/// Runs the `simulate` command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a printable message on invalid configurations.
pub fn simulate(args: &SimulateArgs, out: &mut impl std::io::Write) -> Result<(), String> {
    let (instance, requests, _rng) = build_setup(args)?;
    let sim = Simulation::new(&instance, &requests).map_err(|e| e.to_string())?;
    let mut scheduler = make_scheduler(&instance, args)?;
    let report = sim.run(scheduler.as_mut()).map_err(|e| e.to_string())?;
    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    w(format!("{}", instance))?;
    w(format!("{}", report.metrics))?;
    w(format!(
        "feasible: {} ({} reliability / {} capacity violations)",
        report.validation.is_feasible(),
        report.validation.reliability_violations(),
        report.validation.capacity_violations()
    ))?;

    if args.failure_trials > 0 {
        // Trials are chunk-seeded from the workload seed, so the report
        // is identical for any --threads value.
        let fr = failure::inject_failures_parallel(
            &instance,
            &requests,
            &report.schedule,
            args.failure_trials,
            args.seed,
            args.threads,
        )
        .map_err(|e| e.to_string())?;
        w(format!(
            "failure injection: {} trials, worst margin {:+.4}, statistical violations {}",
            fr.trials,
            fr.worst_margin().unwrap_or(f64::NAN),
            fr.statistical_violations(3.0).len()
        ))?;
    }
    Ok(())
}

/// Runs the `failures` command: a fault-aware simulation under a seeded
/// outage trace, with SLA accounting and (unless the policy already is
/// `none`) a same-trace no-recovery baseline for comparison.
///
/// # Errors
///
/// Returns a printable message on invalid configurations.
pub fn failures(args: &FailuresArgs, out: &mut impl std::io::Write) -> Result<(), String> {
    let (instance, requests, _) = build_setup(&args.sim)?;
    let sim = Simulation::new(&instance, &requests).map_err(|e| e.to_string())?;
    let config = FailureConfig {
        cloudlet_mttf: args.mttf,
        cloudlet_mttr: args.mttr,
        instance_kill_rate: args.kill_rate,
    };
    let trace = FailureProcess::generate(
        instance.network(),
        &config,
        instance.horizon(),
        &mut ChaCha8Rng::seed_from_u64(args.failure_seed),
    )
    .map_err(|e| e.to_string())?;

    let mut scheduler = make_scheduler(&instance, &args.sim)?;
    let report = sim
        .run_with_failures(scheduler.as_mut(), &trace, args.policy)
        .map_err(|e| e.to_string())?;

    let mut w = |s: String| writeln!(out, "{s}").map_err(|e| e.to_string());
    w(format!("{}", instance))?;
    w(format!("{}", report.metrics))?;
    w(format!(
        "failure process: mttf {} mttr {} kill-rate {} seed {} -> {} events",
        args.mttf,
        args.mttr,
        args.kill_rate,
        args.failure_seed,
        trace.total_events()
    ))?;
    w(format!("policy {}: {}", report.policy, report.sla))?;
    if let Some(latency) = report.sla.mean_repair_latency() {
        w(format!("mean repair latency: {latency:.2} slots"))?;
    }
    w(format!(
        "unrecovered requests: {}",
        report.sla.unrecovered_requests()
    ))?;

    if args.policy != RecoveryPolicy::None {
        let mut baseline = make_scheduler(&instance, &args.sim)?;
        let base = sim
            .run_with_failures(baseline.as_mut(), &trace, RecoveryPolicy::None)
            .map_err(|e| e.to_string())?;
        w(format!("baseline {}: {}", base.policy, base.sla))?;
        w(format!(
            "violated request-slots: {} -> {}",
            base.sla.violated_request_slots(),
            report.sla.violated_request_slots()
        ))?;
    }
    Ok(())
}

/// Runs the `topo` command.
///
/// # Errors
///
/// Returns a printable message on invalid configurations.
pub fn topo(
    choice: &TopologyChoice,
    dot: bool,
    seed: u64,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let placement = CloudletPlacement::balanced();
    let network = build_network(choice, &placement, &mut rng)?;
    if dot {
        write!(out, "{}", to_dot(&network)).map_err(|e| e.to_string())?;
    } else {
        writeln!(out, "{}", NetworkStats::compute(&network)).map_err(|e| e.to_string())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::SimulateArgs;

    #[test]
    fn simulate_runs_every_algorithm() {
        for (scheme, algo) in [
            (Scheme::OnSite, AlgorithmChoice::PrimalDual),
            (Scheme::OnSite, AlgorithmChoice::Greedy),
            (Scheme::OnSite, AlgorithmChoice::Random),
            (Scheme::OnSite, AlgorithmChoice::Density),
            (Scheme::OffSite, AlgorithmChoice::PrimalDual),
            (Scheme::OffSite, AlgorithmChoice::Greedy),
            (Scheme::OffSite, AlgorithmChoice::Random),
        ] {
            let args = SimulateArgs {
                requests: 40,
                scheme,
                algorithm: algo,
                failure_trials: 200,
                ..SimulateArgs::default()
            };
            let mut buf = Vec::new();
            simulate(&args, &mut buf).unwrap_or_else(|e| panic!("{scheme} {algo:?}: {e}"));
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("revenue"), "{text}");
            assert!(text.contains("feasible: true"), "{text}");
            assert!(text.contains("failure injection"), "{text}");
        }
    }

    #[test]
    fn failures_runs_every_policy_and_compares() {
        for policy in [
            RecoveryPolicy::None,
            RecoveryPolicy::OnSite,
            RecoveryPolicy::OffSite,
            RecoveryPolicy::SchemeMatching,
        ] {
            let args = FailuresArgs {
                sim: SimulateArgs {
                    requests: 60,
                    ..SimulateArgs::default()
                },
                mttf: 10.0,
                mttr: 3.0,
                kill_rate: 0.05,
                policy,
                failure_seed: 5,
            };
            let mut buf = Vec::new();
            failures(&args, &mut buf).unwrap_or_else(|e| panic!("{policy}: {e}"));
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("failure process"), "{text}");
            assert!(text.contains(&format!("policy {policy}")), "{text}");
            if policy == RecoveryPolicy::None {
                assert!(!text.contains("baseline"), "{text}");
            } else {
                assert!(text.contains("baseline none"), "{text}");
                assert!(text.contains("violated request-slots"), "{text}");
            }
        }
    }

    #[test]
    fn simulate_rejects_offsite_density() {
        // The parser already blocks this; the runner must too.
        let args = SimulateArgs {
            scheme: Scheme::OffSite,
            algorithm: AlgorithmChoice::Density,
            ..SimulateArgs::default()
        };
        assert!(simulate(&args, &mut Vec::new()).is_err());
    }

    #[test]
    fn topo_stats_and_dot() {
        let mut buf = Vec::new();
        topo(&TopologyChoice::Zoo("nsfnet".into()), false, 1, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("14 nodes"), "{text}");

        let mut buf = Vec::new();
        topo(
            &TopologyChoice::Grid { rows: 2, cols: 2 },
            true,
            1,
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph mec {"));
    }

    #[test]
    fn build_network_variants() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = CloudletPlacement::balanced();
        for choice in [
            TopologyChoice::Zoo("geant".into()),
            TopologyChoice::ErdosRenyi { n: 20, p: 0.2 },
            TopologyChoice::BarabasiAlbert { n: 20, m: 2 },
            TopologyChoice::Grid { rows: 3, cols: 3 },
        ] {
            let net = build_network(&choice, &p, &mut rng).unwrap();
            assert!(net.is_connected());
        }
        assert!(build_network(&TopologyChoice::Zoo("nope".into()), &p, &mut rng).is_err());
    }
}
