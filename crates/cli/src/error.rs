//! Typed CLI errors with distinct nonzero exit codes.
//!
//! Daemon-mode failures in particular (bad listen address, busy port,
//! corrupt or mismatched snapshot) must report cleanly and
//! distinguishably — scripts supervising `vnfrel serve` branch on the
//! exit code, so "retry later" (busy port) and "operator intervention"
//! (corrupt snapshot) need different numbers, and none of them should
//! abort with a backtrace.

use std::fmt;

use mec_serve::ServeError;

/// A CLI failure with a user-facing message and a stable exit code.
///
/// Exit codes: `1` internal, `2` usage, `3` configuration, `4` file IO,
/// `5` network, `6` snapshot, `7` fenced. `0` is reserved for success.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line (unknown flag, missing value). Exit code 2.
    Usage(String),
    /// Semantically invalid configuration (bad topology parameters,
    /// unsupported scheme/algorithm combination). Exit code 3.
    Config(String),
    /// File input/output failed (trace, CSV, metrics, histogram
    /// targets). Exit code 4.
    Io(String),
    /// Network setup or transport failed (bad address, busy port,
    /// unreachable daemon, dropped connection). Exit code 5.
    Net(String),
    /// A snapshot could not be read, parsed, validated or written.
    /// Exit code 6.
    Snapshot(String),
    /// This daemon was fenced: a peer at a newer epoch exists (a
    /// standby was promoted behind its back), so it stopped acking
    /// decisions and exited. Do NOT restart it as a primary. Exit
    /// code 7.
    Fenced(String),
    /// Everything else — engine failures and violated internal
    /// invariants. Exit code 1.
    Internal(String),
}

impl CliError {
    /// The process exit code this error maps to (always nonzero).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Internal(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Config(_) => 3,
            CliError::Io(_) => 4,
            CliError::Net(_) => 5,
            CliError::Snapshot(_) => 6,
            CliError::Fenced(_) => 7,
        }
    }

    /// Builds a [`CliError::Config`] from any displayable error.
    pub fn config(e: impl fmt::Display) -> Self {
        CliError::Config(e.to_string())
    }

    /// Builds a [`CliError::Io`] from any displayable error.
    pub fn io(e: impl fmt::Display) -> Self {
        CliError::Io(e.to_string())
    }

    /// Builds a [`CliError::Internal`] from any displayable error.
    pub fn internal(e: impl fmt::Display) -> Self {
        CliError::Internal(e.to_string())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Config(m)
            | CliError::Io(m)
            | CliError::Net(m)
            | CliError::Snapshot(m)
            | CliError::Fenced(m)
            | CliError::Internal(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        match &e {
            ServeError::Net { .. } => CliError::Net(e.to_string()),
            ServeError::Snapshot(_) | ServeError::SnapshotIo { .. } => {
                CliError::Snapshot(e.to_string())
            }
            ServeError::Io(_) | ServeError::Protocol(_) => CliError::Net(e.to_string()),
            ServeError::Config(_) => CliError::Config(e.to_string()),
            ServeError::State(_) => CliError::Internal(e.to_string()),
            ServeError::Fenced { .. } => CliError::Fenced(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let all = [
            CliError::Internal("x".into()),
            CliError::Usage("x".into()),
            CliError::Config("x".into()),
            CliError::Io("x".into()),
            CliError::Net("x".into()),
            CliError::Snapshot("x".into()),
            CliError::Fenced("x".into()),
        ];
        let mut codes: Vec<u8> = all.iter().map(CliError::exit_code).collect();
        assert!(codes.iter().all(|&c| c != 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "exit codes must be distinct");
    }

    #[test]
    fn serve_errors_map_to_the_right_category() {
        let net = ServeError::Net {
            action: "bind",
            addr: "127.0.0.1:1".into(),
            source: std::io::Error::new(std::io::ErrorKind::AddrInUse, "busy"),
        };
        assert_eq!(CliError::from(net).exit_code(), 5);
        let snap = ServeError::Snapshot("corrupt".into());
        assert_eq!(CliError::from(snap).exit_code(), 6);
        let fenced = ServeError::Fenced { epoch: 1, by: 2 };
        assert_eq!(CliError::from(fenced).exit_code(), 7);
    }
}
