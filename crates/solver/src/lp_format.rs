//! Export of models in the CPLEX LP text format.
//!
//! Useful for debugging the CPLEX-substitution: any model built here can
//! be dumped and fed to an external solver (CPLEX, Gurobi, GLPK, HiGHS)
//! to cross-check objective values.

use std::fmt::Write as _;

use crate::model::{Cmp, Model, Sense, VarId};

/// Renders the model in CPLEX LP format.
///
/// Variables are named `x0, x1, …` in id order. Binary/integer variables
/// are declared in `General`/`Binary` sections; bounds in `Bounds`.
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    out.push_str(match model.sense() {
        Sense::Maximize => "Maximize\n obj:",
        Sense::Minimize => "Minimize\n obj:",
    });
    let mut first = true;
    for i in 0..model.num_vars() {
        let c = model.objective_coefficient(VarId(i));
        if c != 0.0 {
            push_term(&mut out, c, i, first);
            first = false;
        }
    }
    if first {
        out.push_str(" 0 x0");
    }
    out.push_str("\nSubject To\n");
    for (k, con) in model.constraints.iter().enumerate() {
        let _ = write!(out, " c{k}:");
        let mut first = true;
        for &(v, coef) in &con.terms {
            if coef != 0.0 {
                push_term(&mut out, coef, v.index(), first);
                first = false;
            }
        }
        if first {
            out.push_str(" 0 x0");
        }
        let op = match con.cmp {
            Cmp::Le => "<=",
            Cmp::Eq => "=",
            Cmp::Ge => ">=",
        };
        let _ = writeln!(out, " {op} {}", fmt_num(con.rhs));
    }
    out.push_str("Bounds\n");
    for i in 0..model.num_vars() {
        let (lb, ub) = model.bounds(VarId(i));
        if ub.is_finite() {
            let _ = writeln!(out, " {} <= x{} <= {}", fmt_num(lb), i, fmt_num(ub));
        } else {
            let _ = writeln!(out, " x{} >= {}", i, fmt_num(lb));
        }
    }
    let binaries: Vec<usize> = model
        .integer_vars()
        .into_iter()
        .filter(|&v| model.bounds(v) == (0.0, 1.0))
        .map(|v| v.index())
        .collect();
    let generals: Vec<usize> = model
        .integer_vars()
        .into_iter()
        .filter(|&v| model.bounds(v) != (0.0, 1.0))
        .map(|v| v.index())
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binary\n");
        for v in binaries {
            let _ = writeln!(out, " x{v}");
        }
    }
    if !generals.is_empty() {
        out.push_str("General\n");
        for v in generals {
            let _ = writeln!(out, " x{v}");
        }
    }
    out.push_str("End\n");
    out
}

fn push_term(out: &mut String, coef: f64, var: usize, first: bool) {
    if first {
        if coef < 0.0 {
            let _ = write!(out, " -{} x{}", fmt_num(-coef), var);
        } else {
            let _ = write!(out, " {} x{}", fmt_num(coef), var);
        }
    } else if coef < 0.0 {
        let _ = write!(out, " - {} x{}", fmt_num(-coef), var);
    } else {
        let _ = write!(out, " + {} x{}", fmt_num(coef), var);
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn renders_a_small_mip() {
        // max 3x − 2y s.t. x + y ≤ 4; x binary, 0 ≤ y ≤ 3.5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(3.0).unwrap();
        let y = m.add_var(0.0, Some(3.5), -2.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)
            .unwrap();
        let lp = to_lp_format(&m);
        assert!(lp.starts_with("Maximize"));
        assert!(lp.contains("3 x0 - 2 x1"), "{lp}");
        assert!(lp.contains("c0: 1 x0 + 1 x1 <= 4"), "{lp}");
        assert!(lp.contains("0 <= x1 <= 3.5"), "{lp}");
        assert!(lp.contains("Binary\n x0"), "{lp}");
        assert!(lp.ends_with("End\n"));
    }

    #[test]
    fn renders_all_comparison_ops_and_general_ints() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer_var(0.0, Some(9.0), 1.0).unwrap();
        let y = m.add_var(0.0, None, 0.0).unwrap();
        m.add_constraint(vec![(x, 2.0)], Cmp::Ge, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0)
            .unwrap();
        let lp = to_lp_format(&m);
        assert!(lp.starts_with("Minimize"));
        assert!(lp.contains(">= 3"));
        assert!(lp.contains("= 0"));
        assert!(lp.contains("General\n x0"));
        assert!(lp.contains("x1 >= 0"));
    }

    #[test]
    fn empty_objective_degrades_gracefully() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(1.0), 0.0).unwrap();
        m.add_constraint(vec![(x, 0.0)], Cmp::Le, 1.0).unwrap();
        let lp = to_lp_format(&m);
        assert!(lp.contains("obj: 0 x0"));
        assert!(lp.contains("c0: 0 x0 <= 1"));
    }
}
