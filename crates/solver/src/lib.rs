//! A self-contained linear- and mixed-integer-programming solver.
//!
//! This crate substitutes for the CPLEX Optimizer used in the paper's
//! evaluation to compute offline optima. It provides:
//!
//! * [`Model`] — a small modeling API (variables with structural bounds,
//!   linear constraints, max/min objectives),
//! * [`solve_lp`] — dense two-phase primal simplex with *bounded
//!   variables*: upper bounds such as `X_i ≤ 1` and `Y_ij ≤ 1` are handled
//!   in the ratio test rather than as constraint rows, which keeps the
//!   VNF-placement models compact,
//! * [`solve_mip`] — best-first branch-and-bound over the LP relaxation
//!   with node/time budgets, reporting incumbent + dual bound (an anytime
//!   optimizer).
//!
//! # Example
//!
//! ```
//! use lp_solver::{Model, Sense, Cmp, solve_mip, BnbConfig};
//! # fn main() -> Result<(), lp_solver::SolverError> {
//! // A tiny knapsack: max 10a + 13b, 3a + 4b ≤ 6, a, b ∈ {0, 1}.
//! let mut m = Model::new(Sense::Maximize);
//! let a = m.add_binary_var(10.0)?;
//! let b = m.add_binary_var(13.0)?;
//! m.add_constraint(vec![(a, 3.0), (b, 4.0)], Cmp::Le, 6.0)?;
//! let sol = solve_mip(&m, &BnbConfig::default())?.expect_solution();
//! assert!((sol.objective - 13.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch_bound;
mod error;
mod lp_format;
mod model;
mod simplex;

pub use branch_bound::{solve_mip, BnbConfig, MipOutcome, MipSolution};
pub use error::SolverError;
pub use lp_format::to_lp_format;
pub use model::{Cmp, Model, Sense, VarId, VarKind};
pub use simplex::{solve_lp, LpOutcome, LpSolution};
