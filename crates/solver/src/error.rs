use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a model.
///
/// Infeasibility and unboundedness are *outcomes*, not errors — they are
/// reported through [`LpOutcome`](crate::LpOutcome) /
/// [`MipOutcome`](crate::MipOutcome).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// A variable id referenced a variable that does not exist.
    UnknownVariable(usize),
    /// A coefficient, bound, or right-hand side was NaN or infinite where
    /// a finite value is required.
    NonFiniteValue(&'static str),
    /// Lower bound exceeds upper bound for a variable.
    InvertedBounds {
        /// Index of the offending variable.
        var: usize,
        /// Its lower bound.
        lb: f64,
        /// Its upper bound.
        ub: f64,
    },
    /// The model has no variables.
    EmptyModel,
    /// The simplex iteration limit was exhausted (likely numerical
    /// trouble; the limit is generous).
    IterationLimit(usize),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnknownVariable(i) => write!(f, "unknown variable index {i}"),
            SolverError::NonFiniteValue(what) => write!(f, "non-finite value for {what}"),
            SolverError::InvertedBounds { var, lb, ub } => {
                write!(f, "variable {var} has inverted bounds [{lb}, {ub}]")
            }
            SolverError::EmptyModel => write!(f, "model has no variables"),
            SolverError::IterationLimit(n) => {
                write!(f, "simplex exceeded the iteration limit of {n}")
            }
        }
    }
}

impl Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            SolverError::UnknownVariable(3),
            SolverError::NonFiniteValue("rhs"),
            SolverError::InvertedBounds {
                var: 1,
                lb: 2.0,
                ub: 1.0,
            },
            SolverError::EmptyModel,
            SolverError::IterationLimit(1000),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
