//! Dense two-phase primal simplex with bounded variables.
//!
//! Variables live in `[lb, ub]` with `lb` finite and `ub` possibly `+∞`;
//! bounds are handled structurally (nonbasic variables sit at either bound,
//! the ratio test considers bound flips), so `x ≤ 1`-style rows never enter
//! the constraint matrix. Phase 1 minimizes the sum of artificial
//! variables; Dantzig pricing is used initially with a switch to Bland's
//! rule for guaranteed termination.

use crate::error::SolverError;
use crate::model::{Cmp, Model, Sense};

/// Numerical tolerance for reduced costs and feasibility.
const EPS: f64 = 1e-9;
/// Minimum acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
}

impl LpOutcome {
    /// Unwraps the optimal solution.
    ///
    /// # Panics
    ///
    /// Panics if the outcome is not [`LpOutcome::Optimal`].
    pub fn expect_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected an optimal LP solution, got {other:?}"),
        }
    }

    /// Borrows the optimal solution, if any.
    pub fn as_optimal(&self) -> Option<&LpSolution> {
        match self {
            LpOutcome::Optimal(s) => Some(s),
            _ => None,
        }
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Objective value in the model's original sense.
    pub objective: f64,
    /// Value of each variable, indexed by [`VarId`](crate::VarId) order.
    pub values: Vec<f64>,
    /// One dual (shadow price) per constraint, in the model's sense: for
    /// a maximization, the dual of a binding `≤` row is ≥ 0 and measures
    /// the marginal objective gain per unit of extra right-hand side.
    pub duals: Vec<f64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Status {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    /// m × ncols coefficient matrix, kept basis-reduced.
    a: Vec<Vec<f64>>,
    /// Actual values of basic variables, one per row.
    xb: Vec<f64>,
    /// Column of the basic variable in each row.
    basis: Vec<usize>,
    /// Status of every column.
    status: Vec<Status>,
    /// Shifted upper bound of every column (lb already removed, so the
    /// effective domain is `[0, ubs[j]]`).
    ubs: Vec<f64>,
    /// Reduced-cost row for the current phase.
    d: Vec<f64>,
    /// Phase cost vector (for rebuilding `d` after basis changes).
    cost: Vec<f64>,
    /// First artificial column (artificials occupy `art_start..ncols`).
    art_start: usize,
}

impl Tableau {
    fn value_of(&self, col: usize) -> f64 {
        match self.status[col] {
            Status::Basic(r) => self.xb[r],
            Status::AtLower => 0.0,
            Status::AtUpper => self.ubs[col],
        }
    }

    /// Rebuilds the reduced-cost row from `cost` given the current basis.
    fn rebuild_reduced_costs(&mut self) {
        self.d = self.cost.clone();
        for (row, &b) in self.basis.iter().enumerate() {
            let cb = self.cost[b];
            if cb != 0.0 {
                for j in 0..self.d.len() {
                    self.d[j] -= cb * self.a[row][j];
                }
            }
        }
    }

    /// One simplex iteration. Returns `Ok(true)` when optimal, `Ok(false)`
    /// after a pivot or bound flip, `Err(())` when unbounded.
    fn iterate(&mut self, bland: bool) -> Result<bool, ()> {
        let ncols = self.d.len();
        // Entering variable selection.
        let mut enter: Option<(usize, bool)> = None; // (col, from_lower)
        let mut best = EPS;
        for j in 0..ncols {
            let fixed = self.ubs[j] <= EPS; // fixed vars never enter
            if fixed {
                continue;
            }
            match self.status[j] {
                Status::AtLower if self.d[j] < -EPS => {
                    if bland {
                        enter = Some((j, true));
                        break;
                    }
                    if -self.d[j] > best {
                        best = -self.d[j];
                        enter = Some((j, true));
                    }
                }
                Status::AtUpper if self.d[j] > EPS => {
                    if bland {
                        enter = Some((j, false));
                        break;
                    }
                    if self.d[j] > best {
                        best = self.d[j];
                        enter = Some((j, false));
                    }
                }
                _ => {}
            }
        }
        let Some((j, from_lower)) = enter else {
            return Ok(true); // optimal
        };

        // Ratio test. The entering variable moves t ≥ 0 away from its
        // current bound; basic variable i changes by delta_i · t.
        let sign = if from_lower { -1.0 } else { 1.0 };
        let mut t_limit = self.ubs[j]; // bound-flip distance (may be inf)
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..self.a.len() {
            let delta = sign * self.a[i][j];
            // Candidate limit for this row, if its basic variable binds.
            let candidate = if delta < -PIVOT_TOL {
                // Basic value decreasing toward its lower bound 0.
                Some((self.xb[i].max(0.0) / (-delta), false))
            } else if delta > PIVOT_TOL {
                // Basic value increasing toward its upper bound.
                let ub = self.ubs[self.basis[i]];
                ub.is_finite()
                    .then(|| (((ub - self.xb[i]).max(0.0)) / delta, true))
            } else {
                None
            };
            if let Some((t, at_upper)) = candidate {
                if t < t_limit - 1e-12 {
                    t_limit = t;
                    leave = Some((i, at_upper));
                } else if (t - t_limit).abs() <= 1e-12 {
                    // Tie: prefer evicting the smallest basis column
                    // (Bland-flavoured, aids termination).
                    match leave {
                        Some((r, _)) if self.basis[i] >= self.basis[r] => {}
                        _ => {
                            t_limit = t;
                            leave = Some((i, at_upper));
                        }
                    }
                }
            }
        }

        if t_limit.is_infinite() {
            return Err(()); // unbounded direction
        }

        match leave {
            None => {
                // Bound flip: entering variable crosses to its other bound.
                for i in 0..self.a.len() {
                    self.xb[i] += sign * self.a[i][j] * t_limit;
                }
                self.status[j] = if from_lower {
                    Status::AtUpper
                } else {
                    Status::AtLower
                };
                Ok(false)
            }
            Some((r, leaves_at_upper)) => {
                // Update basic values.
                for i in 0..self.a.len() {
                    if i != r {
                        self.xb[i] += sign * self.a[i][j] * t_limit;
                    }
                }
                let entering_value = if from_lower {
                    t_limit
                } else {
                    self.ubs[j] - t_limit
                };
                let leaving = self.basis[r];
                self.status[leaving] = if leaves_at_upper {
                    Status::AtUpper
                } else {
                    Status::AtLower
                };
                // Row reduction.
                let piv = self.a[r][j];
                debug_assert!(piv.abs() > PIVOT_TOL * 0.1, "tiny pivot {piv}");
                let inv = 1.0 / piv;
                for v in self.a[r].iter_mut() {
                    *v *= inv;
                }
                for i in 0..self.a.len() {
                    if i != r {
                        let f = self.a[i][j];
                        if f != 0.0 {
                            // Manual row update to avoid borrow conflicts.
                            let (head, tail) = self.a.split_at_mut(r.max(i));
                            let (row_i, row_r) = if i < r {
                                (&mut head[i], &tail[0])
                            } else {
                                (&mut tail[0], &head[r])
                            };
                            for (vi, vr) in row_i.iter_mut().zip(row_r.iter()) {
                                *vi -= f * vr;
                            }
                        }
                    }
                }
                let dj = self.d[j];
                if dj != 0.0 {
                    for (dv, rv) in self.d.iter_mut().zip(self.a[r].iter()) {
                        *dv -= dj * rv;
                    }
                }
                self.basis[r] = j;
                self.status[j] = Status::Basic(r);
                self.xb[r] = entering_value;
                Ok(false)
            }
        }
    }
}

/// Solves a linear program, relaxing any integrality markers.
///
/// # Errors
///
/// * [`SolverError::EmptyModel`] for a model with no variables.
/// * [`SolverError::IterationLimit`] if simplex fails to terminate within
///   a generous iteration budget (indicates severe numerical trouble).
///
/// Infeasibility and unboundedness are reported through [`LpOutcome`],
/// not as errors.
pub fn solve_lp(model: &Model) -> Result<LpOutcome, SolverError> {
    let n = model.num_vars();
    if n == 0 {
        return Err(SolverError::EmptyModel);
    }
    let m = model.num_constraints();

    // Shift variables so lb = 0 and pre-compute adjusted rhs.
    let lbs: Vec<f64> = (0..n).map(|j| model.vars[j].lb).collect();
    let mut ubs: Vec<f64> = (0..n)
        .map(|j| model.vars[j].ub - model.vars[j].lb)
        .collect();

    // Count slacks/artificials per row after rhs normalization.
    #[derive(Clone, Copy)]
    struct RowPlan {
        flip: bool,
        cmp: Cmp,
    }
    let mut plans = Vec::with_capacity(m);
    let mut rhs = Vec::with_capacity(m);
    for c in &model.constraints {
        let shift: f64 = c.terms.iter().map(|&(v, coef)| coef * lbs[v.index()]).sum();
        let mut b = c.rhs - shift;
        let mut cmp = c.cmp;
        let flip = b < 0.0;
        if flip {
            b = -b;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        plans.push(RowPlan { flip, cmp });
        rhs.push(b);
    }

    let n_slack = plans
        .iter()
        .filter(|p| matches!(p.cmp, Cmp::Le | Cmp::Ge))
        .count();
    let n_art = plans
        .iter()
        .filter(|p| matches!(p.cmp, Cmp::Ge | Cmp::Eq))
        .count();
    let ncols = n + n_slack + n_art;
    let art_start = n + n_slack;

    let mut a = vec![vec![0.0; ncols]; m];
    for (i, c) in model.constraints.iter().enumerate() {
        let s = if plans[i].flip { -1.0 } else { 1.0 };
        for &(v, coef) in &c.terms {
            a[i][v.index()] += s * coef;
        }
    }
    // Slack/surplus and artificial columns; build the initial basis.
    // `row_aux` remembers, per row, the auxiliary column and its sign so
    // duals can be read off the reduced-cost row after phase 2
    // (`y_i = −d[aux] / sign`).
    let mut basis = vec![usize::MAX; m];
    let mut status = vec![Status::AtLower; ncols];
    let mut row_aux: Vec<(usize, f64)> = Vec::with_capacity(m);
    let mut col = n;
    let mut art_col = art_start;
    for (i, p) in plans.iter().enumerate() {
        match p.cmp {
            Cmp::Le => {
                a[i][col] = 1.0;
                basis[i] = col;
                row_aux.push((col, 1.0));
                col += 1;
            }
            Cmp::Ge => {
                a[i][col] = -1.0; // surplus
                row_aux.push((col, -1.0));
                col += 1;
                a[i][art_col] = 1.0;
                basis[i] = art_col;
                art_col += 1;
            }
            Cmp::Eq => {
                row_aux.push((art_col, 1.0));
                a[i][art_col] = 1.0;
                basis[i] = art_col;
                art_col += 1;
            }
        }
    }
    ubs.extend(std::iter::repeat_n(f64::INFINITY, ncols - n));
    for (i, &b) in basis.iter().enumerate() {
        status[b] = Status::Basic(i);
    }

    let mut t = Tableau {
        a,
        xb: rhs,
        basis,
        status,
        ubs,
        d: Vec::new(),
        cost: vec![0.0; ncols],
        art_start,
    };

    let max_iters = 200 * (m + ncols) + 20_000;

    // Phase 1: minimize the sum of artificials (skip if none).
    if n_art > 0 {
        for j in t.art_start..ncols {
            t.cost[j] = 1.0;
        }
        t.rebuild_reduced_costs();
        if run(&mut t, max_iters)?.is_err() {
            // Phase 1 minimizes a sum of non-negative variables and can
            // never actually be unbounded; treat it as infeasibility.
            return Ok(LpOutcome::Infeasible);
        }
        let infeas: f64 = (t.art_start..ncols).map(|j| t.value_of(j)).sum();
        if infeas > 1e-6 {
            return Ok(LpOutcome::Infeasible);
        }
        // Freeze artificials at zero so they can never re-enter.
        for j in t.art_start..ncols {
            t.ubs[j] = 0.0;
        }
    }

    // Phase 2: the real objective (internal sense: minimize).
    let sense_mul = match model.sense() {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    for j in 0..ncols {
        t.cost[j] = if j < n {
            sense_mul * model.vars[j].objective
        } else {
            0.0
        };
    }
    t.rebuild_reduced_costs();
    match run(&mut t, max_iters)? {
        Ok(()) => {}
        Err(()) => return Ok(LpOutcome::Unbounded),
    }

    // Extract the solution in original coordinates.
    let values: Vec<f64> = (0..n).map(|j| lbs[j] + t.value_of(j)).collect();
    let objective = model.objective_value(&values);
    // Dual values: the reduced cost of row i's auxiliary column equals
    // `0 − y_i·sign` (its true cost is 0 and its column is a ±unit
    // vector), so `y_i = −d[aux]/sign`; undo the rhs-normalization flip
    // and the internal minimize convention.
    let duals: Vec<f64> = (0..m)
        .map(|i| {
            let (aux, sign) = row_aux[i];
            let y_internal = -t.d[aux] / sign;
            let y_row = if plans[i].flip {
                -y_internal
            } else {
                y_internal
            };
            sense_mul * y_row
        })
        .collect();
    Ok(LpOutcome::Optimal(LpSolution {
        objective,
        values,
        duals,
    }))
}

/// Runs simplex iterations to optimality.
///
/// Outer `Result` is a hard solver error; inner `Result` is
/// `Ok(())` = optimal, `Err(())` = unbounded.
fn run(t: &mut Tableau, max_iters: usize) -> Result<Result<(), ()>, SolverError> {
    let bland_after = max_iters / 2;
    for iter in 0..max_iters {
        match t.iterate(iter >= bland_after) {
            Ok(true) => return Ok(Ok(())),
            Ok(false) => {}
            Err(()) => return Ok(Err(())),
        }
    }
    Err(SolverError::IterationLimit(max_iters))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense, VarId};

    fn opt(m: &Model) -> LpSolution {
        solve_lp(m).unwrap().expect_optimal()
    }

    #[test]
    fn simple_max_two_vars() {
        // max 3x + 2y s.t. x + y ≤ 4, x ≤ 2, y ≤ 3 → x=2, y=2, obj=10.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(2.0), 3.0).unwrap();
        let y = m.add_var(0.0, Some(3.0), 2.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.objective - 10.0).abs() < 1e-7, "obj {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-7);
        assert!((s.values[1] - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_lp_with_three_constraints() {
        // max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6 → (3, 1.5), obj 21.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 5.0).unwrap();
        let y = m.add_var(0.0, None, 4.0).unwrap();
        m.add_constraint(vec![(x, 6.0), (y, 4.0)], Cmp::Le, 24.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Le, 6.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.objective - 21.0).abs() < 1e-7);
        assert!((s.values[0] - 3.0).abs() < 1e-7);
        assert!((s.values[1] - 1.5).abs() < 1e-7);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0)? check: obj(4,0)=8;
        // obj(1,3)=11 → optimum x=4,y=0, obj 8.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, None, 2.0).unwrap();
        let y = m.add_var(0.0, None, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0).unwrap();
        let s = opt(&m);
        assert!((s.objective - 8.0).abs() < 1e-7, "obj {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 3, x − y = 1 → (2, 1), obj 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        let y = m.add_var(0.0, None, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.objective - 3.0).abs() < 1e-7);
        assert!((s.values[0] - 2.0).abs() < 1e-7);
        assert!((s.values[1] - 1.0).abs() < 1e-7);
    }

    #[test]
    fn duals_of_textbook_lp() {
        // max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6 → y = (0.75, 0.5)
        // and strong duality: 24·0.75 + 6·0.5 = 21 = objective.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 5.0).unwrap();
        let y = m.add_var(0.0, None, 4.0).unwrap();
        m.add_constraint(vec![(x, 6.0), (y, 4.0)], Cmp::Le, 24.0)
            .unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Le, 6.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.duals[0] - 0.75).abs() < 1e-7, "duals {:?}", s.duals);
        assert!((s.duals[1] - 0.5).abs() < 1e-7, "duals {:?}", s.duals);
        let dual_obj = 24.0 * s.duals[0] + 6.0 * s.duals[1];
        assert!((dual_obj - s.objective).abs() < 1e-7);
    }

    #[test]
    fn duals_nonnegative_for_max_le_rows_and_zero_when_slack() {
        // max x s.t. x ≤ 2 (binding), x + y ≤ 100 (slack, y free to 0).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        let y = m.add_var(0.0, None, 0.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Le, 2.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 100.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.duals[0] - 1.0).abs() < 1e-7, "duals {:?}", s.duals);
        assert!(s.duals[1].abs() < 1e-9, "slack row must have zero dual");
    }

    #[test]
    fn duals_for_minimization_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4 → optimum x = 4, dual of the ≥ row
        // is the cheaper unit cost, 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, None, 2.0).unwrap();
        let y = m.add_var(0.0, None, 3.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.duals[0] - 2.0).abs() < 1e-7, "duals {:?}", s.duals);
        assert!((4.0 * s.duals[0] - s.objective).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(1.0), 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0).unwrap();
        assert_eq!(solve_lp(&m).unwrap(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        let y = m.add_var(0.0, None, 0.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0)
            .unwrap();
        assert_eq!(solve_lp(&m).unwrap(), LpOutcome::Unbounded);
    }

    #[test]
    fn bounded_above_by_variable_bounds_only() {
        // No constraints at all: optimum sits at the bounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(7.0), 2.0).unwrap();
        let y = m.add_var(1.0, Some(2.0), -5.0).unwrap();
        let _ = (x, y);
        let s = opt(&m);
        assert!((s.values[0] - 7.0).abs() < 1e-7);
        assert!((s.values[1] - 1.0).abs() < 1e-7);
        assert!((s.objective - 9.0).abs() < 1e-7);
    }

    #[test]
    fn nonzero_lower_bounds_are_shifted_correctly() {
        // min x + y with x ≥ 2, y ≥ 3, x + y ≥ 7 → obj 7.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0, None, 1.0).unwrap();
        let y = m.add_var(3.0, None, 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.objective - 7.0).abs() < 1e-7);
        assert!(s.values[0] >= 2.0 - 1e-9 && s.values[1] >= 3.0 - 1e-9);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // max x s.t. −x ≤ −2 (i.e. x ≥ 2), x ≤ 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, Some(5.0), 1.0).unwrap();
        m.add_constraint(vec![(x, -1.0)], Cmp::Le, -2.0).unwrap();
        let s = opt(&m);
        assert!((s.objective - 5.0).abs() < 1e-7);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(3.0, Some(3.0), 10.0).unwrap();
        let y = m.add_var(0.0, Some(10.0), 1.0).unwrap();
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 8.0)
            .unwrap();
        let s = opt(&m);
        assert!((s.values[0] - 3.0).abs() < 1e-9);
        assert!((s.values[1] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, None, 1.0).unwrap();
        let y = m.add_var(0.0, None, 1.0).unwrap();
        for k in 1..=6 {
            m.add_constraint(vec![(x, k as f64), (y, 1.0)], Cmp::Le, k as f64)
                .unwrap();
        }
        let s = opt(&m);
        // Optimum: x=1,y=0 gives 1; x=0,y=1 gives 1 (first row binds y ≤ 1
        // only via k=1 row x+y≤1). All rows: kx + y ≤ k. At x=0: y ≤ 1.
        assert!((s.objective - 1.0).abs() < 1e-7, "obj {}", s.objective);
    }

    #[test]
    fn packing_lp_matches_hand_solution() {
        // Fractional knapsack: max 4a + 3b + 2c, a+b+c ≤ 1.5, all ≤ 1.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var(0.0, Some(1.0), 4.0).unwrap();
        let b = m.add_var(0.0, Some(1.0), 3.0).unwrap();
        let c = m.add_var(0.0, Some(1.0), 2.0).unwrap();
        m.add_constraint(vec![(a, 1.0), (b, 1.0), (c, 1.0)], Cmp::Le, 1.5)
            .unwrap();
        let s = opt(&m);
        assert!((s.objective - 5.5).abs() < 1e-7); // a=1, b=0.5
        assert!((s.values[0] - 1.0).abs() < 1e-7);
        assert!((s.values[1] - 0.5).abs() < 1e-7);
    }

    #[test]
    fn solution_is_always_feasible() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<VarId> = (0..6)
            .map(|i| {
                m.add_var(0.0, Some(1.0 + i as f64), (i + 1) as f64)
                    .unwrap()
            })
            .collect();
        for k in 0..4 {
            let terms = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, ((i + k) % 3 + 1) as f64))
                .collect();
            m.add_constraint(terms, Cmp::Le, 10.0 + k as f64).unwrap();
        }
        let s = opt(&m);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn empty_model_is_an_error() {
        let m = Model::new(Sense::Maximize);
        assert_eq!(solve_lp(&m).unwrap_err(), SolverError::EmptyModel);
    }
}
